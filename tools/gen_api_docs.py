#!/usr/bin/env python
"""Generate the markdown API reference for the public ``repro`` surface.

Walks every importable module under ``repro`` with :mod:`pkgutil`, inspects
its public classes and functions (the ones *defined* in that module — re-
exports are listed in the package page only), and writes one markdown page
per module plus an index to ``docs/api/``.  Everything comes straight from
the live docstrings — the same text ``pydoc`` would show — so the reference
can never say something the code does not.

The output is deterministic (sorted modules, definition-order members), so
regenerating with no code changes is a no-op; CI runs this via ``make docs``
and fails on any import or generation error.

Usage::

    PYTHONPATH=src python tools/gen_api_docs.py [--output docs/api]
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from pathlib import Path


def is_public(name: str) -> bool:
    """Whether ``name`` is part of the public surface (no leading underscore)."""
    return not name.startswith("_")


def first_line(doc: str | None) -> str:
    """The summary line of a docstring ('' when absent)."""
    return (doc or "").strip().splitlines()[0] if doc else ""


def signature_of(obj) -> str:
    """``inspect.signature`` rendered, or '' for objects without one."""
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""


def document_function(obj, name: str, heading: str) -> list[str]:
    """Markdown block for one function or method."""
    lines = [f"{heading} `{name}{signature_of(obj)}`", ""]
    doc = inspect.getdoc(obj)
    if doc:
        lines += [doc, ""]
    return lines


def document_class(cls, name: str) -> list[str]:
    """Markdown block for one class: docstring then public methods/properties."""
    lines = [f"### `{name}{signature_of(cls)}`", ""]
    doc = inspect.getdoc(cls)
    if doc:
        lines += [doc, ""]
    for member_name, member in vars(cls).items():
        if not is_public(member_name):
            continue
        if isinstance(member, property):
            lines += [f"#### `{member_name}` *(property)*", ""]
            member_doc = inspect.getdoc(member)
            if member_doc:
                lines += [member_doc, ""]
        elif isinstance(member, (staticmethod, classmethod)):
            lines += document_function(member.__func__, f"{member_name}", "####")
        elif inspect.isfunction(member):
            lines += document_function(member, member_name, "####")
    return lines


def document_module(module, module_name: str) -> str:
    """The full markdown page for one module."""
    lines = [f"# `{module_name}`", ""]
    doc = inspect.getdoc(module)
    if doc:
        lines += [doc, ""]
    classes = [
        (name, obj)
        for name, obj in vars(module).items()
        if is_public(name) and inspect.isclass(obj) and getattr(obj, "__module__", None) == module_name
    ]
    functions = [
        (name, obj)
        for name, obj in vars(module).items()
        if is_public(name) and inspect.isfunction(obj) and getattr(obj, "__module__", None) == module_name
    ]
    if classes:
        lines += ["## Classes", ""]
        for name, cls in classes:
            lines += document_class(cls, name)
    if functions:
        lines += ["## Functions", ""]
        for name, fn in functions:
            lines += document_function(fn, name, "###")
    return "\n".join(lines).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    """Generate ``docs/api`` from the importable ``repro`` package; 0 on success."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("docs/api"))
    args = parser.parse_args(argv)

    import repro

    module_names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module_names.append(info.name)
    module_names.sort()

    args.output.mkdir(parents=True, exist_ok=True)
    for stale in args.output.glob("*.md"):
        stale.unlink()

    index = [
        "# API reference",
        "",
        "Generated from the live docstrings by `make docs` "
        "(`tools/gen_api_docs.py`); do not edit by hand.",
        "",
        "| module | summary |",
        "| ------ | ------- |",
    ]
    for module_name in module_names:
        module = importlib.import_module(module_name)
        page = args.output / f"{module_name}.md"
        page.write_text(document_module(module, module_name), encoding="utf-8")
        index.append(f"| [`{module_name}`]({module_name}.md) | {first_line(module.__doc__)} |")
    (args.output / "index.md").write_text("\n".join(index) + "\n", encoding="utf-8")
    print(f"wrote {len(module_names)} module pages + index to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
