#!/usr/bin/env python
"""Docstring-coverage gate for the public ``repro`` API.

Walks every module under ``src/repro`` with :mod:`ast` (no imports, so a
syntax error cannot crash the checker half-way) and requires a docstring on:

* every module;
* every public class (name not starting with ``_``) at module level;
* every public function at module level and every public method of a public
  class, ``__init__`` excluded (the class docstring documents construction).

Private names (leading ``_``), dunder methods, nested definitions and
``@overload`` stubs are exempt.  Exits non-zero listing every offender — CI
runs this via ``make check-docs``, so an undocumented public surface fails
the build.

Usage::

    python tools/check_docstrings.py [--root src/repro]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path


def is_public(name: str) -> bool:
    """Whether ``name`` is part of the public surface (no leading underscore)."""
    return not name.startswith("_")


def iter_missing(tree: ast.Module, module_name: str):
    """Yield ``(qualified_name, kind, lineno)`` for every missing docstring."""
    if ast.get_docstring(tree) is None:
        yield module_name, "module", 1
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and is_public(node.name):
            if ast.get_docstring(node) is None:
                yield f"{module_name}.{node.name}", "function", node.lineno
        elif isinstance(node, ast.ClassDef) and is_public(node.name):
            if ast.get_docstring(node) is None:
                yield f"{module_name}.{node.name}", "class", node.lineno
            for member in node.body:
                if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not is_public(member.name) or member.name == "__init__":
                    continue
                if any(
                    isinstance(decorator, ast.Name) and decorator.id == "overload"
                    for decorator in member.decorator_list
                ):
                    continue
                if ast.get_docstring(member) is None:
                    yield f"{module_name}.{node.name}.{member.name}", "method", member.lineno


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the package root's parent."""
    relative = path.relative_to(root.parent)
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def main(argv: list[str] | None = None) -> int:
    """Scan the tree and report missing public docstrings; 0 iff none."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path("src/repro"), help="package directory to scan")
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2

    missing: list[tuple[str, str, str, int]] = []
    checked = 0
    for path in sorted(root.rglob("*.py")):
        checked += 1
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for qualified, kind, lineno in iter_missing(tree, module_name_for(path, root)):
            missing.append((str(path), qualified, kind, lineno))

    for path, qualified, kind, lineno in missing:
        print(f"{path}:{lineno}: missing {kind} docstring: {qualified}", file=sys.stderr)
    status = "FAIL" if missing else "OK"
    print(f"docstring coverage: {checked} modules checked, {len(missing)} missing public docstrings [{status}]")
    return 1 if missing else 0


if __name__ == "__main__":
    sys.exit(main())
