"""Hybrid pre-training (§III-E of the paper).

Each mini-batch mixes two kinds of examples drawn from the pre-training
corpus:

* **BDC** examples — one of the four dual-corpus mappings, with source and
  target swapped with probability 0.5;
* **MLM** examples — cross-modal text sequences corrupted with the T5 span
  denoising objective.

The total loss is the sum of the two (equation 3 of the paper); because both
reduce to token-level cross-entropy on (source, target) pairs, mixing them in
one batch realises exactly that sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batching import collate_token_pairs, iterate_minibatches
from repro.core.config import TrainingConfig
from repro.core.model import DataVisT5
from repro.core.objectives import SpanCorruptionConfig, bdc_pair_to_example, span_corruption
from repro.datasets.corpus import PretrainingCorpus, Seq2SeqExample
from repro.errors import ModelConfigError
from repro.utils.rng import derive_seed, seeded_rng


@dataclass
class PretrainingReport:
    """Summary of one pre-training run."""

    epoch_losses: list[float] = field(default_factory=list)
    step_losses: list[float] = field(default_factory=list)
    num_steps: int = 0
    num_bdc_examples: int = 0
    num_mlm_examples: int = 0

    @property
    def final_loss(self) -> float:
        """Loss of the last recorded epoch (NaN before any epoch ran)."""
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class HybridPretrainer:
    """Runs hybrid-objective pre-training of a :class:`DataVisT5` model."""

    def __init__(
        self,
        model: DataVisT5,
        corpus: PretrainingCorpus,
        config: TrainingConfig | None = None,
        span_config: SpanCorruptionConfig | None = None,
    ):
        if not corpus.bdc_pairs and not corpus.mlm_texts:
            raise ModelConfigError("the pre-training corpus is empty")
        self.model = model
        self.corpus = corpus
        self.config = config or TrainingConfig()
        self.span_config = span_config or SpanCorruptionConfig()

    # -- example realisation -----------------------------------------------------------
    def _realise_bdc(self, pair: Seq2SeqExample, rng: np.random.Generator) -> tuple[list[int], list[int]]:
        example = bdc_pair_to_example(pair, rng=rng, swap_probability=self.config.bdc_swap_probability)
        tokenizer = self.model.tokenizer
        source_ids = tokenizer.encode(example.source, max_length=self.model.config.max_input_length)
        target_ids = tokenizer.encode(example.target, max_length=self.model.config.max_target_length)
        return source_ids, target_ids

    def _realise_mlm(self, text: str, rng: np.random.Generator) -> tuple[list[int], list[int]]:
        tokenizer = self.model.tokenizer
        token_ids = tokenizer.encode(text, max_length=self.model.config.max_input_length)
        input_ids, target_ids = span_corruption(token_ids, tokenizer, config=self.span_config, rng=rng)
        return input_ids[: self.model.config.max_input_length], target_ids[: self.model.config.max_target_length]

    def _mixed_examples(self, rng: np.random.Generator) -> list[tuple[str, object]]:
        """The epoch's example list: ('bdc', pair) and ('mlm', text) entries."""
        examples: list[tuple[str, object]] = [("bdc", pair) for pair in self.corpus.bdc_pairs]
        if self.corpus.mlm_texts and self.config.mlm_fraction > 0:
            # Sample MLM sequences so they make up roughly ``mlm_fraction`` of the epoch.
            bdc_count = max(len(self.corpus.bdc_pairs), 1)
            target_mlm = int(round(bdc_count * self.config.mlm_fraction / max(1e-9, 1 - self.config.mlm_fraction)))
            target_mlm = min(max(target_mlm, 1), len(self.corpus.mlm_texts) * 4)
            indices = rng.integers(0, len(self.corpus.mlm_texts), size=target_mlm)
            examples.extend(("mlm", self.corpus.mlm_texts[int(index)]) for index in indices)
        return examples

    # -- training loop -------------------------------------------------------------------
    def train(self) -> PretrainingReport:
        """Run the configured number of epochs and return a report."""
        config = self.config
        rng = seeded_rng(derive_seed(config.seed, "pretraining"))
        report = PretrainingReport()
        probe = self._mixed_examples(seeded_rng(derive_seed(config.seed, "probe")))
        steps_per_epoch = max(1, (len(probe) + config.batch_size - 1) // config.batch_size)
        optimizer = self.model.make_optimizer(
            total_steps=steps_per_epoch * config.num_epochs,
            learning_rate=config.learning_rate,
            warmup_ratio=config.warmup_ratio,
            weight_decay=config.weight_decay,
        )
        pad_id = self.model.tokenizer.vocab.pad_id
        for epoch in range(config.num_epochs):
            epoch_rng = seeded_rng(derive_seed(config.seed, "pretrain_epoch", epoch))
            examples = self._mixed_examples(epoch_rng)
            losses: list[float] = []
            for minibatch in iterate_minibatches(examples, config.batch_size, rng=epoch_rng):
                sources, targets = [], []
                for kind, payload in minibatch:
                    if kind == "bdc":
                        source_ids, target_ids = self._realise_bdc(payload, epoch_rng)
                        report.num_bdc_examples += 1
                    else:
                        source_ids, target_ids = self._realise_mlm(payload, epoch_rng)
                        report.num_mlm_examples += 1
                    sources.append(source_ids)
                    targets.append(target_ids)
                batch = collate_token_pairs(
                    sources,
                    targets,
                    pad_id,
                    max_input_length=self.model.config.max_input_length,
                    max_target_length=self.model.config.max_target_length,
                )
                loss = self.model.train_step(batch, optimizer, max_grad_norm=config.max_grad_norm)
                losses.append(loss)
                report.step_losses.append(loss)
                report.num_steps += 1
            report.epoch_losses.append(float(np.mean(losses)) if losses else float("nan"))
        return report
