"""The DataVisT5 core: model wrapper, hybrid pre-training and multi-task fine-tuning.

This is the paper's primary contribution, re-implemented on the numpy
substrate of :mod:`repro.nn`:

* :class:`~repro.core.model.DataVisT5` couples a tokenizer with a T5-style
  encoder--decoder and exposes text-in / text-out training and generation;
* :mod:`repro.core.objectives` implements the span-corruption MLM objective
  and the Bidirectional Dual-Corpus (BDC) objective;
* :class:`~repro.core.pretraining.HybridPretrainer` mixes the two objectives
  within each mini-batch (the "hybrid pre-training" of §III-E);
* :class:`~repro.core.finetuning.MultiTaskFineTuner` performs temperature-
  mixed multi-task fine-tuning (§III-F) and
  :class:`~repro.core.finetuning.SingleTaskFineTuner` the SFT ablation.
"""

from repro.core.config import DataVisT5Config, TrainingConfig
from repro.core.model import DataVisT5, checkpoint_fingerprint
from repro.core.objectives import span_corruption, SpanCorruptionConfig, bdc_pair_to_example
from repro.core.pretraining import HybridPretrainer, PretrainingReport
from repro.core.finetuning import MultiTaskFineTuner, SingleTaskFineTuner, FineTuningReport

__all__ = [
    "DataVisT5Config",
    "TrainingConfig",
    "DataVisT5",
    "checkpoint_fingerprint",
    "span_corruption",
    "SpanCorruptionConfig",
    "bdc_pair_to_example",
    "HybridPretrainer",
    "PretrainingReport",
    "MultiTaskFineTuner",
    "SingleTaskFineTuner",
    "FineTuningReport",
]
