"""Batch collation: turning token-id lists into padded numpy arrays.

This module is the single place where ragged token sequences become dense
``(batch, length)`` arrays, shared by three consumers:

* the training loops (:mod:`repro.core.pretraining` / ``finetuning``), which
  collate (source, target) text pairs into :class:`Batch` objects;
* the neural baselines, which reuse :func:`pad_sequences` and
  :func:`iterate_minibatches` for their own epochs;
* the serving layer (:mod:`repro.serving`), whose ``MicroBatcher`` groups
  concurrent requests with :func:`group_into_batches` before padding them
  into one forward pass.

Padding is right-aligned with the tokenizer's pad id.  Because every model
masks pad positions exactly, a sequence produces bitwise-identical output
whether it is padded to its own length or to the longest sequence of a larger
batch — the property the serving layer's batch-equals-sequential guarantee
rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.errors import ModelConfigError
from repro.tokenization.tokenizer import DataVisTokenizer


@dataclass
class Batch:
    """A padded training batch."""

    input_ids: np.ndarray
    labels: np.ndarray

    @property
    def size(self) -> int:
        """Number of sequences in the batch."""
        return int(self.input_ids.shape[0])


def pad_sequences(
    sequences: Sequence[Sequence[int]],
    pad_id: int,
    max_length: int | None = None,
) -> np.ndarray:
    """Right-pad integer sequences into a dense ``(batch, length)`` array.

    ``max_length`` truncates longer sequences before padding.
    """
    if not sequences:
        raise ModelConfigError("cannot pad an empty list of sequences")
    longest = max(len(sequence) for sequence in sequences)
    if max_length is not None:
        longest = min(longest, max_length)
    longest = max(longest, 1)
    array = np.full((len(sequences), longest), pad_id, dtype=np.int64)
    for row, sequence in enumerate(sequences):
        clipped = list(sequence)[:longest]
        array[row, : len(clipped)] = clipped
    return array


def collate_text_pairs(
    sources: Sequence[str],
    targets: Sequence[str],
    tokenizer: DataVisTokenizer,
    max_input_length: int | None = None,
    max_target_length: int | None = None,
) -> Batch:
    """Tokenize and pad parallel source/target texts into a :class:`Batch`."""
    if len(sources) != len(targets):
        raise ModelConfigError("sources and targets must have the same length")
    source_ids = tokenizer.batch_encode(sources, max_length=max_input_length)
    target_ids = tokenizer.batch_encode(targets, max_length=max_target_length)
    pad_id = tokenizer.vocab.pad_id
    return Batch(
        input_ids=pad_sequences(source_ids, pad_id, max_input_length),
        labels=pad_sequences(target_ids, pad_id, max_target_length),
    )


def collate_token_pairs(
    source_ids: Sequence[Sequence[int]],
    target_ids: Sequence[Sequence[int]],
    pad_id: int,
    max_input_length: int | None = None,
    max_target_length: int | None = None,
) -> Batch:
    """Pad already-tokenized id sequences into a :class:`Batch`."""
    if len(source_ids) != len(target_ids):
        raise ModelConfigError("source_ids and target_ids must have the same length")
    return Batch(
        input_ids=pad_sequences(source_ids, pad_id, max_input_length),
        labels=pad_sequences(target_ids, pad_id, max_target_length),
    )


def padding_efficiency(lengths: Sequence[int]) -> float:
    """Fraction of a padded ``(batch, max(lengths))`` block that is real data.

    1.0 means every sequence has the longest length (no padding waste); the
    serving layer records this per dispatched batch so operators can see how
    much forward-pass compute the batching policy spends on pad positions.
    An empty batch is defined as perfectly efficient.
    """
    if not lengths:
        return 1.0
    longest = max(lengths)
    if longest <= 0:
        return 1.0
    return sum(lengths) / (longest * len(lengths))


def group_into_batches(items: Sequence, batch_size: int) -> list[list]:
    """Split ``items`` into consecutive order-preserving batches of at most ``batch_size``.

    Unlike :func:`iterate_minibatches` this never shuffles — the serving layer
    relies on the order so that scattered results line up with their requests.
    """
    if batch_size <= 0:
        raise ModelConfigError("batch_size must be positive")
    return [list(items[start : start + batch_size]) for start in range(0, len(items), batch_size)]


def iterate_minibatches(items: Sequence, batch_size: int, rng: np.random.Generator | None = None):
    """Yield mini-batches (lists) of ``items``, shuffled when ``rng`` is given.

    Used by every training loop; pass a seeded generator from
    :func:`repro.utils.rng.seeded_rng` to make epoch order reproducible.
    """
    if batch_size <= 0:
        raise ModelConfigError("batch_size must be positive")
    order = np.arange(len(items))
    if rng is not None:
        order = rng.permutation(len(items))
    for start in range(0, len(items), batch_size):
        indices = order[start : start + batch_size]
        yield [items[int(index)] for index in indices]
