"""Single-task and multi-task fine-tuning (§III-F of the paper).

* :class:`SingleTaskFineTuner` trains on one task's (source, target) pairs —
  the SFT setting used for the CodeT5+ / T5 baselines and the SFT ablation;
* :class:`MultiTaskFineTuner` merges the training data of all four tasks with
  temperature up-sampling (temperature 2, following T5) so small corpora are
  not overwhelmed by large ones — the MFT setting of the final DataVisT5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.batching import iterate_minibatches
from repro.core.config import TrainingConfig
from repro.core.model import DataVisT5
from repro.datasets.corpus import Seq2SeqExample
from repro.datasets.mixing import TemperatureMixedSampler
from repro.errors import ModelConfigError
from repro.utils.rng import derive_seed, seeded_rng


@dataclass
class FineTuningReport:
    """Summary of one fine-tuning run."""

    epoch_losses: list[float] = field(default_factory=list)
    num_steps: int = 0
    task_counts: dict[str, int] = field(default_factory=dict)

    @property
    def final_loss(self) -> float:
        """Loss of the last recorded epoch (NaN before any epoch ran)."""
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class _BaseFineTuner:
    def __init__(self, model: DataVisT5, config: TrainingConfig | None = None):
        self.model = model
        self.config = config or TrainingConfig()

    def _train_on_examples(self, epochs_examples: Sequence[Sequence[Seq2SeqExample]]) -> FineTuningReport:
        config = self.config
        report = FineTuningReport()
        total_steps = sum(
            max(1, (len(examples) + config.batch_size - 1) // config.batch_size) for examples in epochs_examples
        )
        optimizer = self.model.make_optimizer(
            total_steps=total_steps,
            learning_rate=config.learning_rate,
            warmup_ratio=config.warmup_ratio,
            weight_decay=config.weight_decay,
        )
        for epoch, examples in enumerate(epochs_examples):
            epoch_rng = seeded_rng(derive_seed(config.seed, "finetune_epoch", epoch))
            losses: list[float] = []
            for minibatch in iterate_minibatches(list(examples), config.batch_size, rng=epoch_rng):
                sources = [example.source for example in minibatch]
                targets = [example.target for example in minibatch]
                for example in minibatch:
                    report.task_counts[example.task] = report.task_counts.get(example.task, 0) + 1
                batch = self.model.collate(sources, targets)
                loss = self.model.train_step(batch, optimizer, max_grad_norm=config.max_grad_norm)
                losses.append(loss)
                report.num_steps += 1
            report.epoch_losses.append(float(np.mean(losses)) if losses else float("nan"))
        return report


class SingleTaskFineTuner(_BaseFineTuner):
    """Fine-tunes the model on a single task's training pairs."""

    def __init__(self, model: DataVisT5, examples: Sequence[Seq2SeqExample], config: TrainingConfig | None = None):
        super().__init__(model, config)
        if not examples:
            raise ModelConfigError("single-task fine-tuning needs a non-empty training set")
        self.examples = list(examples)

    def train(self) -> FineTuningReport:
        """Run the fine-tuning loop and return its per-epoch report."""
        epochs = [self.examples for _ in range(self.config.num_epochs)]
        return self._train_on_examples(epochs)


class MultiTaskFineTuner(_BaseFineTuner):
    """Fine-tunes on all tasks jointly with temperature-mixed sampling."""

    def __init__(
        self,
        model: DataVisT5,
        task_examples: Mapping[str, Sequence[Seq2SeqExample]],
        config: TrainingConfig | None = None,
        examples_per_epoch: int | None = None,
        use_temperature_mixing: bool = True,
    ):
        super().__init__(model, config)
        non_empty = {task: list(examples) for task, examples in task_examples.items() if examples}
        if not non_empty:
            raise ModelConfigError("multi-task fine-tuning needs at least one non-empty task")
        self.task_examples = non_empty
        total = sum(len(examples) for examples in non_empty.values())
        self.examples_per_epoch = examples_per_epoch or total
        self.use_temperature_mixing = use_temperature_mixing

    def _epoch_examples(self, epoch: int) -> list[Seq2SeqExample]:
        if self.use_temperature_mixing:
            sampler = TemperatureMixedSampler(
                self.task_examples,
                temperature=self.config.temperature,
                seed=derive_seed(self.config.seed, "mft_sampler", epoch),
            )
            return sampler.epoch(self.examples_per_epoch)
        # Without up-sampling: plain concatenation (proportional sampling).
        merged: list[Seq2SeqExample] = []
        for examples in self.task_examples.values():
            merged.extend(examples)
        rng = seeded_rng(derive_seed(self.config.seed, "mft_concat", epoch))
        order = rng.permutation(len(merged))
        merged = [merged[int(index)] for index in order]
        return merged[: self.examples_per_epoch]

    def train(self) -> FineTuningReport:
        """Run temperature-mixed multi-task fine-tuning and return its report."""
        epochs = [self._epoch_examples(epoch) for epoch in range(self.config.num_epochs)]
        return self._train_on_examples(epochs)
