"""The DataVisT5 model: tokenizer + T5 encoder--decoder with a text API.

The class exposes exactly what the training loops and the evaluation harness
need: ``train_step`` on a batch of (source text, target text) pairs,
``predict`` for greedy/beam generation from text to text, loss evaluation,
and state persistence.  It deliberately knows nothing about specific tasks —
task formatting lives in :mod:`repro.encoding.sequences` and the dataset
builders.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core.batching import Batch, collate_text_pairs
from repro.core.config import DataVisT5Config, precision_compute_dtype, validate_precision
from repro.errors import ModelConfigError
from repro.nn.calibration import QuantPolicy, apply_policy, calibrate_policy
from repro.nn.optim import Adam, LinearWarmupSchedule, clip_grad_norm
from repro.nn.transformer import T5Model

#: Reserved ``weights.npz`` entry carrying the serialized :class:`QuantPolicy`.
QUANT_POLICY_KEY = "__quant_policy__"
from repro.tokenization.tokenizer import DataVisTokenizer
from repro.tokenization.vocab import Vocabulary


def checkpoint_fingerprint(checkpoint: str | Path) -> str:
    """The content fingerprint of a checkpoint's ``weights.npz``.

    ``checkpoint`` is a checkpoint directory (as written by
    :meth:`DataVisT5.save`) or a direct path to a ``weights.npz`` file.  The
    fingerprint is ``"sha256:<hex>"`` over the file's raw bytes, streamed in
    chunks so large checkpoints never load into memory.  Deployment manifests
    (:mod:`repro.deploy.manifest`) record it at registration time and verify
    it before activation, so a checkpoint that was overwritten, truncated or
    swapped since it was registered is refused rather than silently served.
    """
    path = Path(checkpoint)
    weights = path / "weights.npz" if path.is_dir() else path
    if not weights.exists():
        raise ModelConfigError(f"no weights file to fingerprint at {weights}")
    digest = hashlib.sha256()
    with open(weights, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return f"sha256:{digest.hexdigest()}"


class DataVisT5:
    """A DataVisT5 instance: configuration, tokenizer and transformer weights."""

    def __init__(self, config: DataVisT5Config, tokenizer: DataVisTokenizer):
        self.config = config
        self.tokenizer = tokenizer
        transformer_config = config.to_transformer_config(
            vocab_size=len(tokenizer.vocab),
            pad_id=tokenizer.vocab.pad_id,
            eos_id=tokenizer.vocab.eos_id,
            bos_id=tokenizer.vocab.bos_id,
        )
        self.model = T5Model(transformer_config)
        self.quant_policy: QuantPolicy | None = None
        self._calibration_stats: dict | None = None
        if config.precision == "int8":
            # An int8 config means "this instance is quantized"; loading a
            # checkpoint afterwards simply overwrites codes and scales.
            self.model.quantize_int8()

    # -- construction ---------------------------------------------------------------
    @classmethod
    def from_corpus(
        cls,
        texts: Sequence[str],
        config: DataVisT5Config | None = None,
        max_vocab_size: int | None = 4000,
        min_frequency: int = 1,
    ) -> "DataVisT5":
        """Build a model whose tokenizer vocabulary covers ``texts``."""
        config = config or DataVisT5Config()
        tokenizer = DataVisTokenizer.build_from_corpus(
            texts, max_vocab_size=max_vocab_size, min_frequency=min_frequency
        )
        return cls(config, tokenizer)

    def num_parameters(self) -> int:
        """Total scalar parameters of the underlying transformer."""
        return self.model.num_parameters()

    # -- precision --------------------------------------------------------------------
    @property
    def quantized(self) -> bool:
        """Whether the transformer's weights are stored as int8 codes + scales."""
        return self.model.quantized

    def calibrate(
        self,
        texts: Sequence[str],
        n: int = 64,
        alpha: float = 0.5,
        target_agreement: float = 0.995,
        max_float_fraction: float = 0.10,
        max_length: int | None = None,
    ) -> QuantPolicy:
        """Calibrate an int8 quantization policy on held-out source texts.

        Runs up to ``n`` of ``texts`` through the float64 model to collect
        per-channel activation statistics, scans per-module sensitivity and
        searches for the mixed-precision :class:`~repro.nn.calibration.QuantPolicy`
        that keeps greedy decode agreement at or above ``target_agreement``
        (pinning at most ``max_float_fraction`` of the quantizable parameters
        to float32).  ``alpha`` is the SmoothQuant-style outlier-migration
        knob (0 = weight-only scales, 1 = activation-only).  The policy and
        the activation statistics are stored on the instance so a subsequent
        :meth:`quantize_int8` applies them by default, and :meth:`save`
        persists the policy inside ``weights.npz``.  The model itself stays
        unquantized (and trainable) until :meth:`quantize_int8` is called.
        See ``docs/numerics.md`` for the full workflow.
        """
        if self.quantized:
            raise ModelConfigError("calibrate() needs float weights; the model is already int8")
        if not texts:
            raise ModelConfigError("calibrate() needs at least one calibration text")
        if n < 1:
            raise ModelConfigError(f"calibration sample count must be >= 1, got {n}")
        sample = list(texts)[:n]
        self.model.eval()
        encoded = self.tokenizer.batch_encode(sample, max_length=self.config.max_input_length)
        from repro.core.batching import pad_sequences

        input_ids = pad_sequences(encoded, self.tokenizer.vocab.pad_id, self.config.max_input_length)
        policy, stats = calibrate_policy(
            self.model,
            input_ids,
            alpha=alpha,
            target_agreement=target_agreement,
            max_float_fraction=max_float_fraction,
            max_length=max_length or self.config.max_decode_length,
        )
        self.quant_policy = policy
        self._calibration_stats = stats
        return policy

    def quantize_int8(self, policy: QuantPolicy | None = None) -> "DataVisT5":
        """Quantize every projection/embedding weight to int8 in place.

        With a :class:`~repro.nn.calibration.QuantPolicy` — passed explicitly
        or left over from :meth:`calibrate` / an int8 checkpoint — each
        module takes its calibrated mode (symmetric int8, zero-point int8, or
        a float32 pin), with activation-aware equalization folded in when the
        calibration statistics are available on this instance.  Without any
        policy every module is quantized symmetrically, as before.

        Flips the instance's default precision to ``"int8"`` (so ``predict``
        decodes in float32 over the quantized weights) and freezes the
        quantized parameters — further :meth:`train_step` calls raise.
        The config object is replaced, not mutated, so other models sharing
        the caller's config instance are unaffected.  Returns ``self`` for
        chaining.
        """
        policy = policy or self.quant_policy
        if not self.quantized:
            if policy is not None:
                apply_policy(self.model, policy, self._calibration_stats)
            else:
                self.model.quantize_int8()
        self.quant_policy = policy
        self.config = replace(self.config, precision="int8")
        return self

    def resolve_precision(self, precision: str | None = None) -> str:
        """Resolve a per-call precision override against the config default.

        Raises :class:`ModelConfigError` for unknown modes, or for ``int8``
        when the weights have not been quantized.
        """
        resolved = validate_precision(precision or self.config.precision)
        if resolved == "int8" and not self.quantized:
            raise ModelConfigError(
                "precision='int8' requires quantized weights; call quantize_int8() "
                "or load an int8 checkpoint first"
            )
        return resolved

    # -- optimization -----------------------------------------------------------------
    def make_optimizer(
        self,
        total_steps: int,
        learning_rate: float = 5e-3,
        warmup_ratio: float = 0.1,
        weight_decay: float = 0.01,
    ) -> Adam:
        """An AdamW optimizer with the paper's linear warm-up schedule."""
        schedule = LinearWarmupSchedule(learning_rate, total_steps=max(total_steps, 1), warmup_ratio=warmup_ratio)
        return Adam(self.model.parameters(), learning_rate=schedule, weight_decay=weight_decay)

    def train_step(
        self,
        batch: Batch,
        optimizer: Adam,
        max_grad_norm: float = 1.0,
    ) -> float:
        """One optimization step on a padded batch; returns the loss value."""
        if self.quantized:
            raise ModelConfigError(
                "cannot train an int8-quantized model; quantize after training "
                "(training always runs in float64, see docs/numerics.md)"
            )
        self.model.train()
        optimizer.zero_grad()
        output = self.model(batch.input_ids, labels=batch.labels)
        loss = output["loss"]
        loss.backward()
        clip_grad_norm(self.model.parameters(), max_grad_norm)
        optimizer.step()
        return float(loss.item())

    def compute_loss(self, sources: Sequence[str], targets: Sequence[str]) -> float:
        """Average token-level cross-entropy of ``targets`` given ``sources`` (no update)."""
        self.model.eval()
        batch = self.collate(sources, targets)
        output = self.model(batch.input_ids, labels=batch.labels)
        return float(output["loss"].item())

    def collate(self, sources: Sequence[str], targets: Sequence[str]) -> Batch:
        """Tokenize and pad (source, target) text pairs into a training batch."""
        return collate_text_pairs(
            sources,
            targets,
            self.tokenizer,
            max_input_length=self.config.max_input_length,
            max_target_length=self.config.max_target_length,
        )

    # -- inference ----------------------------------------------------------------------
    def predict(
        self,
        source: str,
        num_beams: int = 1,
        max_length: int | None = None,
        use_cache: bool = True,
        precision: str | None = None,
    ) -> str:
        """Generate the output text for one source text."""
        return self.predict_batch(
            [source], num_beams=num_beams, max_length=max_length, use_cache=use_cache, precision=precision
        )[0]

    def predict_batch(
        self,
        sources: Sequence[str],
        num_beams: int = 1,
        max_length: int | None = None,
        use_cache: bool = True,
        precision: str | None = None,
    ) -> list[str]:
        """Generate output texts for a batch of source texts.

        ``use_cache`` selects between KV-cached incremental decoding (the
        default fast path) and the naive reference loop; both produce
        identical texts.  ``precision`` overrides the config's inference
        precision for this call (``"float64"`` / ``"float32"`` / ``"int8"``;
        ``int8`` requires already-quantized weights).
        """
        if not sources:
            return []
        resolved = self.resolve_precision(precision)
        self.model.eval()
        encoded = self.tokenizer.batch_encode(list(sources), max_length=self.config.max_input_length)
        from repro.core.batching import pad_sequences

        input_ids = pad_sequences(encoded, self.tokenizer.vocab.pad_id, self.config.max_input_length)
        generated = self.model.generate(
            input_ids,
            max_length=max_length or self.config.max_decode_length,
            num_beams=num_beams,
            use_cache=use_cache,
            dtype=precision_compute_dtype(resolved),
        )
        return [self.tokenizer.decode(row) for row in generated]

    # -- persistence --------------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Save config, vocabulary and weights under ``directory``.

        Quantized models persist their weights as int8 codes plus per-row
        scales (``<name>.int8`` / ``<name>.int8_scale`` entries in
        ``weights.npz``, plus ``.int8_zp`` / ``.int8_eq`` for calibrated
        zero points and equalization), which shrinks the checkpoint by
        roughly the quantized fraction of the parameters (~8x on the
        projection and embedding weights); :meth:`load` reconstructs the
        exact same dequantized masters bitwise.  A calibrated
        :class:`~repro.nn.calibration.QuantPolicy` travels inside
        ``weights.npz`` under :data:`QUANT_POLICY_KEY`, and its float32-pinned
        weights are stored as float32 (the in-memory masters were already
        snapped to float32 precision when the policy was applied, so the
        round trip stays bitwise).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        config_payload = {
            "size": self.config.size,
            "d_model": self.config.d_model,
            "num_heads": self.config.num_heads,
            "d_ff": self.config.d_ff,
            "num_encoder_layers": self.config.num_encoder_layers,
            "num_decoder_layers": self.config.num_decoder_layers,
            "dropout": self.config.dropout,
            "max_input_length": self.config.max_input_length,
            "max_target_length": self.config.max_target_length,
            "max_decode_length": self.config.max_decode_length,
            "precision": self.config.precision,
            "seed": self.config.seed,
        }
        (directory / "config.json").write_text(json.dumps(config_payload, indent=2), encoding="utf-8")
        self.tokenizer.vocab.save(directory / "vocab.json")
        state = self.model.int8_state_dict() if self.quantized else self.model.state_dict()
        if self.quant_policy is not None:
            if self.quantized:
                for name in self.quant_policy.float32_modules:
                    key = f"{name}.weight"
                    if key in state:
                        state[key] = state[key].astype(np.float32)
            state[QUANT_POLICY_KEY] = np.array(self.quant_policy.to_json())
        np.savez(directory / "weights.npz", **state)

    @classmethod
    def load(cls, directory: str | Path) -> "DataVisT5":
        """Load a model previously written by :meth:`save`.

        Int8 checkpoints round-trip bitwise: the loaded model's codes, scales
        and dequantized masters equal the saved model's exactly, so its
        predictions are identical.  A persisted
        :class:`~repro.nn.calibration.QuantPolicy` is restored onto
        ``quant_policy`` (and re-validated — a tampered policy entry fails
        loudly), so re-quantizing a float checkpoint or rebuilding a deployed
        pipeline reuses the exact calibrated configuration.
        """
        directory = Path(directory)
        config_path = directory / "config.json"
        vocab_path = directory / "vocab.json"
        weights_path = directory / "weights.npz"
        for path in (config_path, vocab_path, weights_path):
            if not path.exists():
                raise ModelConfigError(f"missing checkpoint file: {path}")
        payload = json.loads(config_path.read_text(encoding="utf-8"))
        config = DataVisT5Config(**payload)
        tokenizer = DataVisTokenizer(Vocabulary.load(vocab_path))
        model = cls(config, tokenizer)
        with np.load(weights_path) as data:
            state = {name: data[name] for name in data.files}
        policy_entry = state.pop(QUANT_POLICY_KEY, None)
        if policy_entry is not None:
            model.quant_policy = QuantPolicy.from_json(str(policy_entry))
        model.model.load_state_dict(state)
        return model

    def clone_architecture(self) -> "DataVisT5":
        """A fresh model with the same config and tokenizer but re-initialised weights."""
        return DataVisT5(self.config, self.tokenizer)

    def copy_weights_from(self, other: "DataVisT5") -> None:
        """Copy weights from another model with an identical architecture."""
        self.model.load_state_dict(other.model.state_dict())
