"""Configuration objects for the DataVisT5 model and its training loops."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelConfigError
from repro.nn.transformer import TransformerConfig

#: Inference precision modes a DataVisT5 (and the serving layer) can run in.
#: ``float64`` is the training dtype and the reference; ``float32`` runs
#: ``no_grad`` generation in single precision end-to-end; ``int8`` means
#: int8-quantized Linear/embedding weights *and* float32 compute.  Training
#: is float64 regardless — see ``docs/numerics.md``.
PRECISION_MODES = ("float64", "float32", "int8")


def validate_precision(precision: str) -> str:
    """Return ``precision`` if it is a known mode, else raise :class:`ModelConfigError`."""
    if precision not in PRECISION_MODES:
        raise ModelConfigError(
            f"unknown precision {precision!r}; choose from {', '.join(PRECISION_MODES)}"
        )
    return precision


def precision_compute_dtype(precision: str) -> str:
    """The tensor compute dtype a precision mode decodes with.

    ``int8`` is a weight-storage format; its matmuls run in float32.
    """
    return "float64" if validate_precision(precision) == "float64" else "float32"


@dataclass
class DataVisT5Config:
    """Hyper-parameters of a DataVisT5 instance.

    The paper trains 220M- and 770M-parameter CodeT5+ checkpoints; here the
    ``size`` presets select proportionally scaled-down numpy transformers
    ("base" standing in for the 220M model and "large" for the 770M one) so
    the relative comparison between the two sizes is preserved.

    ``precision`` is the *inference* mode the instance defaults to (one of
    :data:`PRECISION_MODES`); ``int8`` quantizes the transformer's projection
    and embedding weights at construction (or on checkpoint load), making the
    instance inference-only.
    """

    size: str = "base"
    d_model: int = 64
    num_heads: int = 4
    d_ff: int = 128
    num_encoder_layers: int = 2
    num_decoder_layers: int = 2
    dropout: float = 0.0
    max_input_length: int = 160
    max_target_length: int = 80
    max_decode_length: int = 80
    precision: str = "float64"
    seed: int = 0

    def __post_init__(self):
        validate_precision(self.precision)

    _PRESETS = {
        "tiny": {"d_model": 32, "num_heads": 2, "d_ff": 64, "num_encoder_layers": 1, "num_decoder_layers": 1},
        "base": {"d_model": 64, "num_heads": 4, "d_ff": 128, "num_encoder_layers": 2, "num_decoder_layers": 2},
        "large": {"d_model": 96, "num_heads": 6, "d_ff": 192, "num_encoder_layers": 3, "num_decoder_layers": 3},
    }

    @classmethod
    def from_preset(cls, size: str, **overrides) -> "DataVisT5Config":
        """Build a config from one of the named presets (tiny / base / large)."""
        if size not in cls._PRESETS:
            raise ModelConfigError(f"unknown size preset {size!r}; choose from {sorted(cls._PRESETS)}")
        params = dict(cls._PRESETS[size])
        params.update(overrides)
        return cls(size=size, **params)

    def to_transformer_config(self, vocab_size: int, pad_id: int, eos_id: int, bos_id: int) -> TransformerConfig:
        """Expand into the transformer's config for a concrete vocabulary."""
        return TransformerConfig(
            vocab_size=vocab_size,
            d_model=self.d_model,
            num_heads=self.num_heads,
            d_ff=self.d_ff,
            num_encoder_layers=self.num_encoder_layers,
            num_decoder_layers=self.num_decoder_layers,
            dropout=self.dropout,
            max_decode_length=self.max_decode_length,
            pad_id=pad_id,
            eos_id=eos_id,
            bos_id=bos_id,
            seed=self.seed,
        )


@dataclass
class TrainingConfig:
    """Hyper-parameters shared by the pre-training and fine-tuning loops."""

    learning_rate: float = 5e-3
    batch_size: int = 8
    num_epochs: int = 3
    warmup_ratio: float = 0.1
    weight_decay: float = 0.01
    max_grad_norm: float = 1.0
    label_smoothing: float = 0.0
    temperature: float = 2.0
    bdc_swap_probability: float = 0.5
    mlm_fraction: float = 0.5
    log_every: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.learning_rate <= 0:
            raise ModelConfigError("learning_rate must be positive")
        if self.batch_size <= 0:
            raise ModelConfigError("batch_size must be positive")
        if self.num_epochs <= 0:
            raise ModelConfigError("num_epochs must be positive")
        if not 0.0 <= self.bdc_swap_probability <= 1.0:
            raise ModelConfigError("bdc_swap_probability must be in [0, 1]")
        if not 0.0 <= self.mlm_fraction <= 1.0:
            raise ModelConfigError("mlm_fraction must be in [0, 1]")
