"""Pre-training objectives: span-corruption MLM and the BDC objective.

Both objectives are expressed as ordinary (source tokens, target tokens)
pairs so the same training step can consume them — which is exactly how the
paper builds its *hybrid* objective: every mini-batch mixes examples drawn
from the MLM corpus and from the dual-corpus pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.corpus import Seq2SeqExample
from repro.errors import ModelConfigError
from repro.tokenization.tokenizer import DataVisTokenizer
from repro.utils.rng import seeded_rng


@dataclass
class SpanCorruptionConfig:
    """Parameters of the T5 span-corruption objective.

    The paper keeps the original T5 settings: 15% of tokens are masked with a
    mean span length of 3 subword tokens.
    """

    corruption_rate: float = 0.15
    mean_span_length: float = 3.0

    def __post_init__(self):
        if not 0.0 < self.corruption_rate < 1.0:
            raise ModelConfigError("corruption_rate must be in (0, 1)")
        if self.mean_span_length < 1.0:
            raise ModelConfigError("mean_span_length must be at least 1")


def span_corruption(
    token_ids: list[int],
    tokenizer: DataVisTokenizer,
    config: SpanCorruptionConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[list[int], list[int]]:
    """Apply T5 span corruption to ``token_ids``.

    Returns ``(input_ids, target_ids)`` where masked spans in the input are
    replaced by sentinel tokens and the target lists each sentinel followed by
    the tokens it hides, terminated by EOS.
    """
    config = config or SpanCorruptionConfig()
    rng = seeded_rng(rng)
    tokens = [token_id for token_id in token_ids if token_id != tokenizer.vocab.eos_id]
    length = len(tokens)
    if length == 0:
        return [tokenizer.vocab.eos_id], [tokenizer.vocab.eos_id]

    num_to_mask = max(1, int(round(length * config.corruption_rate)))
    num_spans = max(1, int(round(num_to_mask / config.mean_span_length)))
    num_spans = min(num_spans, tokenizer.num_sentinels, length)

    span_starts = _sample_span_starts(length, num_spans, num_to_mask, rng)
    masked = np.zeros(length, dtype=bool)
    for start, span_length in span_starts:
        masked[start : start + span_length] = True

    input_ids: list[int] = []
    target_ids: list[int] = []
    sentinel_index = 0
    position = 0
    while position < length:
        if masked[position]:
            sentinel = tokenizer.sentinel_id(sentinel_index)
            sentinel_index += 1
            input_ids.append(sentinel)
            target_ids.append(sentinel)
            while position < length and masked[position]:
                target_ids.append(tokens[position])
                position += 1
        else:
            input_ids.append(tokens[position])
            position += 1
    input_ids.append(tokenizer.vocab.eos_id)
    target_ids.append(tokenizer.vocab.eos_id)
    return input_ids, target_ids


def _sample_span_starts(
    length: int,
    num_spans: int,
    num_to_mask: int,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Choose non-overlapping (start, length) spans covering ~``num_to_mask`` tokens."""
    base_length = max(1, num_to_mask // num_spans)
    spans: list[tuple[int, int]] = []
    occupied = np.zeros(length, dtype=bool)
    attempts = 0
    while len(spans) < num_spans and attempts < 10 * num_spans:
        attempts += 1
        span_length = max(1, int(rng.poisson(base_length)) or base_length)
        span_length = min(span_length, length)
        start = int(rng.integers(0, max(1, length - span_length + 1)))
        if occupied[start : start + span_length].any():
            continue
        occupied[start : start + span_length] = True
        spans.append((start, span_length))
    if not spans:
        spans.append((0, min(base_length, length)))
    return sorted(spans)


def bdc_pair_to_example(
    pair: Seq2SeqExample,
    rng: np.random.Generator | int | None = None,
    swap_probability: float = 0.5,
) -> Seq2SeqExample:
    """Realise the Bidirectional Dual-Corpus objective for one pair.

    With probability ``swap_probability`` the roles of source and target are
    exchanged, so the model learns to translate in both directions between
    the text and DV modalities.
    """
    rng = seeded_rng(rng)
    if rng.random() < swap_probability:
        return pair.swapped()
    return pair
