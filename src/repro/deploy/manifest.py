"""Deployment manifests: the declarative identity of one model version.

A :class:`DeploymentManifest` is everything needed to reconstruct — and
trust — one deployable unit: a ``name@version`` identity, the tasks it
serves, *how* its backends are built (a saved :class:`~repro.core.model.
DataVisT5` checkpoint, or a baseline-registry config spec), the inference
precision and decode settings, and a content fingerprint of the checkpoint's
``weights.npz`` so the registry can prove the bytes on disk are the bytes
that were registered.  A retrieval-grounded deployment additionally names
its :class:`~repro.datasets.corpus.CorpusIndex` artifact (``corpus_index``)
and pins its content hash (``index_fingerprint``) — verified exactly like
the checkpoint, so a tampered corpus fails activation too.  Manifests are
plain frozen dataclasses with a strict
JSON round trip (:meth:`~DeploymentManifest.as_dict` /
:meth:`~DeploymentManifest.from_dict`), validated eagerly at construction —
a malformed manifest fails when it is written, not when a hot-swap tries to
activate it under traffic.

Every manifest is stamped with the ``repro`` package version that created it
(``repro_version``), the provenance breadcrumb that answers "which code
built this deployment?" long after the process is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro import __version__
from repro.core.config import validate_precision
from repro.core.model import checkpoint_fingerprint
from repro.datasets.corpus import corpus_index_fingerprint
from repro.deploy.router import deployment_id
from repro.errors import ModelConfigError
from repro.nn.calibration import QuantPolicy
from repro.serving.protocol import MODEL_TASKS, SERVABLE_TASKS

#: The decode knobs a manifest may pin (applied to the deployment's engines).
DECODE_KEYS = ("use_cache",)


@dataclass(frozen=True)
class DeploymentManifest:
    """One versioned, reconstructible deployment.

    Exactly one of ``checkpoint`` (a :meth:`DataVisT5.save` directory, with
    ``fingerprint`` recording its ``weights.npz`` content hash) and
    ``backends`` (a :meth:`Pipeline.from_config` spec of per-task baseline
    builders) must be set — the two backend families the serving layer knows
    how to build.  ``tasks`` declares the serving surface; ``precision`` and
    ``decode`` pin the inference knobs (see ``docs/numerics.md`` and
    ``docs/decoding.md``); ``calibration`` records the checkpoint's int8
    :class:`~repro.nn.calibration.QuantPolicy` (its ``as_dict`` form) so
    ``build_pipeline`` can reconstruct the exact calibrated mixed-precision
    model; ``metadata`` is free-form operator context
    (training run, dataset hash, owner...).  ``repro_version`` is stamped
    automatically.

    ``tasks`` defaults to :data:`~repro.serving.protocol.MODEL_TASKS` (the
    model-backed tasks); serving ``corpus_qa`` requires declaring it
    explicitly *and* naming a ``corpus_index`` — a saved
    :class:`~repro.datasets.corpus.CorpusIndex` file whose content hash is
    pinned in ``index_fingerprint`` and re-proved by :meth:`verify_index`
    before activation.
    """

    name: str
    version: int
    tasks: tuple[str, ...] = MODEL_TASKS
    checkpoint: str | None = None
    fingerprint: str | None = None
    backends: dict | None = None
    corpus_index: str | None = None
    index_fingerprint: str | None = None
    precision: str | None = None
    decode: dict = field(default_factory=dict)
    calibration: dict | None = None
    metadata: dict = field(default_factory=dict)
    repro_version: str = __version__

    def __post_init__(self):
        object.__setattr__(self, "tasks", tuple(self.tasks))
        self.validate()

    @property
    def id(self) -> str:
        """The ``"name@version"`` identity this manifest deploys as."""
        return deployment_id(self.name, self.version)

    # -- validation ---------------------------------------------------------------------
    def validate(self) -> None:
        """Check every field; raise :class:`ModelConfigError` on the first violation.

        Runs at construction and again before activation (``ModelRegistry.
        verify``), so a manifest that was hand-edited on disk is still caught
        before it can route traffic.
        """
        if not isinstance(self.name, str) or not self.name:
            raise ModelConfigError("manifest name must be a non-empty string")
        if "@" in self.name:
            raise ModelConfigError(f"manifest name {self.name!r} must not contain '@'")
        if not isinstance(self.version, int) or isinstance(self.version, bool) or self.version < 1:
            raise ModelConfigError(f"manifest version must be a positive integer, got {self.version!r}")
        if not self.tasks:
            raise ModelConfigError("manifest must declare at least one task")
        unknown_tasks = sorted(set(self.tasks) - set(SERVABLE_TASKS))
        if unknown_tasks:
            raise ModelConfigError(
                f"unknown tasks in manifest {self.id}: {', '.join(unknown_tasks)}; "
                f"servable tasks: {', '.join(SERVABLE_TASKS)}"
            )
        if (self.checkpoint is None) == (self.backends is None):
            raise ModelConfigError(
                f"manifest {self.id} must set exactly one of 'checkpoint' and 'backends'"
            )
        if self.backends is not None and not isinstance(self.backends, dict):
            raise ModelConfigError(f"manifest backends must be a config dict, got {type(self.backends).__name__}")
        if self.fingerprint is not None:
            if self.checkpoint is None:
                raise ModelConfigError("a fingerprint is only meaningful with a checkpoint")
            if not isinstance(self.fingerprint, str) or not self.fingerprint.startswith("sha256:"):
                raise ModelConfigError(
                    f"fingerprint must look like 'sha256:<hex>', got {self.fingerprint!r}"
                )
        if self.corpus_index is not None and (
            not isinstance(self.corpus_index, str) or not self.corpus_index
        ):
            raise ModelConfigError("manifest corpus_index must be a non-empty path string")
        if self.index_fingerprint is not None:
            if self.corpus_index is None:
                raise ModelConfigError("an index_fingerprint is only meaningful with a corpus_index")
            if not isinstance(self.index_fingerprint, str) or not self.index_fingerprint.startswith(
                "sha256:"
            ):
                raise ModelConfigError(
                    f"index_fingerprint must look like 'sha256:<hex>', got {self.index_fingerprint!r}"
                )
        if "corpus_qa" in self.tasks and self.corpus_index is None:
            raise ModelConfigError(
                f"manifest {self.id} declares the corpus_qa task but names no corpus_index; "
                "retrieval-grounded serving needs a saved CorpusIndex artifact"
            )
        if self.precision is not None:
            validate_precision(self.precision)
        if not isinstance(self.decode, dict):
            raise ModelConfigError("manifest decode settings must be a dict")
        unknown_decode = sorted(set(self.decode) - set(DECODE_KEYS))
        if unknown_decode:
            raise ModelConfigError(
                f"unknown decode settings in manifest {self.id}: {', '.join(unknown_decode)}; "
                f"known: {', '.join(DECODE_KEYS)}"
            )
        if "use_cache" in self.decode and not isinstance(self.decode["use_cache"], bool):
            raise ModelConfigError("decode setting 'use_cache' must be a bool")
        if self.calibration is not None:
            if self.checkpoint is None:
                raise ModelConfigError("a calibration policy is only meaningful with a checkpoint")
            # from_dict is strict, so an edited-on-disk policy fails here.
            QuantPolicy.from_dict(self.calibration)
        if not isinstance(self.metadata, dict):
            raise ModelConfigError("manifest metadata must be a dict")
        if not isinstance(self.repro_version, str) or not self.repro_version:
            raise ModelConfigError("manifest repro_version must be a non-empty string")

    def verify_checkpoint(self) -> None:
        """Prove the checkpoint on disk is the one that was registered.

        Re-hashes ``weights.npz`` and compares against the recorded
        ``fingerprint``; a missing file or a mismatch (the checkpoint was
        overwritten or corrupted since registration) raises
        :class:`ModelConfigError`.  No-op for config-backed manifests and for
        checkpoints registered without a fingerprint.
        """
        if self.checkpoint is None or self.fingerprint is None:
            return
        actual = checkpoint_fingerprint(self.checkpoint)
        if actual != self.fingerprint:
            raise ModelConfigError(
                f"checkpoint fingerprint mismatch for {self.id}: manifest records "
                f"{self.fingerprint} but {self.checkpoint} hashes to {actual}; "
                "the checkpoint changed since it was registered"
            )

    def verify_index(self) -> None:
        """Prove the corpus index on disk is the one that was registered.

        The retrieval twin of :meth:`verify_checkpoint`: re-hashes the saved
        :class:`~repro.datasets.corpus.CorpusIndex` file and compares against
        the recorded ``index_fingerprint`` — a tampered or overwritten index
        fails activation exactly like a tampered checkpoint.  No-op for
        manifests without an index or without a recorded fingerprint.
        """
        if self.corpus_index is None or self.index_fingerprint is None:
            return
        actual = corpus_index_fingerprint(self.corpus_index)
        if actual != self.index_fingerprint:
            raise ModelConfigError(
                f"corpus index fingerprint mismatch for {self.id}: manifest records "
                f"{self.index_fingerprint} but {self.corpus_index} hashes to {actual}; "
                "the index changed since it was registered"
            )

    # -- serialization ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """A JSON-ready view; :meth:`from_dict` is the exact inverse."""
        return {
            "name": self.name,
            "version": self.version,
            "tasks": list(self.tasks),
            "checkpoint": self.checkpoint,
            "fingerprint": self.fingerprint,
            "backends": self.backends,
            "corpus_index": self.corpus_index,
            "index_fingerprint": self.index_fingerprint,
            "precision": self.precision,
            "decode": dict(self.decode),
            "calibration": dict(self.calibration) if self.calibration is not None else None,
            "metadata": dict(self.metadata),
            "repro_version": self.repro_version,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DeploymentManifest":
        """Rebuild (and re-validate) a manifest from :meth:`as_dict` output.

        Unknown keys raise rather than vanish, so a registry file written by
        a newer schema fails loudly instead of silently dropping fields.
        """
        if not isinstance(payload, dict):
            raise ModelConfigError(f"manifest payload must be a dict, got {type(payload).__name__}")
        known = {field_info.name for field_info in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ModelConfigError(f"unknown manifest fields: {', '.join(unknown)}")
        missing = sorted({"name", "version"} - set(payload))
        if missing:
            raise ModelConfigError(f"manifest payload is missing fields: {', '.join(missing)}")
        data = dict(payload)
        if "tasks" in data:
            data["tasks"] = tuple(data["tasks"])
        return cls(**data)

    def bump(self, **changes) -> "DeploymentManifest":
        """The next version of this manifest: ``version + 1`` plus ``changes``.

        A convenience for roll-forward flows — re-registering the same model
        family with a new checkpoint is one call instead of re-spelling every
        field.
        """
        return replace(self, version=self.version + 1, repro_version=__version__, **changes)
