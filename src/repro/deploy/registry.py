"""The versioned model registry: every deployable version, one JSON file.

A :class:`ModelRegistry` stores :class:`~repro.deploy.manifest.
DeploymentManifest` entries keyed by ``name@version`` and persists them as a
single JSON document with a strict load/save round trip — the durable record
that outlives any serving process.  The registry is the seam between
training and serving: training saves a checkpoint and calls
:meth:`~ModelRegistry.register_checkpoint` (which fingerprints the weights
and mints the next version number); operations calls
:meth:`~ModelRegistry.build_pipeline` to turn a reference like
``"captioner@3"`` — or just ``"captioner"`` for the latest — back into a
ready :class:`~repro.serving.pipeline.Pipeline`, after
:meth:`~ModelRegistry.verify` has re-validated the manifest and proved the
checkpoint bytes still match their recorded fingerprint.  Nothing is
activated on trust.

Two backend families are constructible:

* **checkpoint manifests** — a :meth:`DataVisT5.save` directory; loading
  honors the manifest's ``precision`` (quantizing to int8 on load when asked
  of a float checkpoint) and ``decode`` settings;
* **config manifests** — a ``Pipeline.from_config`` spec of per-task
  baseline builders, reusing :mod:`repro.serving.registry` so "the model
  registered" and "the model served" are constructed identically.
"""

from __future__ import annotations

import copy
import json
from dataclasses import replace
from pathlib import Path

from repro import __version__
from repro.core.model import DataVisT5, checkpoint_fingerprint
from repro.datasets.corpus import CorpusIndex, corpus_index_fingerprint
from repro.deploy.manifest import DeploymentManifest
from repro.deploy.router import parse_ref
from repro.errors import ModelConfigError
from repro.nn.calibration import QuantPolicy
from repro.serving.pipeline import Pipeline, PipelineConfig
from repro.serving.protocol import MODEL_TASKS


class ModelRegistry:
    """Versioned deployment manifests with JSON persistence.

    ``path`` (optional) names the backing JSON file; when it exists the
    registry loads from it at construction, and every mutation re-saves —
    the registry on disk is never behind the registry in memory.  Without a
    path the registry is in-memory only (tests, dry runs) and :meth:`save`
    requires an explicit target.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._manifests: dict[str, dict[int, DeploymentManifest]] = {}
        if self.path is not None and self.path.exists():
            self._load_file(self.path)

    # -- registration -------------------------------------------------------------------
    def register(self, manifest: DeploymentManifest) -> str:
        """Add ``manifest``; returns its ``name@version`` id.

        Versions are immutable once registered: re-registering an existing
        ``name@version`` raises rather than silently replacing what a router
        somewhere may be serving.  Persists immediately when the registry is
        file-backed.
        """
        manifest.validate()
        versions = self._manifests.setdefault(manifest.name, {})
        if manifest.version in versions:
            raise ModelConfigError(
                f"deployment {manifest.id} is already registered; versions are immutable "
                "— register the next version instead"
            )
        versions[manifest.version] = manifest
        if self.path is not None:
            self.save()
        return manifest.id

    def register_checkpoint(
        self,
        name: str,
        model: DataVisT5,
        directory: str | Path,
        tasks: tuple[str, ...] = MODEL_TASKS,
        precision: str | None = None,
        decode: dict | None = None,
        metadata: dict | None = None,
        corpus_index: CorpusIndex | None = None,
    ) -> DeploymentManifest:
        """Save ``model`` under ``directory``, fingerprint it, and register it.

        The one-call path from a trained model to a deployable version: the
        checkpoint is written with :meth:`DataVisT5.save`, its ``weights.npz``
        content hash is recorded, and the manifest is minted at
        :meth:`next_version` for ``name``.  A calibrated model's
        :class:`~repro.nn.calibration.QuantPolicy` is recorded in the
        manifest's ``calibration`` field automatically (the checkpoint itself
        also embeds it, under the fingerprint).

        Passing a :class:`~repro.datasets.corpus.CorpusIndex` saves it as a
        first-class artifact next to the weights (``corpus_index.json``),
        records its content hash in the manifest's ``index_fingerprint``, and
        adds ``corpus_qa`` to the declared tasks — the deployment then serves
        retrieval-grounded QA, and :meth:`verify` proves the index bytes just
        like the checkpoint bytes.  Returns the registered manifest.
        """
        directory = Path(directory)
        model.save(directory)
        tasks = tuple(tasks)
        index_path: str | None = None
        index_fingerprint: str | None = None
        if corpus_index is not None:
            if not isinstance(corpus_index, CorpusIndex):
                raise ModelConfigError(
                    f"corpus_index must be a CorpusIndex, got {type(corpus_index).__name__}"
                )
            index_path = str(directory / "corpus_index.json")
            corpus_index.save(index_path)
            index_fingerprint = corpus_index_fingerprint(index_path)
            if "corpus_qa" not in tasks:
                tasks = tasks + ("corpus_qa",)
        manifest = DeploymentManifest(
            name=name,
            version=self.next_version(name),
            tasks=tasks,
            checkpoint=str(directory),
            fingerprint=checkpoint_fingerprint(directory),
            corpus_index=index_path,
            index_fingerprint=index_fingerprint,
            precision=precision,
            decode=dict(decode or {}),
            calibration=model.quant_policy.as_dict() if model.quant_policy is not None else None,
            metadata=dict(metadata or {}),
        )
        self.register(manifest)
        return manifest

    def next_version(self, name: str) -> int:
        """The version number a new registration under ``name`` would take."""
        versions = self._manifests.get(name)
        return max(versions) + 1 if versions else 1

    def remove(self, ref: str) -> DeploymentManifest:
        """Drop (and return) the referenced manifest; persists when file-backed."""
        manifest = self.get(ref)
        versions = self._manifests[manifest.name]
        del versions[manifest.version]
        if not versions:
            del self._manifests[manifest.name]
        if self.path is not None:
            self.save()
        return manifest

    # -- lookups ------------------------------------------------------------------------
    def get(self, ref: str) -> DeploymentManifest:
        """Resolve ``"name@version"`` (exact) or ``"name"`` (latest version)."""
        name, version = parse_ref(ref)
        versions = self._manifests.get(name)
        if not versions:
            known = ", ".join(self.names()) or "(none)"
            raise ModelConfigError(f"unknown deployment {name!r}; registered: {known}")
        if version is None:
            version = max(versions)
        if version not in versions:
            available = ", ".join(str(v) for v in sorted(versions))
            raise ModelConfigError(
                f"deployment {name!r} has no version {version}; registered versions: {available}"
            )
        return versions[version]

    def latest(self, name: str) -> DeploymentManifest:
        """The highest registered version of ``name``."""
        return self.get(name)

    def names(self) -> tuple[str, ...]:
        """Every registered deployment name, sorted."""
        return tuple(sorted(self._manifests))

    def versions(self, name: str) -> tuple[int, ...]:
        """Every registered version of ``name``, ascending."""
        versions = self._manifests.get(name)
        if not versions:
            raise ModelConfigError(f"unknown deployment {name!r}")
        return tuple(sorted(versions))

    def __contains__(self, ref: str) -> bool:
        try:
            self.get(ref)
        except ModelConfigError:
            return False
        return True

    def __len__(self) -> int:
        return sum(len(versions) for versions in self._manifests.values())

    # -- activation ---------------------------------------------------------------------
    def verify(self, ref: str) -> DeploymentManifest:
        """Re-validate the referenced manifest and its checkpoint fingerprint.

        The pre-activation gate: field validation catches a registry file
        that was hand-edited into inconsistency, and the fingerprint checks
        catch a checkpoint — or a corpus index — whose bytes changed since
        registration.  Returns the verified manifest.
        """
        manifest = self.get(ref)
        manifest.validate()
        manifest.verify_checkpoint()
        manifest.verify_index()
        return manifest

    def build_pipeline(self, ref: str, config: PipelineConfig | None = None) -> Pipeline:
        """Construct a ready :class:`Pipeline` for the referenced deployment.

        Runs :meth:`verify` first — nothing unverified is ever instantiated.
        Checkpoint manifests load the saved :class:`DataVisT5` and apply the
        manifest's ``precision`` (quantizing on load when ``"int8"`` is asked
        of a float checkpoint — honoring the manifest's recorded
        ``calibration`` policy, so the deployed mixed-precision layout matches
        what was calibrated) and ``decode`` settings on top of ``config``;
        config manifests build their baselines through
        :meth:`Pipeline.from_config`.  A manifest naming a ``corpus_index``
        loads the (just-verified) :class:`~repro.datasets.corpus.CorpusIndex`
        and wires it into the pipeline, so the deployment serves
        ``corpus_qa``.
        """
        manifest = self.verify(ref)
        if manifest.checkpoint is not None:
            model = DataVisT5.load(manifest.checkpoint)
            if manifest.calibration is not None and model.quant_policy is None:
                model.quant_policy = QuantPolicy.from_dict(manifest.calibration)
            if manifest.precision == "int8" and not model.quantized:
                model.quantize_int8()
            pipeline_config = config or PipelineConfig()
            if manifest.precision is not None:
                pipeline_config = replace(pipeline_config, precision=manifest.precision)
            if "use_cache" in manifest.decode:
                pipeline_config = replace(pipeline_config, use_cache=manifest.decode["use_cache"])
            index = (
                CorpusIndex.load(manifest.corpus_index)
                if manifest.corpus_index is not None
                else None
            )
            return Pipeline.from_model(model, config=pipeline_config, corpus_index=index)
        spec = copy.deepcopy(manifest.backends)
        if manifest.corpus_index is not None:
            spec["corpus_index"] = manifest.corpus_index
        return Pipeline.from_config(spec)

    # -- persistence --------------------------------------------------------------------
    def save(self, path: str | Path | None = None) -> Path:
        """Write the registry as one JSON document; returns the path written.

        The document records the writing package's version and every
        manifest, sorted by (name, version) so regeneration with no changes
        is byte-stable.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ModelConfigError("this registry has no backing path; pass one to save()")
        payload = {
            "repro_version": __version__,
            "deployments": [
                self._manifests[name][version].as_dict()
                for name in sorted(self._manifests)
                for version in sorted(self._manifests[name])
            ],
        }
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "ModelRegistry":
        """Read a registry previously written by :meth:`save` (strict round trip)."""
        registry = cls()
        registry._load_file(Path(path))
        registry.path = Path(path)
        return registry

    def _load_file(self, path: Path) -> None:
        if not path.exists():
            raise ModelConfigError(f"no registry file at {path}")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ModelConfigError(f"registry file {path} is not valid JSON: {error}") from None
        if not isinstance(payload, dict) or "deployments" not in payload:
            raise ModelConfigError(f"registry file {path} is missing the 'deployments' list")
        entries = payload["deployments"]
        if not isinstance(entries, list):
            raise ModelConfigError(f"registry file {path}: 'deployments' must be a list")
        for entry in entries:
            manifest = DeploymentManifest.from_dict(entry)
            versions = self._manifests.setdefault(manifest.name, {})
            if manifest.version in versions:
                raise ModelConfigError(
                    f"registry file {path} registers {manifest.id} twice"
                )
            versions[manifest.version] = manifest
