"""Deployment lifecycle for the serving stack: versions, routing, rollback.

The serving layer (:mod:`repro.serving`) answers requests; this subsystem
answers the operational questions around it — *which model version answers,
how does a new version take over, and how does a bad one get out?*  Three
pieces, layered between the baseline/checkpoint registry and the async
server:

* :class:`~repro.deploy.manifest.DeploymentManifest` — the declarative
  identity of one ``name@version``: backend construction recipe (checkpoint
  or baseline-config), served tasks, precision/decode settings, and content
  fingerprints of the checkpoint's ``weights.npz`` and (for retrieval-
  grounded ``corpus_qa`` deployments) the saved corpus index; JSON round
  trip, validated before activation.
* :class:`~repro.deploy.registry.ModelRegistry` — versioned manifests in one
  persisted JSON file, with ``register_checkpoint`` (save + fingerprint +
  mint the next version) and ``build_pipeline`` (verify, then reconstruct a
  ready :class:`~repro.serving.pipeline.Pipeline`).
* :class:`~repro.deploy.router.Router` — an immutable task -> weighted
  deployment table with deterministic per-request-key hashing (canary
  splits that keep retries on one version), shadow-traffic sampling, and
  :class:`~repro.deploy.router.CanaryGuard` auto-revert policies.

The live half — ``Server.deploy`` / ``undeploy`` / ``set_weights`` /
``set_routes`` / ``set_canary`` / ``set_shadow`` and the zero-downtime
``hot_swap`` — lives on :class:`repro.serving.server.Server`, which consumes
these pieces.  See ``docs/deploy.md`` for the lifecycle walk-through.
"""

# Import order matters: router.py is a leaf (only repro.errors) and must come
# first, because importing manifest.py pulls in repro.serving, whose server
# module imports back into repro.deploy.router — a cycle that only resolves
# when router is already complete by the time serving starts loading.
from repro.deploy.router import (
    CanaryGuard,
    HashRing,
    Router,
    ShadowSpec,
    deployment_id,
    hash_fraction,
    parse_ref,
)
from repro.deploy.manifest import DECODE_KEYS, DeploymentManifest
from repro.deploy.registry import ModelRegistry

__all__ = [
    "DeploymentManifest",
    "ModelRegistry",
    "Router",
    "HashRing",
    "ShadowSpec",
    "CanaryGuard",
    "deployment_id",
    "parse_ref",
    "hash_fraction",
    "DECODE_KEYS",
]
