"""Deterministic traffic routing across deployed model versions.

A :class:`Router` maps each servable task to a weighted set of deployment
ids and answers one question: *which version serves this request?*  The
answer is a pure function of ``(task, request key)`` — a salted hash of the
request's cache identity picks a point in ``[0, 1)`` and walks the
cumulative weights — so the same request always lands on the same version.
That determinism is what makes canary splits operationally sane: a retried
request cannot flap between the incumbent and the candidate, response
caching stays coherent per version, and an observed failure is reproducible
against the version that produced it.

Routers are immutable.  Every mutation (``with_routes`` / ``with_shadow`` /
``without``) returns a new instance, so the serving layer can build the next
routing table off to the side and flip a single reference atomically — the
heart of zero-downtime hot-swap: in-flight requests keep the table they were
routed with, new requests see the new one, and no request ever observes a
half-edited table.

Shadow routing rides the same hashing with an independent salt: a
deterministic fraction of each task's traffic is *duplicated* to a candidate
deployment whose responses are compared against the primary's but never
returned to the caller (see ``repro.serving.server``).

:class:`CanaryGuard` is the declarative health gate the server evaluates per
resolved request: a canary whose ``backend_error`` rate exceeds the
threshold (after a minimum sample size) is automatically removed from every
route — the rollback path that turns a bad deploy into a telemetry entry
instead of an outage.
"""

from __future__ import annotations

import bisect
import hashlib
import math
from dataclasses import dataclass

from repro.errors import ModelConfigError


def deployment_id(name: str, version: int) -> str:
    """The canonical ``"name@version"`` identity string."""
    return f"{name}@{version}"


def parse_ref(ref: str) -> tuple[str, int | None]:
    """Split a deployment reference into ``(name, version)``.

    ``"captioner@3"`` names an exact version; a bare ``"captioner"`` returns
    ``(name, None)``, which registry lookups resolve to the latest registered
    version.  Malformed references (empty name, non-integer or negative
    version, stray ``@``) raise :class:`~repro.errors.ModelConfigError`.
    """
    if not isinstance(ref, str) or not ref:
        raise ModelConfigError(f"deployment reference must be a non-empty string, got {ref!r}")
    if "@" not in ref:
        return ref, None
    name, _, version_text = ref.partition("@")
    if not name or "@" in version_text:
        raise ModelConfigError(f"malformed deployment reference {ref!r}; expected 'name@version'")
    try:
        version = int(version_text)
    except ValueError:
        raise ModelConfigError(
            f"deployment version in {ref!r} must be an integer, got {version_text!r}"
        ) from None
    if version < 0:
        raise ModelConfigError(f"deployment version must be non-negative, got {version}")
    return name, version


def hash_fraction(salt: str, task: str, key: str) -> float:
    """A deterministic point in ``[0, 1)`` for one ``(task, key)`` pair.

    The first 8 bytes of ``md5(salt | task | key)`` scaled to the unit
    interval.  ``salt`` decorrelates independent decisions over the same
    request — the canary split and the shadow sample use different salts, so
    being routed to the canary says nothing about being shadow-sampled.
    """
    digest = hashlib.md5(f"{salt}\x1f{task}\x1f{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class HashRing:
    """Consistent hashing over a fixed set of named slots.

    The process-sharded serving tier (:mod:`repro.serving.sharded`) routes
    each request key to one worker-shard slot through this ring: every slot
    owns ``replicas`` pseudo-random points on a hash circle, and a key maps
    to the first slot point at or after the key's own hash.  Two properties
    make it the right routing primitive there:

    * **stability** — the mapping is a pure function of the slot *names*, so
      a crashed shard that respawns under the same slot name receives
      exactly the keys it owned before, keeping its per-shard caches and
      duplicate coalescing effective across restarts;
    * **minimal disruption** — excluding a dead slot (:meth:`node` with
      ``exclude``) moves only that slot's keys, each to the next live point
      on the circle, instead of reshuffling every key the way modular
      hashing would.

    The ring is immutable after construction; membership changes are
    expressed per-lookup through ``exclude``, matching how the gateway
    treats shard death as a transient routing condition rather than a
    topology change.
    """

    __slots__ = ("_slots", "_points")

    def __init__(self, slots: tuple[str, ...] | list[str], replicas: int = 64):
        if not slots:
            raise ModelConfigError("a HashRing needs at least one slot")
        if len(set(slots)) != len(slots):
            raise ModelConfigError(f"HashRing slots must be unique, got {list(slots)!r}")
        if replicas < 1:
            raise ModelConfigError("replicas must be at least 1")
        self._slots = tuple(slots)
        points: list[tuple[int, str]] = []
        for slot in self._slots:
            for replica in range(replicas):
                digest = hashlib.md5(f"ring\x1f{slot}\x1f{replica}".encode("utf-8")).digest()
                points.append((int.from_bytes(digest[:8], "big"), slot))
        points.sort()
        self._points = points

    @property
    def slots(self) -> tuple[str, ...]:
        """The slot names the ring was built over, in construction order."""
        return self._slots

    def node(self, key: str, exclude: set[str] | frozenset[str] = frozenset()) -> str:
        """The slot owning ``key``, skipping any slot named in ``exclude``.

        Deterministic for a given ``(key, exclude)``; raises when ``exclude``
        covers every slot — the caller decides what "no live shard" means.
        """
        if len(exclude) >= len(self._slots):
            remaining = [slot for slot in self._slots if slot not in exclude]
            if not remaining:
                raise ModelConfigError("every HashRing slot is excluded; no node can own the key")
        digest = hashlib.md5(f"key\x1f{key}".encode("utf-8")).digest()
        point = int.from_bytes(digest[:8], "big")
        start = bisect.bisect_left(self._points, (point, ""))
        for offset in range(len(self._points)):
            _, slot = self._points[(start + offset) % len(self._points)]
            if slot not in exclude:
                return slot
        raise ModelConfigError("every HashRing slot is excluded; no node can own the key")


@dataclass(frozen=True)
class ShadowSpec:
    """Shadow-traffic policy for one task: duplicate ``fraction`` of requests
    to ``deployment`` (the candidate under evaluation)."""

    deployment: str
    fraction: float

    def __post_init__(self):
        if not isinstance(self.deployment, str) or not self.deployment:
            raise ModelConfigError("shadow deployment must be a non-empty deployment id")
        if not 0.0 < self.fraction <= 1.0:
            raise ModelConfigError(
                f"shadow fraction must be in (0, 1], got {self.fraction!r}"
            )


@dataclass(frozen=True)
class CanaryGuard:
    """Auto-revert policy for one canary deployment.

    Once the canary has resolved at least ``min_requests`` requests, the
    server compares its ``backend_error`` rate against ``max_error_rate``
    after every resolution; exceeding it removes the canary from every route
    (and shadow spec) and records a rollback event in ``Server.stats()``.
    ``min_requests`` exists so one unlucky first request cannot revert a
    healthy deploy.
    """

    deployment: str
    max_error_rate: float
    min_requests: int = 20

    def __post_init__(self):
        if not 0.0 <= self.max_error_rate < 1.0:
            raise ModelConfigError(
                f"max_error_rate must be in [0, 1), got {self.max_error_rate!r}"
            )
        if self.min_requests < 1:
            raise ModelConfigError("min_requests must be at least 1")

    def should_revert(self, completed: int, backend_errors: int) -> bool:
        """Whether the observed counters breach the guard."""
        finished = completed + backend_errors
        if finished < self.min_requests:
            return False
        return backend_errors / finished > self.max_error_rate


def _validated_weights(task: str, weights: dict[str, float]) -> dict[str, float]:
    """A defensive copy of ``weights`` with every value checked."""
    if not weights:
        raise ModelConfigError(f"route table for task {task!r} must name at least one deployment")
    checked: dict[str, float] = {}
    for deployment, weight in weights.items():
        if not isinstance(deployment, str) or not deployment:
            raise ModelConfigError(f"deployment ids must be non-empty strings, got {deployment!r}")
        if not isinstance(weight, (int, float)) or isinstance(weight, bool) or not math.isfinite(weight):
            raise ModelConfigError(f"route weight for {deployment!r} must be a finite number, got {weight!r}")
        if weight < 0:
            raise ModelConfigError(f"route weight for {deployment!r} must be non-negative, got {weight!r}")
        checked[deployment] = float(weight)
    if sum(checked.values()) <= 0:
        raise ModelConfigError(f"route weights for task {task!r} must sum to a positive value")
    return checked


class Router:
    """An immutable task -> weighted-deployments routing table.

    ``routes`` maps task names to ``{deployment_id: weight}`` dicts (weights
    are relative, normalized at lookup); ``shadows`` maps task names to
    :class:`ShadowSpec`.  A task with no entry routes to ``None`` — the
    serving layer falls back to its primary pipeline — so a fresh ``Router()``
    is a valid "everything on the incumbent" table.
    """

    __slots__ = ("_routes", "_shadows")

    def __init__(
        self,
        routes: dict[str, dict[str, float]] | None = None,
        shadows: dict[str, ShadowSpec] | None = None,
    ):
        self._routes: dict[str, dict[str, float]] = {
            task: _validated_weights(task, weights) for task, weights in (routes or {}).items()
        }
        self._shadows: dict[str, ShadowSpec] = dict(shadows or {})

    # -- lookups ------------------------------------------------------------------------
    def route(self, task: str, key: str) -> str | None:
        """The deployment id serving ``(task, key)``, or ``None`` when unrouted.

        Deterministic: the hash point falls in one deployment's cumulative
        weight span, and zero-weight deployments are never selected.
        """
        weights = self._routes.get(task)
        if not weights:
            return None
        point = hash_fraction("route", task, key) * sum(weights.values())
        cumulative = 0.0
        chosen = None
        for deployment, weight in weights.items():
            if weight <= 0:
                continue
            chosen = deployment
            cumulative += weight
            if point < cumulative:
                break
        return chosen

    def shadow(self, task: str, key: str) -> str | None:
        """The shadow target for ``(task, key)``, or ``None`` when unsampled.

        Sampled with an independent salt, so the shadow population is an
        unbiased slice of the task's traffic regardless of the canary split.
        """
        spec = self._shadows.get(task)
        if spec is None:
            return None
        if hash_fraction("shadow", task, key) >= spec.fraction:
            return None
        return spec.deployment

    # -- introspection ------------------------------------------------------------------
    def tasks(self) -> tuple[str, ...]:
        """Every task with an explicit route or shadow entry, sorted."""
        return tuple(sorted(set(self._routes) | set(self._shadows)))

    def deployments(self) -> tuple[str, ...]:
        """Every deployment id referenced by any route or shadow, sorted."""
        referenced = {dep for weights in self._routes.values() for dep in weights}
        referenced.update(spec.deployment for spec in self._shadows.values())
        return tuple(sorted(referenced))

    def weights(self, task: str) -> dict[str, float]:
        """A copy of the raw weight table for ``task`` ({} when unrouted)."""
        return dict(self._routes.get(task, {}))

    def describe(self) -> dict:
        """A JSON-friendly snapshot of the whole table (for ``Server.stats()``)."""
        return {
            task: {
                "weights": dict(self._routes.get(task, {})),
                "shadow": (
                    {"deployment": spec.deployment, "fraction": spec.fraction}
                    if (spec := self._shadows.get(task)) is not None
                    else None
                ),
            }
            for task in self.tasks()
        }

    # -- derivation (immutability-preserving updates) -----------------------------------
    def with_routes(self, task: str, weights: dict[str, float]) -> "Router":
        """A new router with ``task`` routed by ``weights`` (replacing any old entry)."""
        routes = {name: dict(table) for name, table in self._routes.items()}
        routes[task] = dict(weights)
        return Router(routes, self._shadows)

    def with_shadow(self, task: str, deployment: str, fraction: float) -> "Router":
        """A new router shadowing ``fraction`` of ``task`` traffic to ``deployment``.

        ``fraction <= 0`` clears the task's shadow spec instead.
        """
        shadows = dict(self._shadows)
        if fraction <= 0:
            shadows.pop(task, None)
        else:
            shadows[task] = ShadowSpec(deployment=deployment, fraction=fraction)
        return Router({name: dict(table) for name, table in self._routes.items()}, shadows)

    def without_task(self, task: str) -> "Router":
        """A new router with ``task``'s route and shadow entries removed."""
        routes = {
            name: dict(table) for name, table in self._routes.items() if name != task
        }
        shadows = {name: spec for name, spec in self._shadows.items() if name != task}
        return Router(routes, shadows)

    def without(self, deployment: str) -> "Router":
        """A new router with ``deployment`` stripped from every route and shadow.

        A task whose only deployment was removed becomes unrouted (primary
        fallback) — this is the rollback primitive behind ``undeploy`` and
        the :class:`CanaryGuard` auto-revert.
        """
        routes: dict[str, dict[str, float]] = {}
        for task, weights in self._routes.items():
            remaining = {name: weight for name, weight in weights.items() if name != deployment}
            if remaining and sum(remaining.values()) > 0:
                routes[task] = remaining
        shadows = {
            task: spec for task, spec in self._shadows.items() if spec.deployment != deployment
        }
        return Router(routes, shadows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Router(routes={self._routes!r}, shadows={self._shadows!r})"
