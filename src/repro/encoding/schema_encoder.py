"""Linearization of database schemas.

Following §III-C of the paper, a schema is rendered as::

    | database_name | table1 : table1.col1, table1.col2 | table2 : ...

Column names are qualified with their table (standardized encoding), tables
are separated by ``|`` and the database name is prefixed with ``|``
boundaries.
"""

from __future__ import annotations

from repro.database.schema import DatabaseSchema, TableSchema


def encode_schema(schema: DatabaseSchema, qualify_columns: bool = True) -> str:
    """Return the linearized text form of ``schema``."""
    parts = [f"| {schema.name}"]
    for table in schema.tables:
        parts.append(f"| {_encode_table_schema(table, qualify_columns)}")
    return " ".join(parts)


def _encode_table_schema(table: TableSchema, qualify_columns: bool) -> str:
    if qualify_columns:
        columns = ", ".join(f"{table.name}.{column.name}" for column in table.columns)
    else:
        columns = ", ".join(column.name for column in table.columns)
    return f"{table.name} : {columns}"
