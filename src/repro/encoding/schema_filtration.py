"""Database-schema filtration by n-gram matching (§III-B of the paper).

Natural-language questions mention tables, columns and cell values of the
database they are asked against.  Before encoding, the paper compares the
n-grams of the question with those of the schema at the *table level* and
keeps only the implicated tables (plus all of their columns), producing a
sub-schema that is both smaller and semantically aligned with the question.
"""

from __future__ import annotations

from repro.database.schema import DatabaseSchema, TableSchema
from repro.utils.text import ngrams, tokenize_words


def matched_tables(question: str, schema: DatabaseSchema, max_ngram: int = 3) -> list[str]:
    """Names of schema tables whose n-grams overlap with the question's.

    A table matches when its name, any of its column names, or any n-gram of
    those identifiers (with underscores treated as spaces) appears among the
    question's n-grams.  Matching is case-insensitive.
    """
    question_tokens = tokenize_words(question)
    question_grams: set[tuple[str, ...]] = set()
    for n in range(1, max_ngram + 1):
        question_grams.update(ngrams(question_tokens, n))
    question_text = " ".join(question_tokens)

    matches: list[str] = []
    for table in schema.tables:
        if _table_matches(table, question_grams, question_text):
            matches.append(table.name)
    return matches


def filter_schema(question: str, schema: DatabaseSchema, max_ngram: int = 3) -> DatabaseSchema:
    """Return the sub-schema of ``schema`` implicated by ``question``.

    Falls back to the full schema when nothing matches (so downstream encoders
    always have something to work with), mirroring the paper's goal of
    minimising information loss.
    """
    matches = matched_tables(question, schema, max_ngram=max_ngram)
    if not matches:
        return schema
    return schema.subschema(matches)


def _identifier_variants(identifier: str) -> list[str]:
    """Textual variants of an identifier: raw, underscores as spaces, squashed."""
    lowered = identifier.lower()
    return [lowered, lowered.replace("_", " "), lowered.replace("_", "")]


def _table_matches(table: TableSchema, question_grams: set[tuple[str, ...]], question_text: str) -> bool:
    identifiers = [table.name] + table.column_names()
    for identifier in identifiers:
        for variant in _identifier_variants(identifier):
            variant_tokens = tuple(tokenize_words(variant))
            if not variant_tokens:
                continue
            if variant_tokens in question_grams:
                return True
            if len(variant_tokens) == 1 and variant in question_text.split():
                return True
            # Substring match catches singular/plural drift ("countries" vs "country").
            if len(variant) > 3 and variant in question_text:
                return True
    return False
