"""Linearization of tables.

Following the TAPAS-style encoding used by the paper, a table becomes::

    | col : c1 | c2 | ... row 1 : v11 | v12 | ... row 2 : ...

An optional title is prepended (Chart2Text statistic tables carry one).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.database.executor import ResultTable
from repro.database.table import DataTable


def encode_table(
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    max_rows: int | None = None,
) -> str:
    """Linearize an arbitrary columns/rows table."""
    parts: list[str] = []
    if title:
        parts.append(title.strip())
    parts.append("| col : " + " | ".join(str(column) for column in columns))
    limit = len(rows) if max_rows is None else min(max_rows, len(rows))
    for index in range(limit):
        values = " | ".join(_render_cell(value) for value in rows[index])
        parts.append(f"row {index + 1} : {values}")
    return " ".join(parts)


def encode_result_table(result: ResultTable, title: str | None = None, max_rows: int | None = None) -> str:
    """Linearize a query :class:`ResultTable`."""
    return encode_table(result.columns, result.rows, title=title, max_rows=max_rows)


def encode_data_table(table: DataTable, title: str | None = None, max_rows: int | None = None) -> str:
    """Linearize a stored :class:`DataTable` (qualified column names)."""
    columns = [f"{table.name}.{column}" for column in table.schema.column_names()]
    rows = [[row[column] for column in table.schema.column_names()] for row in table.rows()]
    return encode_table(columns, rows, title=title, max_rows=max_rows)


def encode_mapping_rows(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Linearize a list of dict rows (columns taken from the first row)."""
    if not rows:
        return "| col :"
    columns = list(rows[0].keys())
    values = [[row.get(column) for column in columns] for row in rows]
    return encode_table(columns, values, title=title)


def _render_cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
