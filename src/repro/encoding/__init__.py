"""DV knowledge encoding (§III-B and §III-C of the paper).

Turns the three kinds of DV knowledge — DV queries, database schemas and
tables — into the unified, standardized text sequences the model consumes,
and implements the n-gram database-schema filtration that selects the
sub-schema referenced by a natural-language question.
"""

from repro.encoding.schema_encoder import encode_schema
from repro.encoding.table_encoder import (
    encode_table,
    encode_result_table,
    encode_data_table,
    encode_mapping_rows,
)
from repro.encoding.query_encoder import encode_query
from repro.encoding.schema_filtration import filter_schema, matched_tables
from repro.encoding.sequences import (
    strip_modality_tags,
    text_to_vis_input,
    text_to_vis_target,
    vis_to_text_input,
    vis_to_text_target,
    fevisqa_input,
    fevisqa_target,
    table_to_text_input,
    table_to_text_target,
)

__all__ = [
    "encode_schema",
    "encode_table",
    "encode_result_table",
    "encode_data_table",
    "encode_mapping_rows",
    "encode_query",
    "filter_schema",
    "matched_tables",
    "strip_modality_tags",
    "text_to_vis_input",
    "text_to_vis_target",
    "vis_to_text_input",
    "vis_to_text_target",
    "fevisqa_input",
    "fevisqa_target",
    "table_to_text_input",
    "table_to_text_target",
]
