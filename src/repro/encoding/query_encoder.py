"""Linearization of DV queries.

A DV query is encoded as its standardized canonical text (§III-C treats DV
queries as flat text sequences; §III-D defines the standardization rules).
"""

from __future__ import annotations

from repro.database.schema import DatabaseSchema
from repro.vql.ast import DVQuery
from repro.vql.parser import parse_dv_query
from repro.vql.standardize import standardize_dv_query


def encode_query(query: DVQuery | str, schema: DatabaseSchema | None = None, standardize: bool = True) -> str:
    """Return the linearized text form of ``query``.

    Accepts either an AST or raw text; raw text is parsed first.  With
    ``standardize`` (the default) the five normalisation rules are applied.
    """
    if isinstance(query, str):
        query = parse_dv_query(query)
    if standardize:
        query = standardize_dv_query(query, schema=schema)
    return query.to_text()
