"""Task input/output sequence construction.

Every downstream task (and the bidirectional dual-corpus pre-training
objective) consumes sequences assembled from modality-tagged segments, e.g.::

    <NL> what are the ids ... <schema> | db | table : table.col, ...

for text-to-vis inputs.  This module centralises the assembly so training,
evaluation and the examples all produce byte-identical formats.
"""

from __future__ import annotations

import re

from repro.database.schema import DatabaseSchema
from repro.encoding.query_encoder import encode_query
from repro.errors import ReproError
from repro.encoding.schema_encoder import encode_schema
from repro.tokenization.special_tokens import (
    ANSWER_TAG,
    MODALITY_TOKENS,
    NL_TAG,
    QUESTION_TAG,
    SCHEMA_TAG,
    TABLE_TAG,
    VQL_TAG,
)
from repro.utils.text import normalize_whitespace
from repro.vql.ast import DVQuery

_TAG_PATTERN = re.compile("|".join(re.escape(tag) for tag in MODALITY_TOKENS), flags=re.IGNORECASE)


def strip_modality_tags(text: str) -> str:
    """Remove ``<NL>`` / ``<VQL>`` / ... tags from a generated sequence."""
    return " ".join(_TAG_PATTERN.sub(" ", text).split())


def text_to_vis_input(question: str, schema: DatabaseSchema | str) -> str:
    """``<NL> question <schema> schema`` — the text-to-vis source sequence."""
    schema_text = schema if isinstance(schema, str) else encode_schema(schema)
    return normalize_whitespace(f"{NL_TAG} {question} {SCHEMA_TAG} {schema_text}")


def text_to_vis_target(query: DVQuery | str, schema: DatabaseSchema | None = None) -> str:
    """``<VQL> query`` — the text-to-vis target sequence."""
    return normalize_whitespace(f"{VQL_TAG} {encode_query(query, schema=schema)}")


def _query_segment(query: DVQuery | str, strict: bool) -> str:
    """``query`` linearized; with ``strict=False`` unparseable text is kept verbatim."""
    if not strict and isinstance(query, str):
        try:
            return encode_query(query)
        except ReproError:
            return normalize_whitespace(query)
    return encode_query(query)


def vis_to_text_input(
    query: DVQuery | str, schema: DatabaseSchema | str | None = None, strict: bool = True
) -> str:
    """``<VQL> query <schema> schema`` — the vis-to-text source sequence.

    With ``strict=False`` (the serving layer), query text that fails to parse
    is embedded verbatim instead of raising — untrusted request payloads must
    not abort a whole batch.
    """
    parts = [VQL_TAG, _query_segment(query, strict)]
    if schema is not None:
        schema_text = schema if isinstance(schema, str) else encode_schema(schema)
        parts.extend([SCHEMA_TAG, schema_text])
    return normalize_whitespace(" ".join(parts))


def vis_to_text_target(description: str) -> str:
    """``<NL> description`` — the vis-to-text target sequence."""
    return normalize_whitespace(f"{NL_TAG} {description}")


def fevisqa_input(
    question: str,
    query: DVQuery | str | None = None,
    schema: DatabaseSchema | str | None = None,
    table: str | None = None,
    strict: bool = True,
) -> str:
    """``<Question> q <VQL> query <schema> schema <Table> table`` — the FeVisQA source.

    ``strict`` behaves as in :func:`vis_to_text_input`.
    """
    parts = [QUESTION_TAG, question]
    if query is not None:
        parts.extend([VQL_TAG, _query_segment(query, strict)])
    if schema is not None:
        schema_text = schema if isinstance(schema, str) else encode_schema(schema)
        parts.extend([SCHEMA_TAG, schema_text])
    if table is not None:
        parts.extend([TABLE_TAG, table])
    return normalize_whitespace(" ".join(parts))


def fevisqa_target(answer: str) -> str:
    """``<Answer> answer`` — the FeVisQA target sequence."""
    return normalize_whitespace(f"{ANSWER_TAG} {answer}")


def table_to_text_input(table: str) -> str:
    """``<Table> linearized-table`` — the table-to-text source sequence."""
    return normalize_whitespace(f"{TABLE_TAG} {table}")


def table_to_text_target(description: str) -> str:
    """``<NL> description`` — the table-to-text target sequence."""
    return normalize_whitespace(f"{NL_TAG} {description}")
