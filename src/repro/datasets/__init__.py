"""Synthetic corpora standing in for the paper's four public datasets.

No network access is available in this environment, so the nvBench,
Chart2Text, WikiTableText and FeVisQA corpora are regenerated synthetically
from a pool of multi-domain relational databases (:mod:`repro.datasets.spider`).
The generators preserve the *structure* the paper relies on:

* nvBench-style NL ↔ DV-query pairs over many cross-domain databases, split
  into join / non-join subsets and partitioned 70/10/20 by database;
* Chart2Text-style statistic tables with expert-style captions and the
  ≤150-cell filter applied during pre-processing;
* WikiTableText-style small tables (≥3 rows, ≥2 columns) with one-sentence
  region descriptions;
* FeVisQA question-answer pairs of the three paper-defined types, generated
  by rules and answered by actually executing the DV query.

Every generator is deterministic given a seed.
"""

from repro.datasets.spider import SyntheticDatabasePool, build_database_pool
from repro.datasets.nvbench import NvBenchExample, NvBenchDataset, generate_nvbench
from repro.datasets.chart2text import Chart2TextExample, Chart2TextDataset, generate_chart2text
from repro.datasets.wikitabletext import WikiTableTextExample, WikiTableTextDataset, generate_wikitabletext
from repro.datasets.fevisqa import FeVisQAExample, FeVisQADataset, generate_fevisqa
from repro.datasets.splits import DatasetSplits, cross_domain_split
from repro.datasets.corpus import (
    CorpusDocument,
    CorpusIndex,
    PretrainingCorpus,
    Seq2SeqExample,
    build_pretraining_corpus,
    corpus_index_fingerprint,
    fevisqa_document_corpus,
)
from repro.datasets.mixing import temperature_mixing_weights, TemperatureMixedSampler

__all__ = [
    "SyntheticDatabasePool",
    "build_database_pool",
    "NvBenchExample",
    "NvBenchDataset",
    "generate_nvbench",
    "Chart2TextExample",
    "Chart2TextDataset",
    "generate_chart2text",
    "WikiTableTextExample",
    "WikiTableTextDataset",
    "generate_wikitabletext",
    "FeVisQAExample",
    "FeVisQADataset",
    "generate_fevisqa",
    "DatasetSplits",
    "cross_domain_split",
    "CorpusDocument",
    "CorpusIndex",
    "PretrainingCorpus",
    "Seq2SeqExample",
    "build_pretraining_corpus",
    "corpus_index_fingerprint",
    "fevisqa_document_corpus",
    "temperature_mixing_weights",
    "TemperatureMixedSampler",
]
