"""Value pools used by the synthetic data generators.

These lists play the role of the real-world entity values found in Spider /
nvBench databases and Statista statistic tables.  They are intentionally
plain ASCII and lowercase-stable so that the standardized encoding (which
lowercases everything) does not lose information.
"""

from __future__ import annotations

PERSON_FIRST_NAMES = [
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael", "Linda",
    "William", "Elizabeth", "David", "Barbara", "Richard", "Susan", "Joseph", "Jessica",
    "Thomas", "Sarah", "Charles", "Karen", "Daniel", "Nancy", "Matthew", "Lisa",
]

PERSON_LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
    "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson",
    "Thomas", "Taylor", "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White",
]

COUNTRIES = [
    "United States", "Canada", "Mexico", "Brazil", "Argentina", "United Kingdom",
    "France", "Germany", "Spain", "Italy", "Netherlands", "Sweden", "Norway",
    "China", "Japan", "South Korea", "India", "Australia", "New Zealand", "Fiji",
    "Zimbabwe", "South Africa", "Egypt", "Kenya", "Nigeria",
]

CITIES = [
    "New York", "Los Angeles", "Chicago", "Houston", "Phoenix", "Philadelphia",
    "San Antonio", "San Diego", "Dallas", "Austin", "London", "Paris", "Berlin",
    "Madrid", "Rome", "Tokyo", "Seoul", "Beijing", "Sydney", "Toronto",
]

DEPARTMENTS = [
    "Engineering", "Marketing", "Sales", "Finance", "Human Resources", "Operations",
    "Research", "Support", "Legal", "Design",
]

PRODUCT_CATEGORIES = [
    "Electronics", "Clothing", "Furniture", "Toys", "Books", "Groceries",
    "Sports", "Beauty", "Automotive", "Garden",
]

MAJORS = [
    "Computer Science", "Mathematics", "Physics", "Biology", "Chemistry",
    "Economics", "History", "Psychology", "Philosophy", "Engineering",
]

GENRES = [
    "Rock", "Pop", "Jazz", "Classical", "Hip Hop", "Country", "Electronic", "Folk",
]

AIRLINES = [
    "Skyways", "Aerolink", "Cloudjet", "Starfly", "Bluewing", "Sunair", "Polar Air", "Jetstream",
]

TEAM_NAMES = [
    "Columbus Crew", "River Hawks", "Mountain Lions", "Harbor Sharks", "Desert Foxes",
    "Forest Rangers", "Iron Eagles", "Coastal Waves",
]

DECOR_STYLES = ["modern", "rustic", "traditional"]

BED_TYPES = ["single", "double", "queen", "king"]

ALLERGY_TYPES = ["food", "animal", "environmental"]

ALLERGIES = ["peanut", "milk", "egg", "soy", "cat", "dog", "pollen", "dust", "mold", "shellfish"]

SOCIAL_NETWORKS = [
    "Facebook", "Pinterest", "YouTube", "Twitter", "Instagram", "LinkedIn",
    "Snapchat", "Etsy", "Sephora Community", "WhatsApp",
]

STATISTIC_TOPICS = [
    "most popular social networks of beauty consumers",
    "annual revenue of leading retailers",
    "number of active users of messaging apps",
    "market share of smartphone vendors",
    "average ticket price of major airlines",
    "monthly rainfall in coastal cities",
    "electricity consumption by sector",
    "box office revenue of film studios",
    "subscriber counts of streaming services",
    "employment by industry sector",
    "tourist arrivals by destination country",
    "coffee consumption per capita by country",
]

STATISTIC_REGIONS = [
    "the United States", "Canada", "the United Kingdom", "Germany", "France",
    "Japan", "Australia", "Brazil", "India", "worldwide",
]

WIKI_SUBJECTS = [
    "so ji-sub", "alan turing", "marie curie", "isaac newton", "ada lovelace",
    "grace hopper", "albert einstein", "nikola tesla", "rosalind franklin", "leonhard euler",
]

PUBLISHERS = ["sallim", "penguin", "random house", "springer", "oxford press", "cambridge press"]

BOOK_NOTES = ["photo-essays", "memoir", "biography", "textbook", "essay collection", "novel"]

FILM_TYPES = ["Mass human sacrifice", "Mass suicide", "Mass suicide murder", "Natural disaster", "Alien invasion"]

STUDIOS = ["Paramount", "Universal", "Warner", "Columbia", "Lionsgate", "Miramax"]
