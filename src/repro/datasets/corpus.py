"""Pre-training corpus construction (§IV of the paper) and the corpus-QA index.

The hybrid pre-training objectives consume two corpora built from the four
task datasets:

* the **Bidirectional Dual-Corpus (BDC)** segment holds source/target pairs
  for the four mappings (NL+Schema ↔ DV query, DV query+Schema ↔ Description,
  Table ↔ Description, Question+DV query+Schema+Table ↔ Answer); during
  training either side is chosen as the input with probability 0.5;
* the **MLM** segment is a flat list of cross-modal text sequences used for
  T5 span-corruption denoising.

The second half of the module is the serving-side retrieval artifact for the
``corpus_qa`` task: a :class:`CorpusDocument` is one chart/table context, and
a :class:`CorpusIndex` is a deterministic, content-hashed lexical index over
a multi-document corpus of them.  The index is a first-class deployment
artifact — saved as canonical JSON, fingerprinted byte-for-byte, registered
in a :class:`~repro.deploy.manifest.DeploymentManifest` and re-verified
before activation exactly like a model checkpoint (see
``docs/corpus_qa.md``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from pathlib import Path

from repro.datasets.chart2text import Chart2TextExample
from repro.datasets.fevisqa import FeVisQAExample
from repro.datasets.nvbench import NvBenchExample
from repro.datasets.wikitabletext import WikiTableTextExample
from repro.encoding.schema_encoder import encode_schema
from repro.encoding.sequences import (
    fevisqa_input,
    fevisqa_target,
    table_to_text_input,
    table_to_text_target,
    text_to_vis_input,
    text_to_vis_target,
    vis_to_text_input,
    vis_to_text_target,
)
from repro.errors import ModelConfigError
from repro.utils.text import rank_by_jaccard, tokenize_words


@dataclass
class Seq2SeqExample:
    """A single source/target training pair with its originating task."""

    source: str
    target: str
    task: str
    db_id: str | None = None
    example_id: str | None = None

    def swapped(self) -> "Seq2SeqExample":
        """The reverse-direction pair (used by the BDC objective)."""
        return Seq2SeqExample(
            source=self.target,
            target=self.source,
            task=self.task,
            db_id=self.db_id,
            example_id=self.example_id,
        )


@dataclass
class PretrainingCorpus:
    """The two segments of the hybrid pre-training corpus."""

    bdc_pairs: list[Seq2SeqExample] = field(default_factory=list)
    mlm_texts: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.bdc_pairs) + len(self.mlm_texts)

    def statistics(self) -> dict:
        """Summary counts over the corpus's sequence pairs."""
        by_task: dict[str, int] = {}
        for pair in self.bdc_pairs:
            by_task[pair.task] = by_task.get(pair.task, 0) + 1
        return {
            "bdc_pairs": len(self.bdc_pairs),
            "mlm_texts": len(self.mlm_texts),
            "bdc_by_task": by_task,
        }

    def all_texts(self) -> list[str]:
        """Every distinct text sequence (used to build the tokenizer vocabulary)."""
        texts: list[str] = []
        for pair in self.bdc_pairs:
            texts.append(pair.source)
            texts.append(pair.target)
        texts.extend(self.mlm_texts)
        return texts


# -- per-task pair constructors ----------------------------------------------------------


def nvbench_to_text_to_vis_pair(example: NvBenchExample, pool) -> Seq2SeqExample:
    """``NL + Schema -> DV query`` (the text-to-vis mapping)."""
    schema = pool.get(example.db_id).schema
    return Seq2SeqExample(
        source=text_to_vis_input(example.question, schema),
        target=text_to_vis_target(example.query),
        task="text_to_vis",
        db_id=example.db_id,
        example_id=example.example_id,
    )


def nvbench_to_vis_to_text_pair(example: NvBenchExample, pool) -> Seq2SeqExample:
    """``DV query + Schema -> Description`` (the vis-to-text mapping)."""
    schema = pool.get(example.db_id).schema
    return Seq2SeqExample(
        source=vis_to_text_input(example.query, schema),
        target=vis_to_text_target(example.description),
        task="vis_to_text",
        db_id=example.db_id,
        example_id=example.example_id,
    )


def table_pair(example: Chart2TextExample | WikiTableTextExample, max_rows: int | None = 12) -> Seq2SeqExample:
    """``Table -> Description`` (the table-to-text mapping)."""
    return Seq2SeqExample(
        source=table_to_text_input(example.linearized(max_rows=max_rows)),
        target=table_to_text_target(example.description),
        task="table_to_text",
        example_id=example.example_id,
    )


def fevisqa_pair(example: FeVisQAExample) -> Seq2SeqExample:
    """``Question + DV query + Schema + Table -> Answer`` (the FeVisQA mapping)."""
    return Seq2SeqExample(
        source=fevisqa_input(
            example.question,
            query=example.query_text,
            schema=example.schema_text,
            table=example.table_text or None,
        ),
        target=fevisqa_target(example.answer),
        task="fevisqa",
        db_id=example.db_id,
        example_id=example.example_id,
    )


def build_pretraining_corpus(
    nvbench_examples: list[NvBenchExample],
    chart2text_examples: list[Chart2TextExample],
    wikitabletext_examples: list[WikiTableTextExample],
    fevisqa_examples: list[FeVisQAExample],
    pool,
    max_table_cells: int = 150,
) -> PretrainingCorpus:
    """Assemble the hybrid pre-training corpus from the four task corpora.

    Chart2Text tables with more than ``max_table_cells`` cells are dropped,
    matching the paper's pre-processing.
    """
    corpus = PretrainingCorpus()

    for example in nvbench_examples:
        corpus.bdc_pairs.append(nvbench_to_text_to_vis_pair(example, pool))
        corpus.bdc_pairs.append(nvbench_to_vis_to_text_pair(example, pool))
        corpus.mlm_texts.append(example.question)
        corpus.mlm_texts.append(example.query_text)
        corpus.mlm_texts.append(encode_schema(pool.get(example.db_id).schema))

    for example in chart2text_examples:
        if example.num_cells > max_table_cells:
            continue
        corpus.bdc_pairs.append(table_pair(example))
        corpus.mlm_texts.append(example.description)

    for example in wikitabletext_examples:
        corpus.bdc_pairs.append(table_pair(example))
        corpus.mlm_texts.append(example.description)

    for example in fevisqa_examples:
        corpus.bdc_pairs.append(fevisqa_pair(example))
        corpus.mlm_texts.append(f"{example.question} {example.answer}")

    return corpus


# -- the corpus-QA retrieval index -------------------------------------------------------

#: Format marker written into every saved index so a foreign JSON file is
#: rejected loudly instead of mis-parsed.
CORPUS_INDEX_FORMAT = "repro-corpus-index/v1"


@dataclass(frozen=True)
class CorpusDocument:
    """One retrievable chart/table context in a corpus-QA document corpus.

    ``doc_id`` is the document's stable identity (unique within a corpus).
    ``title`` is free descriptive text (captions, representative questions)
    that participates in lexical matching alongside the content fields;
    ``chart`` is DV-query text, ``schema``/``table`` their linearized forms —
    exactly the context fields a FeVisQA source sequence consumes, so a
    retrieved document plugs directly into per-context answer generation.
    """

    doc_id: str
    title: str = ""
    chart: str | None = None
    schema: str | None = None
    table: str | None = None

    def __post_init__(self):
        if not isinstance(self.doc_id, str) or not self.doc_id:
            raise ModelConfigError("corpus document doc_id must be a non-empty string")
        if not (self.title or self.chart or self.schema or self.table):
            raise ModelConfigError(
                f"corpus document {self.doc_id!r} has no content; an empty document can never be retrieved"
            )

    def text(self) -> str:
        """Every content field joined — the document's lexical-matching surface."""
        parts = [self.title, self.chart, self.schema, self.table]
        return " ".join(part for part in parts if part)

    def as_dict(self) -> dict:
        """A JSON-ready view; :meth:`from_dict` is the exact inverse."""
        return {
            "doc_id": self.doc_id,
            "title": self.title,
            "chart": self.chart,
            "schema": self.schema,
            "table": self.table,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CorpusDocument":
        """Rebuild (and re-validate) a document; unknown keys raise."""
        if not isinstance(payload, dict):
            raise ModelConfigError(f"corpus document payload must be a dict, got {type(payload).__name__}")
        known = {field_info.name for field_info in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ModelConfigError(f"unknown corpus document fields: {', '.join(unknown)}")
        if "doc_id" not in payload:
            raise ModelConfigError("corpus document payload is missing 'doc_id'")
        return cls(
            doc_id=payload["doc_id"],
            title=payload.get("title", ""),
            chart=payload.get("chart"),
            schema=payload.get("schema"),
            table=payload.get("table"),
        )


class CorpusIndex:
    """A deterministic, content-hashed lexical retrieval index for corpus QA.

    Scoring reuses the retrieval baselines' kernel — Jaccard overlap of
    :func:`~repro.utils.text.tokenize_words` token sets via
    :func:`~repro.utils.text.rank_by_jaccard` — so rankings are a pure
    function of the document list: building the index twice from the same
    corpus, or once from a :meth:`save`/:meth:`load` round trip, returns
    identical rankings for every query (the differential property
    ``tests/datasets/test_corpus_index.py`` pins).

    The index serializes to **canonical bytes** (sorted-keys, compact JSON of
    the document list) and :meth:`fingerprint` is the SHA-256 of exactly
    those bytes, so the in-memory fingerprint equals the content hash of the
    saved file; mutating any single document changes it.  The deploy layer
    records that fingerprint in the manifest (``index_fingerprint``) and
    re-verifies the file before activation, exactly like a checkpoint.
    """

    def __init__(self, documents):
        documents = tuple(documents)
        if not all(isinstance(document, CorpusDocument) for document in documents):
            raise ModelConfigError("CorpusIndex takes CorpusDocument instances")
        seen: set[str] = set()
        for document in documents:
            if document.doc_id in seen:
                raise ModelConfigError(f"duplicate doc_id {document.doc_id!r} in corpus")
            seen.add(document.doc_id)
        self._documents = documents
        self._tokens = [frozenset(tokenize_words(document.text())) for document in documents]

    @property
    def documents(self) -> tuple[CorpusDocument, ...]:
        """The indexed documents, in insertion order."""
        return self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def get(self, doc_id: str) -> CorpusDocument:
        """The document with ``doc_id``; unknown ids raise."""
        for document in self._documents:
            if document.doc_id == doc_id:
                return document
        raise ModelConfigError(f"unknown doc_id {doc_id!r}; corpus holds {len(self._documents)} documents")

    def search(self, query: str, top_k: int = 3) -> list[tuple[CorpusDocument, float]]:
        """The ``top_k`` documents most lexically similar to ``query``.

        Returns ``(document, score)`` pairs sorted by descending Jaccard
        score, ties broken by document position — fully deterministic.
        """
        if top_k < 1:
            raise ModelConfigError(f"top_k must be positive, got {top_k}")
        ranked = rank_by_jaccard(tokenize_words(query), self._tokens)
        return [(self._documents[index], score) for index, score in ranked[:top_k]]

    # -- content identity ---------------------------------------------------------------
    def canonical_bytes(self) -> bytes:
        """The index's canonical serialization — what :meth:`save` writes.

        Sorted-keys compact JSON of the format marker plus the document
        list, UTF-8 with a trailing newline: byte-stable across rebuilds, so
        it doubles as the fingerprint pre-image.
        """
        payload = {
            "format": CORPUS_INDEX_FORMAT,
            "documents": [document.as_dict() for document in self._documents],
        }
        return (json.dumps(payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False) + "\n").encode("utf-8")

    def fingerprint(self) -> str:
        """``"sha256:<hex>"`` over :meth:`canonical_bytes` — the index's content hash."""
        return "sha256:" + hashlib.sha256(self.canonical_bytes()).hexdigest()

    # -- persistence --------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the canonical serialization to ``path``; returns the path.

        Because the bytes written are exactly :meth:`canonical_bytes`,
        :func:`corpus_index_fingerprint` of the file equals
        :meth:`fingerprint` of the live index.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(self.canonical_bytes())
        return target

    @classmethod
    def load(cls, path: str | Path) -> "CorpusIndex":
        """Read an index previously written by :meth:`save` (strict round trip)."""
        source = Path(path)
        if not source.exists():
            raise ModelConfigError(f"no corpus index at {source}")
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ModelConfigError(f"corpus index {source} is not valid JSON: {error}") from None
        if not isinstance(payload, dict) or payload.get("format") != CORPUS_INDEX_FORMAT:
            raise ModelConfigError(
                f"corpus index {source} is not a {CORPUS_INDEX_FORMAT} document"
            )
        documents = payload.get("documents")
        if not isinstance(documents, list):
            raise ModelConfigError(f"corpus index {source}: 'documents' must be a list")
        return cls(CorpusDocument.from_dict(entry) for entry in documents)


def corpus_index_fingerprint(path: str | Path) -> str:
    """``"sha256:<hex>"`` over the index file's bytes on disk.

    The deploy layer's tamper check: compares against the manifest's
    recorded ``index_fingerprint`` before activation.  For a file written by
    :meth:`CorpusIndex.save` this equals the live index's
    :meth:`~CorpusIndex.fingerprint`; any edit to the file — even one that
    parses to the same documents — changes it, matching the byte-level trust
    rule checkpoints follow.
    """
    source = Path(path)
    if not source.exists():
        raise ModelConfigError(f"no corpus index at {source}")
    return "sha256:" + hashlib.sha256(source.read_bytes()).hexdigest()


def fevisqa_document_corpus(examples: list[FeVisQAExample]) -> list[CorpusDocument]:
    """One :class:`CorpusDocument` per distinct chart context in ``examples``.

    FeVisQA asks several questions of each chart; the corpus deduplicates by
    ``(db_id, query_text)`` so each chart context becomes one document, its
    ``title`` accumulating every question asked of it (the natural-language
    surface a corpus-QA query matches against).  Document ids are
    ``"<db_id>/<n>"`` in first-appearance order — deterministic for a fixed
    example order.
    """
    documents: dict[tuple[str, str], dict] = {}
    per_db: dict[str, int] = {}
    for example in examples:
        key = (example.db_id, example.query_text)
        if key not in documents:
            ordinal = per_db.get(example.db_id, 0)
            per_db[example.db_id] = ordinal + 1
            documents[key] = {
                "doc_id": f"{example.db_id}/{ordinal}",
                "questions": [],
                "chart": example.query_text,
                "schema": example.schema_text,
                "table": example.table_text or None,
            }
        if example.question not in documents[key]["questions"]:
            documents[key]["questions"].append(example.question)
    return [
        CorpusDocument(
            doc_id=entry["doc_id"],
            title=" ".join(entry["questions"]),
            chart=entry["chart"],
            schema=entry["schema"],
            table=entry["table"],
        )
        for entry in documents.values()
    ]
