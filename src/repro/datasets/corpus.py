"""Pre-training corpus construction (§IV of the paper).

The hybrid pre-training objectives consume two corpora built from the four
task datasets:

* the **Bidirectional Dual-Corpus (BDC)** segment holds source/target pairs
  for the four mappings (NL+Schema ↔ DV query, DV query+Schema ↔ Description,
  Table ↔ Description, Question+DV query+Schema+Table ↔ Answer); during
  training either side is chosen as the input with probability 0.5;
* the **MLM** segment is a flat list of cross-modal text sequences used for
  T5 span-corruption denoising.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.chart2text import Chart2TextExample
from repro.datasets.fevisqa import FeVisQAExample
from repro.datasets.nvbench import NvBenchExample
from repro.datasets.wikitabletext import WikiTableTextExample
from repro.encoding.schema_encoder import encode_schema
from repro.encoding.sequences import (
    fevisqa_input,
    fevisqa_target,
    table_to_text_input,
    table_to_text_target,
    text_to_vis_input,
    text_to_vis_target,
    vis_to_text_input,
    vis_to_text_target,
)


@dataclass
class Seq2SeqExample:
    """A single source/target training pair with its originating task."""

    source: str
    target: str
    task: str
    db_id: str | None = None
    example_id: str | None = None

    def swapped(self) -> "Seq2SeqExample":
        """The reverse-direction pair (used by the BDC objective)."""
        return Seq2SeqExample(
            source=self.target,
            target=self.source,
            task=self.task,
            db_id=self.db_id,
            example_id=self.example_id,
        )


@dataclass
class PretrainingCorpus:
    """The two segments of the hybrid pre-training corpus."""

    bdc_pairs: list[Seq2SeqExample] = field(default_factory=list)
    mlm_texts: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.bdc_pairs) + len(self.mlm_texts)

    def statistics(self) -> dict:
        """Summary counts over the corpus's sequence pairs."""
        by_task: dict[str, int] = {}
        for pair in self.bdc_pairs:
            by_task[pair.task] = by_task.get(pair.task, 0) + 1
        return {
            "bdc_pairs": len(self.bdc_pairs),
            "mlm_texts": len(self.mlm_texts),
            "bdc_by_task": by_task,
        }

    def all_texts(self) -> list[str]:
        """Every distinct text sequence (used to build the tokenizer vocabulary)."""
        texts: list[str] = []
        for pair in self.bdc_pairs:
            texts.append(pair.source)
            texts.append(pair.target)
        texts.extend(self.mlm_texts)
        return texts


# -- per-task pair constructors ----------------------------------------------------------


def nvbench_to_text_to_vis_pair(example: NvBenchExample, pool) -> Seq2SeqExample:
    """``NL + Schema -> DV query`` (the text-to-vis mapping)."""
    schema = pool.get(example.db_id).schema
    return Seq2SeqExample(
        source=text_to_vis_input(example.question, schema),
        target=text_to_vis_target(example.query),
        task="text_to_vis",
        db_id=example.db_id,
        example_id=example.example_id,
    )


def nvbench_to_vis_to_text_pair(example: NvBenchExample, pool) -> Seq2SeqExample:
    """``DV query + Schema -> Description`` (the vis-to-text mapping)."""
    schema = pool.get(example.db_id).schema
    return Seq2SeqExample(
        source=vis_to_text_input(example.query, schema),
        target=vis_to_text_target(example.description),
        task="vis_to_text",
        db_id=example.db_id,
        example_id=example.example_id,
    )


def table_pair(example: Chart2TextExample | WikiTableTextExample, max_rows: int | None = 12) -> Seq2SeqExample:
    """``Table -> Description`` (the table-to-text mapping)."""
    return Seq2SeqExample(
        source=table_to_text_input(example.linearized(max_rows=max_rows)),
        target=table_to_text_target(example.description),
        task="table_to_text",
        example_id=example.example_id,
    )


def fevisqa_pair(example: FeVisQAExample) -> Seq2SeqExample:
    """``Question + DV query + Schema + Table -> Answer`` (the FeVisQA mapping)."""
    return Seq2SeqExample(
        source=fevisqa_input(
            example.question,
            query=example.query_text,
            schema=example.schema_text,
            table=example.table_text or None,
        ),
        target=fevisqa_target(example.answer),
        task="fevisqa",
        db_id=example.db_id,
        example_id=example.example_id,
    )


def build_pretraining_corpus(
    nvbench_examples: list[NvBenchExample],
    chart2text_examples: list[Chart2TextExample],
    wikitabletext_examples: list[WikiTableTextExample],
    fevisqa_examples: list[FeVisQAExample],
    pool,
    max_table_cells: int = 150,
) -> PretrainingCorpus:
    """Assemble the hybrid pre-training corpus from the four task corpora.

    Chart2Text tables with more than ``max_table_cells`` cells are dropped,
    matching the paper's pre-processing.
    """
    corpus = PretrainingCorpus()

    for example in nvbench_examples:
        corpus.bdc_pairs.append(nvbench_to_text_to_vis_pair(example, pool))
        corpus.bdc_pairs.append(nvbench_to_vis_to_text_pair(example, pool))
        corpus.mlm_texts.append(example.question)
        corpus.mlm_texts.append(example.query_text)
        corpus.mlm_texts.append(encode_schema(pool.get(example.db_id).schema))

    for example in chart2text_examples:
        if example.num_cells > max_table_cells:
            continue
        corpus.bdc_pairs.append(table_pair(example))
        corpus.mlm_texts.append(example.description)

    for example in wikitabletext_examples:
        corpus.bdc_pairs.append(table_pair(example))
        corpus.mlm_texts.append(example.description)

    for example in fevisqa_examples:
        corpus.bdc_pairs.append(fevisqa_pair(example))
        corpus.mlm_texts.append(f"{example.question} {example.answer}")

    return corpus
