"""Synthetic multi-domain relational databases.

The real nvBench / FeVisQA corpora are built over the 152 databases of the
Spider dataset.  This module regenerates a pool of cross-domain databases
with the same flavour: each *domain* (gallery, inn, allergy, soccer, films,
flights, retail, ...) defines a small schema with typed columns and foreign
keys, and the pool instantiates several variants of each domain with fresh
synthetic rows.  The case-study databases that appear verbatim in the
paper's figures (``theme_gallery``, ``inn_1``, ``allergy_1``, ``film_rank``,
``candidate_poll``, ``local_govt_in_alabama``) are included with their exact
table and column names so the qualitative benchmarks are faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.database.database import Database
from repro.database.schema import Column, ColumnType, DatabaseSchema, ForeignKey, TableSchema
from repro.datasets import vocabularies as vocab
from repro.utils.rng import derive_seed, seeded_rng


# -- domain specification -------------------------------------------------------------


@dataclass(frozen=True)
class ColumnSpec:
    """A column plus the recipe for generating its values."""

    name: str
    ctype: ColumnType
    generator: tuple


@dataclass(frozen=True)
class TableSpec:
    """A table plus its row-count range."""

    name: str
    columns: tuple[ColumnSpec, ...]
    primary_key: str | None = None
    min_rows: int = 6
    max_rows: int = 14


@dataclass(frozen=True)
class DomainSpec:
    """A database domain: tables in dependency order plus foreign keys."""

    name: str
    tables: tuple[TableSpec, ...]
    foreign_keys: tuple[tuple[str, str, str, str], ...] = ()
    # Number of pool variants instantiated from this domain.
    variants: int = 3


def _col(name: str, kind: str, *args) -> ColumnSpec:
    """Shorthand constructor mapping generator kinds to column types."""
    numeric_kinds = {"id", "int", "float", "fk"}
    time_kinds = {"year", "date"}
    if kind in numeric_kinds:
        ctype = ColumnType.NUMBER
    elif kind in time_kinds:
        ctype = ColumnType.TIME
    else:
        ctype = ColumnType.TEXT
    return ColumnSpec(name=name, ctype=ctype, generator=(kind, *args))


DOMAINS: tuple[DomainSpec, ...] = (
    DomainSpec(
        name="theme_gallery",
        tables=(
            TableSpec(
                "artist",
                (
                    _col("artist_id", "id"),
                    _col("name", "person"),
                    _col("country", "choice", vocab.COUNTRIES),
                    _col("year_join", "year", 1985, 2015),
                    _col("age", "int", 25, 70),
                ),
                primary_key="artist_id",
            ),
            TableSpec(
                "exhibition",
                (
                    _col("exhibition_id", "id"),
                    _col("artist_id", "fk", "artist", "artist_id"),
                    _col("theme", "choice", vocab.GENRES),
                    _col("ticket_price", "float", 5, 60),
                    _col("year", "year", 2000, 2020),
                ),
                primary_key="exhibition_id",
            ),
        ),
        foreign_keys=(("exhibition", "artist_id", "artist", "artist_id"),),
        variants=2,
    ),
    DomainSpec(
        name="inn",
        tables=(
            TableSpec(
                "rooms",
                (
                    _col("roomid", "id"),
                    _col("roomname", "textid", "room"),
                    _col("bedtype", "choice", vocab.BED_TYPES),
                    _col("baseprice", "float", 50, 300),
                    _col("decor", "choice", vocab.DECOR_STYLES),
                    _col("maxoccupancy", "int", 1, 6),
                ),
                primary_key="roomid",
            ),
            TableSpec(
                "reservations",
                (
                    _col("code", "id"),
                    _col("room", "fk", "rooms", "roomid"),
                    _col("checkin", "date", 2010, 2020),
                    _col("rate", "float", 50, 350),
                    _col("adults", "int", 1, 4),
                ),
                primary_key="code",
                min_rows=10,
                max_rows=24,
            ),
        ),
        foreign_keys=(("reservations", "room", "rooms", "roomid"),),
        variants=2,
    ),
    DomainSpec(
        name="allergy",
        tables=(
            TableSpec(
                "allergy_type",
                (
                    _col("allergy", "choice", vocab.ALLERGIES),
                    _col("allergytype", "choice", vocab.ALLERGY_TYPES),
                ),
                primary_key="allergy",
                min_rows=6,
                max_rows=10,
            ),
            TableSpec(
                "student",
                (
                    _col("stuid", "id"),
                    _col("lname", "lastname"),
                    _col("fname", "firstname"),
                    _col("age", "int", 17, 30),
                    _col("sex", "choice", ["M", "F"]),
                    _col("major", "choice", vocab.MAJORS),
                    _col("advisor", "int", 1000, 9999),
                    _col("city_code", "choice", ["NYC", "CHI", "LA", "HOU", "PHI"]),
                ),
                primary_key="stuid",
                min_rows=10,
                max_rows=20,
            ),
            TableSpec(
                "has_allergy",
                (
                    _col("stuid", "fk", "student", "stuid"),
                    _col("allergy", "fk_text", "allergy_type", "allergy"),
                ),
                min_rows=8,
                max_rows=20,
            ),
        ),
        foreign_keys=(
            ("has_allergy", "stuid", "student", "stuid"),
            ("has_allergy", "allergy", "allergy_type", "allergy"),
        ),
        variants=2,
    ),
    DomainSpec(
        name="soccer",
        tables=(
            TableSpec(
                "team",
                (
                    _col("team_id", "id"),
                    _col("name", "choice", vocab.TEAM_NAMES),
                    _col("city", "choice", vocab.CITIES),
                    _col("founded", "year", 1900, 2000),
                ),
                primary_key="team_id",
                min_rows=4,
                max_rows=8,
            ),
            TableSpec(
                "player",
                (
                    _col("player_id", "id"),
                    _col("name", "person"),
                    _col("team", "fk", "team", "team_id"),
                    _col("years_played", "int", 1, 15),
                    _col("age", "int", 18, 40),
                    _col("goals", "int", 0, 60),
                ),
                primary_key="player_id",
                min_rows=12,
                max_rows=24,
            ),
        ),
        foreign_keys=(("player", "team", "team", "team_id"),),
        variants=3,
    ),
    DomainSpec(
        name="candidate_poll",
        tables=(
            TableSpec(
                "people",
                (
                    _col("people_id", "id"),
                    _col("sex", "choice", ["M", "F"]),
                    _col("name", "person"),
                    _col("date_of_birth", "date", 1950, 2000),
                    _col("height", "float", 150, 200),
                    _col("weight", "float", 45, 110),
                ),
                primary_key="people_id",
                min_rows=10,
                max_rows=20,
            ),
            TableSpec(
                "candidate",
                (
                    _col("candidate_id", "id"),
                    _col("people_id", "fk", "people", "people_id"),
                    _col("poll_source", "choice", ["newspaper", "television", "internet"]),
                    _col("support_rate", "float", 0, 1),
                    _col("oppose_rate", "float", 0, 1),
                ),
                primary_key="candidate_id",
            ),
        ),
        foreign_keys=(("candidate", "people_id", "people", "people_id"),),
        variants=2,
    ),
    DomainSpec(
        name="film_rank",
        tables=(
            TableSpec(
                "film",
                (
                    _col("film_id", "id"),
                    _col("title", "textid", "film"),
                    _col("studio", "choice", vocab.STUDIOS),
                    _col("director", "person"),
                    _col("gross_in_dollar", "int", 1000000, 900000000),
                ),
                primary_key="film_id",
                min_rows=6,
                max_rows=12,
            ),
            TableSpec(
                "film_market_estimation",
                (
                    _col("estimation_id", "id"),
                    _col("low_estimate", "float", 1000, 100000),
                    _col("high_estimate", "float", 100000, 900000),
                    _col("film_id", "fk", "film", "film_id"),
                    _col("type", "choice", vocab.FILM_TYPES),
                    _col("market_id", "int", 1, 10),
                    _col("year", "year", 1980, 2020),
                ),
                primary_key="estimation_id",
                min_rows=8,
                max_rows=16,
            ),
        ),
        foreign_keys=(("film_market_estimation", "film_id", "film", "film_id"),),
        variants=2,
    ),
    DomainSpec(
        name="local_govt_in_alabama",
        tables=(
            TableSpec(
                "participants",
                (
                    _col("participant_id", "id"),
                    _col("participant_type_code", "choice", ["organizer", "participant"]),
                    _col("participant_details", "person"),
                ),
                primary_key="participant_id",
                min_rows=8,
                max_rows=16,
            ),
            TableSpec(
                "events",
                (
                    _col("event_id", "id"),
                    _col("service_id", "int", 1, 20),
                    _col("event_details", "choice", ["Success", "Fail", "Pending", "Cancelled"]),
                ),
                primary_key="event_id",
                min_rows=6,
                max_rows=12,
            ),
            TableSpec(
                "participants_in_events",
                (
                    _col("event_id", "fk", "events", "event_id"),
                    _col("participant_id", "fk", "participants", "participant_id"),
                ),
                min_rows=10,
                max_rows=24,
            ),
        ),
        foreign_keys=(
            ("participants_in_events", "event_id", "events", "event_id"),
            ("participants_in_events", "participant_id", "participants", "participant_id"),
        ),
        variants=2,
    ),
    DomainSpec(
        name="college",
        tables=(
            TableSpec(
                "department",
                (
                    _col("dept_id", "id"),
                    _col("dept_name", "choice", vocab.DEPARTMENTS),
                    _col("budget", "float", 100000, 5000000),
                    _col("building", "textid", "hall"),
                ),
                primary_key="dept_id",
                min_rows=4,
                max_rows=8,
            ),
            TableSpec(
                "instructor",
                (
                    _col("instructor_id", "id"),
                    _col("name", "person"),
                    _col("dept_id", "fk", "department", "dept_id"),
                    _col("salary", "float", 40000, 180000),
                    _col("hire_year", "year", 1990, 2022),
                ),
                primary_key="instructor_id",
                min_rows=10,
                max_rows=20,
            ),
        ),
        foreign_keys=(("instructor", "dept_id", "department", "dept_id"),),
        variants=3,
    ),
    DomainSpec(
        name="flight_company",
        tables=(
            TableSpec(
                "airline",
                (
                    _col("airline_id", "id"),
                    _col("airline_name", "choice", vocab.AIRLINES),
                    _col("country", "choice", vocab.COUNTRIES),
                    _col("fleet_size", "int", 10, 400),
                ),
                primary_key="airline_id",
                min_rows=4,
                max_rows=8,
            ),
            TableSpec(
                "flight",
                (
                    _col("flight_id", "id"),
                    _col("airline_id", "fk", "airline", "airline_id"),
                    _col("origin", "choice", vocab.CITIES),
                    _col("destination", "choice", vocab.CITIES),
                    _col("distance", "int", 100, 9000),
                    _col("departure_date", "date", 2015, 2023),
                    _col("price", "float", 50, 1500),
                ),
                primary_key="flight_id",
                min_rows=12,
                max_rows=24,
            ),
        ),
        foreign_keys=(("flight", "airline_id", "airline", "airline_id"),),
        variants=3,
    ),
    DomainSpec(
        name="retail_orders",
        tables=(
            TableSpec(
                "product",
                (
                    _col("product_id", "id"),
                    _col("product_name", "textid", "product"),
                    _col("category", "choice", vocab.PRODUCT_CATEGORIES),
                    _col("price", "float", 1, 900),
                    _col("stock", "int", 0, 500),
                ),
                primary_key="product_id",
                min_rows=8,
                max_rows=16,
            ),
            TableSpec(
                "orders",
                (
                    _col("order_id", "id"),
                    _col("product_id", "fk", "product", "product_id"),
                    _col("quantity", "int", 1, 20),
                    _col("order_date", "date", 2018, 2023),
                    _col("customer_city", "choice", vocab.CITIES),
                ),
                primary_key="order_id",
                min_rows=14,
                max_rows=28,
            ),
        ),
        foreign_keys=(("orders", "product_id", "product", "product_id"),),
        variants=3,
    ),
    DomainSpec(
        name="concert_hall",
        tables=(
            TableSpec(
                "singer",
                (
                    _col("singer_id", "id"),
                    _col("name", "person"),
                    _col("country", "choice", vocab.COUNTRIES),
                    _col("age", "int", 18, 70),
                    _col("net_worth", "float", 10000, 90000000),
                ),
                primary_key="singer_id",
                min_rows=8,
                max_rows=16,
            ),
            TableSpec(
                "concert",
                (
                    _col("concert_id", "id"),
                    _col("singer_id", "fk", "singer", "singer_id"),
                    _col("stadium", "textid", "stadium"),
                    _col("year", "year", 2000, 2023),
                    _col("attendance", "int", 500, 90000),
                ),
                primary_key="concert_id",
                min_rows=10,
                max_rows=20,
            ),
        ),
        foreign_keys=(("concert", "singer_id", "singer", "singer_id"),),
        variants=3,
    ),
    DomainSpec(
        name="hospital",
        tables=(
            TableSpec(
                "physician",
                (
                    _col("physician_id", "id"),
                    _col("name", "person"),
                    _col("department", "choice", vocab.DEPARTMENTS),
                    _col("experience_years", "int", 1, 40),
                    _col("salary", "float", 60000, 400000),
                ),
                primary_key="physician_id",
                min_rows=8,
                max_rows=14,
            ),
            TableSpec(
                "appointment",
                (
                    _col("appointment_id", "id"),
                    _col("physician_id", "fk", "physician", "physician_id"),
                    _col("patient_city", "choice", vocab.CITIES),
                    _col("appointment_date", "date", 2018, 2023),
                    _col("cost", "float", 40, 900),
                ),
                primary_key="appointment_id",
                min_rows=12,
                max_rows=24,
            ),
        ),
        foreign_keys=(("appointment", "physician_id", "physician", "physician_id"),),
        variants=3,
    ),
    DomainSpec(
        name="book_press",
        tables=(
            TableSpec(
                "publisher",
                (
                    _col("publisher_id", "id"),
                    _col("publisher_name", "choice", vocab.PUBLISHERS),
                    _col("city", "choice", vocab.CITIES),
                    _col("founded", "year", 1850, 2010),
                ),
                primary_key="publisher_id",
                min_rows=4,
                max_rows=6,
            ),
            TableSpec(
                "book",
                (
                    _col("book_id", "id"),
                    _col("title", "textid", "book"),
                    _col("publisher_id", "fk", "publisher", "publisher_id"),
                    _col("year", "year", 1990, 2023),
                    _col("pages", "int", 80, 1200),
                    _col("price", "float", 5, 120),
                ),
                primary_key="book_id",
                min_rows=10,
                max_rows=20,
            ),
        ),
        foreign_keys=(("book", "publisher_id", "publisher", "publisher_id"),),
        variants=3,
    ),
    DomainSpec(
        name="city_weather",
        tables=(
            TableSpec(
                "city",
                (
                    _col("city_id", "id"),
                    _col("city_name", "choice", vocab.CITIES),
                    _col("country", "choice", vocab.COUNTRIES),
                    _col("population", "int", 50000, 12000000),
                ),
                primary_key="city_id",
                min_rows=6,
                max_rows=12,
            ),
            TableSpec(
                "weather_record",
                (
                    _col("record_id", "id"),
                    _col("city_id", "fk", "city", "city_id"),
                    _col("record_date", "date", 2019, 2023),
                    _col("temperature", "float", -20, 45),
                    _col("rainfall", "float", 0, 300),
                ),
                primary_key="record_id",
                min_rows=14,
                max_rows=28,
            ),
        ),
        foreign_keys=(("weather_record", "city_id", "city", "city_id"),),
        variants=3,
    ),
)


# -- value generation -----------------------------------------------------------------


class _ValueFactory:
    """Generates cell values for one table according to the column specs."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def generate(self, spec: ColumnSpec, row_index: int, parents: dict[str, list]) -> object:
        kind = spec.generator[0]
        args = spec.generator[1:]
        if kind == "id":
            return row_index + 1
        if kind == "int":
            low, high = args
            return int(self.rng.integers(low, high + 1))
        if kind == "float":
            low, high = args
            return round(float(self.rng.uniform(low, high)), 2)
        if kind == "year":
            low, high = args
            return int(self.rng.integers(low, high + 1))
        if kind == "date":
            year_low, year_high = args
            year = int(self.rng.integers(year_low, year_high + 1))
            month = int(self.rng.integers(1, 13))
            day = int(self.rng.integers(1, 29))
            return f"{year:04d}-{month:02d}-{day:02d}"
        if kind == "choice":
            (options,) = args
            return str(self.rng.choice(options))
        if kind == "person":
            first = str(self.rng.choice(vocab.PERSON_FIRST_NAMES))
            last = str(self.rng.choice(vocab.PERSON_LAST_NAMES))
            return f"{first} {last}"
        if kind == "firstname":
            return str(self.rng.choice(vocab.PERSON_FIRST_NAMES))
        if kind == "lastname":
            return str(self.rng.choice(vocab.PERSON_LAST_NAMES))
        if kind == "textid":
            (prefix,) = args
            return f"{prefix} {row_index + 1}"
        if kind in ("fk", "fk_text"):
            parent_table, parent_column = args
            pool = parents.get(f"{parent_table}.{parent_column}")
            if not pool:
                raise DatasetError(f"foreign key {parent_table}.{parent_column} has no generated values")
            return pool[int(self.rng.integers(0, len(pool)))]
        raise DatasetError(f"unknown value generator kind {kind!r}")


# -- pool construction -------------------------------------------------------------------


@dataclass
class SyntheticDatabasePool:
    """A pool of named :class:`Database` instances spanning many domains."""

    databases: dict[str, Database] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.databases)

    def names(self) -> list[str]:
        """Names of every database in the pool."""
        return list(self.databases)

    def get(self, name: str) -> Database:
        """The database called ``name``."""
        if name not in self.databases:
            raise DatasetError(f"database {name!r} is not in the pool")
        return self.databases[name]

    def __iter__(self):
        return iter(self.databases.values())

    def items(self):
        """``(name, database)`` pairs, in creation order."""
        return self.databases.items()


def build_database_pool(
    num_databases: int | None = None,
    seed: int = 0,
    rows_scale: float = 1.0,
) -> SyntheticDatabasePool:
    """Instantiate the synthetic database pool.

    ``num_databases`` caps the number of generated databases (defaults to all
    domain variants); ``rows_scale`` scales the per-table row counts, which
    benchmarks use to shrink or grow workloads.
    """
    pool = SyntheticDatabasePool()
    for domain in DOMAINS:
        for variant in range(domain.variants):
            if num_databases is not None and len(pool) >= num_databases:
                return pool
            name = domain.name if variant == 0 else f"{domain.name}_{variant + 1}"
            rng = seeded_rng(derive_seed(seed, "spider", domain.name, variant))
            pool.databases[name] = _build_database(domain, name, rng, rows_scale)
    return pool


def _build_database(domain: DomainSpec, name: str, rng: np.random.Generator, rows_scale: float) -> Database:
    tables = [
        TableSchema(
            name=spec.name,
            columns=[Column(column.name, column.ctype) for column in spec.columns],
            primary_key=spec.primary_key,
        )
        for spec in domain.tables
    ]
    foreign_keys = [
        ForeignKey(source_table=src_t, source_column=src_c, target_table=dst_t, target_column=dst_c)
        for src_t, src_c, dst_t, dst_c in domain.foreign_keys
    ]
    schema = DatabaseSchema(name=name, tables=tables, foreign_keys=foreign_keys)
    database = Database(schema)
    factory = _ValueFactory(rng)
    generated: dict[str, list] = {}
    for spec in domain.tables:
        num_rows = int(rng.integers(spec.min_rows, spec.max_rows + 1))
        num_rows = max(3, int(round(num_rows * rows_scale)))
        rows = []
        for row_index in range(num_rows):
            row = {column.name: factory.generate(column, row_index, generated) for column in spec.columns}
            rows.append(row)
        database.insert_many(spec.name, rows)
        for column in spec.columns:
            generated[f"{spec.name}.{column.name}"] = [row[column.name] for row in rows]
    return database
