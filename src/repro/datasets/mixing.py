"""Temperature mixing of multi-task training data (§III-F of the paper).

Multi-task fine-tuning combines the training sets of all four tasks.  With
plain proportional sampling the large FeVisQA corpus would dominate the small
nvBench one, so the paper up-samples with a temperature of 2: the probability
of drawing a task is proportional to ``size ** (1 / temperature)``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.utils.rng import seeded_rng


def temperature_mixing_weights(sizes: Mapping[str, int], temperature: float = 2.0) -> dict[str, float]:
    """Per-task sampling probabilities for the given corpus ``sizes``.

    ``temperature=1`` reduces to proportional sampling; larger temperatures
    flatten the distribution toward uniform.
    """
    if temperature <= 0:
        raise DatasetError("temperature must be positive")
    positive = {task: size for task, size in sizes.items() if size > 0}
    if not positive:
        raise DatasetError("temperature mixing needs at least one non-empty task")
    scaled = {task: float(size) ** (1.0 / temperature) for task, size in positive.items()}
    total = sum(scaled.values())
    weights = {task: value / total for task, value in scaled.items()}
    for task, size in sizes.items():
        if size == 0:
            weights[task] = 0.0
    return weights


class TemperatureMixedSampler:
    """Draws training examples task-by-task according to temperature weights."""

    def __init__(
        self,
        task_examples: Mapping[str, Sequence],
        temperature: float = 2.0,
        seed: int = 0,
    ):
        self.task_examples = {task: list(examples) for task, examples in task_examples.items()}
        sizes = {task: len(examples) for task, examples in self.task_examples.items()}
        self.weights = temperature_mixing_weights(sizes, temperature=temperature)
        self._tasks = [task for task, weight in self.weights.items() if weight > 0]
        self._probabilities = np.asarray([self.weights[task] for task in self._tasks])
        self._probabilities = self._probabilities / self._probabilities.sum()
        self._rng = seeded_rng(seed)

    def sample(self):
        """Draw one (task, example) pair."""
        task = self._tasks[int(self._rng.choice(len(self._tasks), p=self._probabilities))]
        examples = self.task_examples[task]
        example = examples[int(self._rng.integers(0, len(examples)))]
        return task, example

    def sample_batch(self, batch_size: int) -> list:
        """Draw ``batch_size`` examples (tasks mixed within the batch)."""
        return [self.sample()[1] for _ in range(batch_size)]

    def epoch(self, num_samples: int) -> list:
        """A deterministic-order epoch of ``num_samples`` mixed examples."""
        return [self.sample()[1] for _ in range(num_samples)]
