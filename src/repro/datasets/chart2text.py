"""Synthetic Chart2Text-style corpus (Statista-like statistic tables).

The real Chart2Text benchmark pairs Statista statistic tables (title, data
table, axis labels) with expert-written descriptions.  The synthetic
counterpart generates small two-column statistic tables about a topic and a
region, plus a templated description of the headline fact, and reproduces the
paper's pre-processing rule of dropping tables with more than 150 cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import vocabularies as vocab
from repro.encoding.table_encoder import encode_table
from repro.utils.rng import derive_seed, seeded_rng


@dataclass
class Chart2TextExample:
    """One statistic table with its title and description."""

    example_id: str
    title: str
    columns: list[str]
    rows: list[list[object]]
    description: str

    @property
    def num_cells(self) -> int:
        """Number of table cells in the example."""
        return len(self.rows) * len(self.columns)

    def linearized(self, max_rows: int | None = None) -> str:
        """The example's table linearized to the model's text format."""
        return encode_table(self.columns, self.rows, title=self.title, max_rows=max_rows)


@dataclass
class Chart2TextDataset:
    """The Chart2Text-style corpus."""

    examples: list[Chart2TextExample]

    def __len__(self) -> int:
        return len(self.examples)

    def filter_by_cells(self, max_cells: int = 150) -> "Chart2TextDataset":
        """The paper keeps only tables with at most 150 cells for pre-training."""
        return Chart2TextDataset([example for example in self.examples if example.num_cells <= max_cells])

    def cell_statistics(self) -> dict:
        """The quantities reported in the paper's Table II (cell counts)."""
        cells = [example.num_cells for example in self.examples]
        return {
            "instances": len(cells),
            "min_cells": min(cells) if cells else 0,
            "max_cells": max(cells) if cells else 0,
            "at_most_150": sum(1 for count in cells if count <= 150),
            "more_than_150": sum(1 for count in cells if count > 150),
        }


_UNITS = ["percent", "million dollars", "thousand users", "units", "tons"]

_DESCRIPTION_TEMPLATES = [
    "This statistic presents {topic} in {region} as of {year} . {leader} ranked first with {value} {unit} .",
    "The statistic shows {topic} in {region} in {year} . During this period {leader} reached {value} {unit} .",
    "As of {year} , {leader} led {topic} in {region} with {value} {unit} .",
]


def generate_chart2text(
    num_examples: int = 300,
    seed: int = 0,
    large_table_fraction: float = 0.02,
) -> Chart2TextDataset:
    """Generate ``num_examples`` statistic tables.

    A small fraction of tables is generated with more than 150 cells so the
    pre-processing filter of the paper has something to remove.
    """
    examples: list[Chart2TextExample] = []
    for index in range(num_examples):
        rng = seeded_rng(derive_seed(seed, "chart2text", index))
        examples.append(_generate_example(index, rng, large_table_fraction))
    return Chart2TextDataset(examples)


def _generate_example(index: int, rng: np.random.Generator, large_table_fraction: float) -> Chart2TextExample:
    topic = str(rng.choice(vocab.STATISTIC_TOPICS))
    region = str(rng.choice(vocab.STATISTIC_REGIONS))
    year = int(rng.integers(2010, 2024))
    unit = str(rng.choice(_UNITS))
    title = f"{topic.capitalize()} in {region} as of {year}"

    if rng.random() < large_table_fraction:
        num_rows = int(rng.integers(80, 140))
    else:
        num_rows = int(rng.integers(4, 12))
    entities = _entity_pool(topic, rng, num_rows)
    values = sorted((round(float(rng.uniform(1, 100)), 1) for _ in range(num_rows)), reverse=True)
    columns = ["response", f"value in {unit}"]
    rows: list[list[object]] = [[entity, value] for entity, value in zip(entities, values)]

    leader, leading_value = rows[0][0], rows[0][1]
    template = _DESCRIPTION_TEMPLATES[int(rng.integers(0, len(_DESCRIPTION_TEMPLATES)))]
    description = template.format(topic=topic, region=region, year=year, leader=leader, value=leading_value, unit=unit)
    return Chart2TextExample(
        example_id=f"chart2text:{index}",
        title=title,
        columns=columns,
        rows=rows,
        description=" ".join(description.split()),
    )


def _entity_pool(topic: str, rng: np.random.Generator, count: int) -> list[str]:
    if "social networks" in topic or "messaging" in topic or "streaming" in topic:
        base = list(vocab.SOCIAL_NETWORKS)
    elif "airlines" in topic:
        base = list(vocab.AIRLINES)
    elif "country" in topic or "destination" in topic:
        base = list(vocab.COUNTRIES)
    elif "cities" in topic:
        base = list(vocab.CITIES)
    elif "studios" in topic:
        base = list(vocab.STUDIOS)
    else:
        base = list(vocab.PRODUCT_CATEGORIES) + list(vocab.DEPARTMENTS)
    rng.shuffle(base)
    entities = list(base)
    suffix = 2
    while len(entities) < count:
        entities.extend(f"{name} {suffix}" for name in base)
        suffix += 1
    return entities[:count]
