"""Cross-domain data partitioning.

nvBench (and, via its shared databases, FeVisQA) is split *by database*:
70% of databases for training, 10% for validation and 20% for testing, so
that test questions are asked against schemas never seen during training.
This module implements that scheme generically for any example type that
carries a ``db_id`` attribute, plus a simple instance-level split for the
table corpora.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.errors import DatasetError
from repro.utils.rng import seeded_rng


@dataclass
class DatasetSplits:
    """Train / validation / test example lists."""

    train: list
    valid: list
    test: list

    def __post_init__(self):
        if not self.train:
            raise DatasetError("the training split is empty")

    def sizes(self) -> dict:
        """Example counts per split."""
        return {"train": len(self.train), "valid": len(self.valid), "test": len(self.test)}

    def all_examples(self) -> list:
        """Every example across the train/dev/test splits."""
        return list(self.train) + list(self.valid) + list(self.test)


def cross_domain_split(
    examples: Sequence,
    train_fraction: float = 0.7,
    valid_fraction: float = 0.1,
    seed: int = 0,
) -> DatasetSplits:
    """Split ``examples`` by their ``db_id`` into train/valid/test databases."""
    if train_fraction <= 0 or valid_fraction < 0 or train_fraction + valid_fraction >= 1:
        raise DatasetError("invalid split fractions")
    databases: list[str] = []
    for example in examples:
        db_id = getattr(example, "db_id", None)
        if db_id is None:
            raise DatasetError("cross_domain_split requires examples with a db_id attribute")
        if db_id not in databases:
            databases.append(db_id)
    if len(databases) < 3:
        raise DatasetError("cross-domain splitting needs at least 3 distinct databases")
    rng = seeded_rng(seed)
    order = list(rng.permutation(len(databases)))
    shuffled = [databases[index] for index in order]
    num_train = max(1, int(round(len(shuffled) * train_fraction)))
    num_valid = max(1, int(round(len(shuffled) * valid_fraction)))
    if num_train + num_valid >= len(shuffled):
        num_train = len(shuffled) - num_valid - 1
        num_train = max(1, num_train)
    train_dbs = set(shuffled[:num_train])
    valid_dbs = set(shuffled[num_train : num_train + num_valid])
    test_dbs = set(shuffled[num_train + num_valid :])

    def bucket(databases_set):
        return [example for example in examples if example.db_id in databases_set]

    return DatasetSplits(train=bucket(train_dbs), valid=bucket(valid_dbs), test=bucket(test_dbs))


def instance_split(
    examples: Sequence,
    train_fraction: float = 0.7,
    valid_fraction: float = 0.1,
    seed: int = 0,
) -> DatasetSplits:
    """Split ``examples`` uniformly at random (used by the table corpora)."""
    if train_fraction <= 0 or valid_fraction < 0 or train_fraction + valid_fraction >= 1:
        raise DatasetError("invalid split fractions")
    rng = seeded_rng(seed)
    order = list(rng.permutation(len(examples)))
    shuffled = [examples[index] for index in order]
    num_train = max(1, int(round(len(shuffled) * train_fraction)))
    num_valid = max(1, int(round(len(shuffled) * valid_fraction)))
    train = shuffled[:num_train]
    valid = shuffled[num_train : num_train + num_valid]
    test = shuffled[num_train + num_valid :]
    return DatasetSplits(train=train, valid=valid, test=test)
