"""Natural-language templates for the synthetic nvBench-style corpus.

Real nvBench questions were written by crowd annotators, so they vary in
phrasing while describing the same DV query.  The generator reproduces that
variability with several paraphrase templates per query pattern; which
template is used for a given example is a deterministic function of the
generator seed.
"""

from __future__ import annotations

CHART_PHRASES = {
    "bar": ["a bar chart", "a bar graph", "a histogram"],
    "pie": ["a pie chart", "a pie graph", "a proportion pie"],
    "line": ["a line chart", "a line graph", "a trend line"],
    "scatter": ["a scatter plot", "a scatter chart", "a scatter diagram"],
    "stacked bar": ["a stacked bar chart", "a stacked bar graph"],
    "grouping line": ["a grouped line chart", "a multi-series line chart"],
    "grouping scatter": ["a grouped scatter plot", "a colored scatter chart"],
}

AGGREGATE_PHRASES = {
    "count": ["the number of", "how many", "the total count of"],
    "sum": ["the total", "the sum of", "the combined"],
    "avg": ["the average", "the mean"],
    "max": ["the maximum", "the largest", "the highest"],
    "min": ["the minimum", "the smallest", "the lowest"],
}

GROUP_COUNT_TEMPLATES = [
    "Show {agg_phrase} {x_phrase} for each {x_phrase} in the {table_phrase} table with {chart_phrase}{order_phrase}.",
    "Give me {chart_phrase} about the proportion of {agg_phrase} {x_phrase} in the {table_phrase} table{order_phrase}.",
    "How many {table_phrase} records are there for each {x_phrase} ? Show {chart_phrase}{order_phrase}.",
    "Draw {chart_phrase} showing the number of {table_phrase} rows per {x_phrase}{order_phrase}.",
    "Count the {table_phrase} entries grouped by {x_phrase} and plot {chart_phrase}{order_phrase}.",
]

GROUP_AGG_TEMPLATES = [
    "Show {agg_phrase} {y_phrase} for each {x_phrase} in {chart_phrase}{order_phrase}.",
    "{chart_phrase_cap} of {agg_phrase} {y_phrase} from each {x_phrase}{order_phrase}.",
    "What is {agg_phrase} {y_phrase} by {x_phrase} ? Visualize with {chart_phrase}{order_phrase}.",
    "For each {x_phrase} , plot {agg_phrase} {y_phrase} using {chart_phrase}{order_phrase}.",
    "Compare {agg_phrase} {y_phrase} across different {x_phrase} values with {chart_phrase}{order_phrase}.",
]

SCATTER_RAW_TEMPLATES = [
    "Show the relationship between {x_phrase} and {y_phrase} of the {table_phrase} table with {chart_phrase}.",
    "Plot {y_phrase} against {x_phrase} for all {table_phrase} rows using {chart_phrase}.",
    "Draw {chart_phrase} of {x_phrase} versus {y_phrase} from the {table_phrase} table.",
]

SCATTER_AGG_TEMPLATES = [
    "Just show {agg_phrase} and {agg2_phrase} {y_phrase} of the {table_phrase} in different {x_phrase} using {chart_phrase}.",
    "Show {agg_phrase} {y_phrase} and {agg2_phrase} {y_phrase} grouped by {x_phrase} with {chart_phrase}.",
    "Plot {agg_phrase} {y_phrase} against {agg2_phrase} {y_phrase} for each {x_phrase} using {chart_phrase}.",
]

JOIN_TEMPLATES = [
    "Show {agg_phrase} {y_phrase} for each {x_phrase} of the {table_phrase} joined with {join_table_phrase} in {chart_phrase}{filter_phrase}{order_phrase}.",
    "For {table_phrase} records linked to {join_table_phrase} , plot {agg_phrase} {y_phrase} per {x_phrase} with {chart_phrase}{filter_phrase}{order_phrase}.",
    "{chart_phrase_cap} of {agg_phrase} {y_phrase} by {x_phrase} , combining {table_phrase} and {join_table_phrase}{filter_phrase}{order_phrase}.",
]

BIN_TEMPLATES = [
    "Show the number of {table_phrase} records binned by {unit} of {x_phrase} with {chart_phrase}{order_phrase}.",
    "How does the count of {table_phrase} rows change over the {unit} of {x_phrase} ? Use {chart_phrase}{order_phrase}.",
    "Plot the number of {table_phrase} entries per {unit} of {x_phrase} using {chart_phrase}{order_phrase}.",
]

FILTER_PHRASES = [
    " where {column_phrase} is {value}",
    " only for rows whose {column_phrase} equals {value}",
    " restricted to {column_phrase} = {value}",
]

ORDER_PHRASES = {
    ("y", "desc"): [
        " , and display from high to low by the y-axis",
        " , ranked in descending order of the y-axis",
        " , and list from high to low",
    ],
    ("y", "asc"): [
        " , and show the y-axis from low to high",
        " , sorted in ascending order of the y-axis",
    ],
    ("x", "desc"): [
        " , and I want to rank in descending by the x-axis",
        " , ordered from z to a by the x-axis",
    ],
    ("x", "asc"): [
        " , and order the x-axis in ascending order",
        " , sorted alphabetically by the x-axis",
    ],
}

# Descriptions used as vis-to-text ground truth (one canonical description per
# query; the paper selects one representative description per DV query).
DESCRIPTION_TEMPLATES = {
    "group_count": "{chart_phrase_cap} showing the number of {table_phrase} records for each {x_phrase}{order_description}.",
    "group_agg": "{chart_phrase_cap} showing {agg_phrase} {y_phrase} for each {x_phrase}{order_description}.",
    "scatter_raw": "A scatter plot of {y_phrase} against {x_phrase} from the {table_phrase} table.",
    "scatter_agg": "A scatter plot comparing {agg_phrase} {y_phrase} and {agg2_phrase} {y_phrase} grouped by {x_phrase}.",
    "join": "{chart_phrase_cap} showing {agg_phrase} {y_phrase} for each {x_phrase} combining {table_phrase} with {join_table_phrase}{filter_description}{order_description}.",
    "bin": "{chart_phrase_cap} showing the number of {table_phrase} records per {unit} of {x_phrase}{order_description}.",
}

ORDER_DESCRIPTIONS = {
    ("y", "desc"): " , with the y-axis from high to low",
    ("y", "asc"): " , with the y-axis from low to high",
    ("x", "desc"): " , with the x-axis in descending order",
    ("x", "asc"): " , with the x-axis in ascending order",
}


def humanize(identifier: str) -> str:
    """Turn an identifier like ``year_join`` into the phrase ``year join``."""
    return identifier.replace("_", " ").strip()
