"""Synthetic FeVisQA corpus: free-form question answering over data visualization.

FeVisQA (Song et al., ICDE 2024) compiles rule-generated question-answer
pairs about DV queries and their charts.  The paper distinguishes three
question types, all of which are regenerated here:

* **Type 1** — semantic interpretation ("What is the meaning of this DV?"),
  answered by the natural-language description of the query;
* **Type 2** — DV recommendation ("Is this DV suitable for the given
  dataset?"), answered Yes/No by validating the query against the schema it
  is paired with (negatives pair the query with a foreign schema);
* **Type 3** — data retrieval and structure questions ("How many parts are
  there in the chart?", "What is the value of the largest part?"), answered
  by executing the DV query on the database and inspecting the chart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.charts.chart import build_chart
from repro.charts.properties import chart_properties
from repro.database.executor import execute_query
from repro.datasets.nvbench import NvBenchDataset, NvBenchExample, generate_nvbench
from repro.encoding.schema_encoder import encode_schema
from repro.encoding.table_encoder import encode_result_table
from repro.utils.rng import derive_seed, seeded_rng
from repro.vql.validation import is_query_compatible


@dataclass
class FeVisQAExample:
    """One free-form question-answer pair grounded in a DV query."""

    example_id: str
    db_id: str
    question: str
    answer: str
    question_type: int
    query_text: str
    schema_text: str
    table_text: str

    def to_dict(self) -> dict:
        """A JSON-friendly view of the example."""
        return {
            "example_id": self.example_id,
            "db_id": self.db_id,
            "question": self.question,
            "answer": self.answer,
            "question_type": self.question_type,
            "query_text": self.query_text,
        }


@dataclass
class FeVisQADataset:
    """The FeVisQA-style corpus."""

    examples: list[FeVisQAExample]

    def __len__(self) -> int:
        return len(self.examples)

    def by_type(self, question_type: int) -> list[FeVisQAExample]:
        """Examples of one question type."""
        return [example for example in self.examples if example.question_type == question_type]

    def database_ids(self) -> list[str]:
        """Distinct database ids covered by the dataset."""
        seen: dict[str, None] = {}
        for example in self.examples:
            seen.setdefault(example.db_id, None)
        return list(seen)

    def statistics(self) -> dict:
        """The quantities reported in the paper's Table III."""
        query_texts = {example.query_text for example in self.examples}
        return {
            "databases": len(self.database_ids()),
            "qa_pairs": len(self.examples),
            "dv_queries": len(query_texts),
            "type_1": len(self.by_type(1)),
            "type_2": len(self.by_type(2)),
            "type_3": len(self.by_type(3)),
        }


_TYPE1_QUESTIONS = [
    "What is the meaning of this VQL ?",
    "What is the meaning of this DV ?",
    "Explain what this DV query does .",
]

_TYPE2_QUESTIONS = [
    "Is this DV suitable for this given dataset ?",
    "Can this DV query be executed on the given database ?",
]


def generate_fevisqa(
    nvbench: NvBenchDataset | None = None,
    seed: int = 0,
    type1_probability: float = 0.6,
    negatives_per_query: float = 0.5,
) -> FeVisQADataset:
    """Generate the FeVisQA corpus from an nvBench-style corpus.

    One DV query yields roughly one Type-1 pair, one or two Type-2 pairs and
    three to four Type-3 pairs, matching the type imbalance of the original
    dataset (Table III of the paper).
    """
    if nvbench is None:
        nvbench = generate_nvbench(seed=seed)
    pool = nvbench.pool
    database_names = pool.names()
    examples: list[FeVisQAExample] = []
    for example in nvbench.examples:
        rng = seeded_rng(derive_seed(seed, "fevisqa", example.example_id))
        database = pool.get(example.db_id)
        schema_text = encode_schema(database.schema)
        try:
            result = execute_query(example.query, database)
            chart = build_chart(example.query, result=result)
        except Exception:
            continue
        table_text = encode_result_table(result, max_rows=12)
        common = {
            "db_id": example.db_id,
            "query_text": example.query_text,
            "schema_text": schema_text,
            "table_text": table_text,
        }

        # Type 1: semantics of the DV query.
        if rng.random() < type1_probability:
            examples.append(
                FeVisQAExample(
                    example_id=f"{example.example_id}:t1",
                    question=str(rng.choice(_TYPE1_QUESTIONS)),
                    answer=example.description,
                    question_type=1,
                    **common,
                )
            )

        # Type 2: suitability of the DV for a dataset (positive pair).
        examples.append(
            FeVisQAExample(
                example_id=f"{example.example_id}:t2pos",
                question=str(rng.choice(_TYPE2_QUESTIONS)),
                answer="Yes",
                question_type=2,
                **common,
            )
        )
        # Negative pair: same query against a foreign schema.
        if rng.random() < negatives_per_query and len(database_names) > 1:
            other_name = str(rng.choice([name for name in database_names if name != example.db_id]))
            other_schema = pool.get(other_name).schema
            answer = "Yes" if is_query_compatible(example.query, other_schema) else "No"
            examples.append(
                FeVisQAExample(
                    example_id=f"{example.example_id}:t2neg",
                    db_id=other_name,
                    question=str(rng.choice(_TYPE2_QUESTIONS)),
                    answer=answer,
                    question_type=2,
                    query_text=example.query_text,
                    schema_text=encode_schema(other_schema),
                    table_text="",
                )
            )

        # Type 3: structure and data retrieval questions over the chart.
        examples.extend(_type3_examples(example, chart, rng, common))
    return FeVisQADataset(examples)


def _type3_examples(
    example: NvBenchExample,
    chart,
    rng: np.random.Generator,
    common: dict,
) -> list[FeVisQAExample]:
    properties = chart_properties(chart)
    y_label = chart.y_label
    candidates: list[tuple[str, str]] = [
        ("How many parts are there in the chart ?", str(properties.num_parts)),
        ("Is any equal value of y-axis in the chart ?", "Yes" if properties.has_duplicate_values else "No"),
    ]
    if properties.max_value is not None:
        candidates.append(("What is the value of the largest part in the chart ?", _render_number(properties.max_value)))
        candidates.append(("What is the value of the smallest part in the chart ?", _render_number(properties.min_value)))
        candidates.append((f"What is the total number of {y_label} ?", _render_number(properties.total)))
        if properties.x_of_max is not None:
            candidates.append((f"Which {chart.x_label} has the largest {y_label} ?", str(properties.x_of_max)))
    count = min(len(candidates), 3 + int(rng.integers(0, 2)))
    order = rng.permutation(len(candidates))[:count]
    results = []
    for rank, candidate_index in enumerate(order):
        question, answer = candidates[int(candidate_index)]
        results.append(
            FeVisQAExample(
                example_id=f"{example.example_id}:t3:{rank}",
                question=question,
                answer=answer,
                question_type=3,
                **common,
            )
        )
    return results


def _render_number(value: float | int | None) -> str:
    if value is None:
        return "unknown"
    if float(value).is_integer():
        return str(int(value))
    return f"{float(value):.2f}"
