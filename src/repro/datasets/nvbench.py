"""Synthetic nvBench-style NL2VIS corpus.

Each example pairs a natural-language question with its ground-truth DV
query over one database of the synthetic pool.  The generator emits the same
structural variety as nvBench: group-by counts, group-by aggregates with the
five aggregate functions, raw and aggregated scatter plots, temporal binning,
WHERE filters and foreign-key joins — and records, per example, whether a
join is involved (the paper evaluates "w/o join" and "w/ join" separately)
and a Spider-style hardness label.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.database.database import Database
from repro.database.schema import ColumnType, DatabaseSchema
from repro.datasets import templates as T
from repro.datasets.spider import SyntheticDatabasePool, build_database_pool
from repro.utils.rng import derive_seed, seeded_rng
from repro.vql.ast import (
    AggregateExpr,
    BinClause,
    ChartType,
    ColumnRef,
    Condition,
    DVQuery,
    JoinClause,
    OrderByClause,
    SortDirection,
)
from repro.vql.standardize import standardize_dv_query
from repro.vql.validation import validate_dv_query


@dataclass
class NvBenchExample:
    """One NL question paired with its ground-truth DV query."""

    example_id: str
    db_id: str
    question: str
    query: DVQuery
    query_text: str
    description: str
    has_join: bool
    hardness: str
    pattern: str

    def to_dict(self) -> dict:
        """A JSON-friendly view of the example."""
        return {
            "example_id": self.example_id,
            "db_id": self.db_id,
            "question": self.question,
            "query_text": self.query_text,
            "description": self.description,
            "has_join": self.has_join,
            "hardness": self.hardness,
            "pattern": self.pattern,
        }


@dataclass
class NvBenchDataset:
    """The full corpus plus a handle on the database pool it was built over."""

    examples: list[NvBenchExample]
    pool: SyntheticDatabasePool

    def __len__(self) -> int:
        return len(self.examples)

    def database_ids(self) -> list[str]:
        """Distinct database ids covered by the dataset."""
        seen: dict[str, None] = {}
        for example in self.examples:
            seen.setdefault(example.db_id, None)
        return list(seen)

    def without_join(self) -> list[NvBenchExample]:
        """Examples whose queries stay on a single table."""
        return [example for example in self.examples if not example.has_join]

    def with_join(self) -> list[NvBenchExample]:
        """Examples whose queries join tables."""
        return [example for example in self.examples if example.has_join]

    def for_database(self, db_id: str) -> list[NvBenchExample]:
        """Examples targeting the database ``db_id``."""
        return [example for example in self.examples if example.db_id == db_id]

    def statistics(self) -> dict:
        """The quantities reported in the paper's Table I for one split."""
        return {
            "instances": len(self.examples),
            "instances_without_join": len(self.without_join()),
            "databases": len(self.database_ids()),
        }


def generate_nvbench(
    pool: SyntheticDatabasePool | None = None,
    examples_per_database: int = 40,
    join_fraction: float = 0.35,
    seed: int = 0,
) -> NvBenchDataset:
    """Generate the synthetic nvBench corpus.

    ``examples_per_database`` bounds the number of examples drawn per
    database; ``join_fraction`` is the approximate share of examples whose DV
    query contains a join (nvBench is roughly 40% join queries).
    """
    if pool is None:
        pool = build_database_pool(seed=seed)
    if not 0.0 <= join_fraction <= 1.0:
        raise DatasetError("join_fraction must be in [0, 1]")
    examples: list[NvBenchExample] = []
    for db_name, database in pool.items():
        rng = seeded_rng(derive_seed(seed, "nvbench", db_name))
        generator = _DatabaseExampleGenerator(database, rng)
        for index in range(examples_per_database):
            want_join = rng.random() < join_fraction
            example = generator.generate_example(f"{db_name}:{index}", want_join)
            if example is not None:
                examples.append(example)
    if not examples:
        raise DatasetError("nvBench generation produced no examples; check the database pool")
    return NvBenchDataset(examples=examples, pool=pool)


class _DatabaseExampleGenerator:
    """Generates examples for one database."""

    def __init__(self, database: Database, rng: np.random.Generator):
        self.database = database
        self.schema = database.schema
        self.rng = rng

    # -- public --------------------------------------------------------------
    def generate_example(self, example_id: str, want_join: bool) -> NvBenchExample | None:
        if want_join and self.schema.foreign_keys:
            builders = [self._build_join_example]
        else:
            builders = [
                self._build_group_count_example,
                self._build_group_agg_example,
                self._build_scatter_raw_example,
                self._build_scatter_agg_example,
                self._build_bin_example,
            ]
        builder = builders[int(self.rng.integers(0, len(builders)))]
        built = builder()
        if built is None:
            return None
        query, question, description, pattern = built
        query = standardize_dv_query(query, schema=self.schema)
        try:
            validate_dv_query(query, self.schema)
        except Exception:
            return None
        hardness = _hardness(query)
        return NvBenchExample(
            example_id=example_id,
            db_id=self.database.name,
            question=question,
            query=query,
            query_text=query.to_text(),
            description=description,
            has_join=query.has_join,
            hardness=hardness,
            pattern=pattern,
        )

    # -- column helpers ---------------------------------------------------------
    def _columns_of_type(self, table_name: str, ctype: ColumnType) -> list[str]:
        table = self.schema.table(table_name)
        return [column.name for column in table.columns if column.ctype == ctype]

    def _categorical_columns(self, table_name: str) -> list[str]:
        """Text columns suitable as a group-by axis (few distinct values)."""
        table = self.database.table(table_name)
        candidates = []
        for column in self._columns_of_type(table_name, ColumnType.TEXT):
            distinct = table.distinct_values(column)
            if 1 < len(distinct) <= max(12, len(table) // 2 + 2):
                candidates.append(column)
        return candidates

    def _numeric_columns(self, table_name: str) -> list[str]:
        table = self.schema.table(table_name)
        return [
            column.name
            for column in table.columns
            if column.ctype == ColumnType.NUMBER and column.name != table.primary_key
        ]

    def _time_columns(self, table_name: str) -> list[str]:
        return self._columns_of_type(table_name, ColumnType.TIME)

    def _pick(self, options: list):
        if not options:
            return None
        return options[int(self.rng.integers(0, len(options)))]

    def _pick_table(self) -> str:
        return self._pick(self.schema.table_names())

    # -- query pattern builders ------------------------------------------------------
    def _build_group_count_example(self):
        table = self._pick_table()
        x_column = self._pick(self._categorical_columns(table))
        if x_column is None:
            return None
        chart = self._pick(["bar", "pie", "bar", "line"])
        x_ref = ColumnRef(column=x_column, table=table)
        order_by, order_key = self._maybe_order(x_ref, AggregateExpr(column=x_ref, function="count"))
        query = DVQuery(
            chart_type=ChartType.from_text(chart),
            select=(AggregateExpr(column=x_ref), AggregateExpr(column=x_ref, function="count")),
            from_table=table,
            group_by=(x_ref,),
            order_by=order_by,
        )
        slots = {
            "agg_phrase": self._pick(T.AGGREGATE_PHRASES["count"]),
            "x_phrase": T.humanize(x_column),
            "table_phrase": T.humanize(table),
            "chart_phrase": self._pick(T.CHART_PHRASES[chart]),
            "order_phrase": self._order_phrase(order_key),
        }
        question = self._fill(self._pick(T.GROUP_COUNT_TEMPLATES), slots)
        description = self._describe("group_count", slots, order_key)
        return query, question, description, "group_count"

    def _build_group_agg_example(self):
        table = self._pick_table()
        x_column = self._pick(self._categorical_columns(table))
        y_column = self._pick(self._numeric_columns(table))
        if x_column is None or y_column is None:
            return None
        function = self._pick(["sum", "avg", "max", "min"])
        chart = self._pick(["bar", "bar", "line", "pie"])
        x_ref = ColumnRef(column=x_column, table=table)
        y_item = AggregateExpr(column=ColumnRef(column=y_column, table=table), function=function)
        order_by, order_key = self._maybe_order(x_ref, y_item)
        query = DVQuery(
            chart_type=ChartType.from_text(chart),
            select=(AggregateExpr(column=x_ref), y_item),
            from_table=table,
            group_by=(x_ref,),
            order_by=order_by,
        )
        slots = {
            "agg_phrase": self._pick(T.AGGREGATE_PHRASES[function]),
            "x_phrase": T.humanize(x_column),
            "y_phrase": T.humanize(y_column),
            "table_phrase": T.humanize(table),
            "chart_phrase": self._pick(T.CHART_PHRASES[chart]),
            "order_phrase": self._order_phrase(order_key),
        }
        question = self._fill(self._pick(T.GROUP_AGG_TEMPLATES), slots)
        description = self._describe("group_agg", slots, order_key)
        return query, question, description, "group_agg"

    def _build_scatter_raw_example(self):
        table = self._pick_table()
        numeric = self._numeric_columns(table)
        if len(numeric) < 2:
            return None
        x_column, y_column = (self._pick(numeric), self._pick(numeric))
        if x_column == y_column:
            return None
        query = DVQuery(
            chart_type=ChartType.SCATTER,
            select=(
                AggregateExpr(column=ColumnRef(column=x_column, table=table)),
                AggregateExpr(column=ColumnRef(column=y_column, table=table)),
            ),
            from_table=table,
        )
        slots = {
            "x_phrase": T.humanize(x_column),
            "y_phrase": T.humanize(y_column),
            "table_phrase": T.humanize(table),
            "chart_phrase": self._pick(T.CHART_PHRASES["scatter"]),
        }
        question = self._fill(self._pick(T.SCATTER_RAW_TEMPLATES), slots)
        description = self._describe("scatter_raw", slots, None)
        return query, question, description, "scatter_raw"

    def _build_scatter_agg_example(self):
        table = self._pick_table()
        x_column = self._pick(self._categorical_columns(table))
        y_column = self._pick(self._numeric_columns(table))
        if x_column is None or y_column is None:
            return None
        first, second = self._pick([("avg", "min"), ("avg", "max"), ("max", "min"), ("sum", "avg")])
        y_ref = ColumnRef(column=y_column, table=table)
        query = DVQuery(
            chart_type=ChartType.SCATTER,
            select=(AggregateExpr(column=y_ref, function=first), AggregateExpr(column=y_ref, function=second)),
            from_table=table,
            group_by=(ColumnRef(column=x_column, table=table),),
        )
        slots = {
            "agg_phrase": self._pick(T.AGGREGATE_PHRASES[first]),
            "agg2_phrase": self._pick(T.AGGREGATE_PHRASES[second]),
            "x_phrase": T.humanize(x_column),
            "y_phrase": T.humanize(y_column),
            "table_phrase": T.humanize(table),
            "chart_phrase": self._pick(T.CHART_PHRASES["scatter"]),
        }
        question = self._fill(self._pick(T.SCATTER_AGG_TEMPLATES), slots)
        description = self._describe("scatter_agg", slots, None)
        return query, question, description, "scatter_agg"

    def _build_bin_example(self):
        table = self._pick_table()
        time_column = self._pick(self._time_columns(table))
        if time_column is None:
            return None
        unit = self._pick(["year", "month", "weekday"])
        chart = self._pick(["bar", "line"])
        time_ref = ColumnRef(column=time_column, table=table)
        count_item = AggregateExpr(column=time_ref, function="count")
        order_by, order_key = self._maybe_order(time_ref, count_item)
        query = DVQuery(
            chart_type=ChartType.from_text(chart),
            select=(AggregateExpr(column=time_ref), count_item),
            from_table=table,
            group_by=(time_ref,),
            order_by=order_by,
            bin=BinClause(column=time_ref, unit=unit),
        )
        slots = {
            "x_phrase": T.humanize(time_column),
            "table_phrase": T.humanize(table),
            "chart_phrase": self._pick(T.CHART_PHRASES[chart]),
            "unit": unit,
            "order_phrase": self._order_phrase(order_key),
        }
        question = self._fill(self._pick(T.BIN_TEMPLATES), slots)
        description = self._describe("bin", slots, order_key)
        return query, question, description, "bin"

    def _build_join_example(self):
        foreign_key = self._pick(list(self.schema.foreign_keys))
        if foreign_key is None:
            return None
        child, parent = foreign_key.source_table, foreign_key.target_table
        x_column = self._pick(self._categorical_columns(parent) or self._categorical_columns(child))
        if x_column is None:
            return None
        x_table = parent if x_column in self.schema.table(parent).column_names() else child
        numeric_table = child if x_table == parent else parent
        numeric_options = self._numeric_columns(numeric_table)
        if numeric_options and self.rng.random() < 0.6:
            y_column = self._pick(numeric_options)
            function = self._pick(["sum", "avg", "max", "min"])
            y_item = AggregateExpr(column=ColumnRef(column=y_column, table=numeric_table), function=function)
        else:
            function = "count"
            y_column = x_column
            y_item = AggregateExpr(column=ColumnRef(column=x_column, table=x_table), function="count")
        chart = self._pick(["bar", "bar", "pie", "line"])
        x_ref = ColumnRef(column=x_column, table=x_table)
        join = JoinClause(
            table=parent,
            left=ColumnRef(column=foreign_key.source_column, table=child),
            right=ColumnRef(column=foreign_key.target_column, table=parent),
        )
        where, filter_slots = self._maybe_filter(child if x_table == parent else parent)
        order_by, order_key = self._maybe_order(x_ref, y_item)
        query = DVQuery(
            chart_type=ChartType.from_text(chart),
            select=(AggregateExpr(column=x_ref), y_item),
            from_table=child,
            joins=(join,),
            where=where,
            group_by=(x_ref,),
            order_by=order_by,
        )
        slots = {
            "agg_phrase": self._pick(T.AGGREGATE_PHRASES[function]),
            "x_phrase": T.humanize(x_column),
            "y_phrase": T.humanize(y_column),
            "table_phrase": T.humanize(child),
            "join_table_phrase": T.humanize(parent),
            "chart_phrase": self._pick(T.CHART_PHRASES[chart]),
            "order_phrase": self._order_phrase(order_key),
            "filter_phrase": filter_slots.get("phrase", ""),
        }
        question = self._fill(self._pick(T.JOIN_TEMPLATES), slots)
        description = self._describe("join", slots, order_key, filter_slots.get("description", ""))
        return query, question, description, "join"

    # -- shared clause helpers --------------------------------------------------------
    def _maybe_order(self, x_ref: ColumnRef, y_item: AggregateExpr):
        roll = self.rng.random()
        if roll < 0.4:
            return None, None
        axis = "x" if self.rng.random() < 0.5 else "y"
        direction = SortDirection.DESC if self.rng.random() < 0.5 else SortDirection.ASC
        expression = AggregateExpr(column=x_ref) if axis == "x" else y_item
        return OrderByClause(expression=expression, direction=direction), (axis, direction.value)

    def _order_phrase(self, order_key) -> str:
        if order_key is None:
            return ""
        return self._pick(T.ORDER_PHRASES[order_key])

    def _maybe_filter(self, table_name: str):
        if self.rng.random() < 0.5:
            return (), {}
        candidates = self._categorical_columns(table_name)
        column = self._pick(candidates)
        if column is None:
            return (), {}
        values = self.database.table(table_name).distinct_values(column)
        value = self._pick(values)
        if value is None:
            return (), {}
        condition = Condition(left=ColumnRef(column=column, table=table_name), operator="=", value=str(value))
        phrase = self._pick(T.FILTER_PHRASES).format(column_phrase=T.humanize(column), value=value)
        description = f" where {T.humanize(column)} is {value}"
        return (condition,), {"phrase": phrase, "description": description}

    # -- text assembly ------------------------------------------------------------------
    def _fill(self, template: str, slots: dict) -> str:
        slots = dict(slots)
        chart_phrase = slots.get("chart_phrase", "a chart")
        slots.setdefault("chart_phrase_cap", chart_phrase[:1].upper() + chart_phrase[1:])
        slots.setdefault("order_phrase", "")
        slots.setdefault("filter_phrase", "")
        return " ".join(template.format(**slots).split())

    def _describe(self, pattern: str, slots: dict, order_key, filter_description: str = "") -> str:
        slots = dict(slots)
        chart_phrase = slots.get("chart_phrase", "a chart")
        slots.setdefault("chart_phrase_cap", chart_phrase[:1].upper() + chart_phrase[1:])
        slots["order_description"] = T.ORDER_DESCRIPTIONS.get(order_key, "") if order_key else ""
        slots["filter_description"] = filter_description
        template = T.DESCRIPTION_TEMPLATES[pattern]
        return " ".join(template.format(**slots).split())


def _hardness(query: DVQuery) -> str:
    """A Spider-style hardness label derived from the query structure."""
    score = 0
    score += len(query.joins) * 2
    score += len(query.where)
    score += 1 if query.order_by is not None else 0
    score += 1 if query.bin is not None else 0
    score += sum(1 for item in query.select if item.is_aggregate and item.function != "count")
    if score <= 1:
        return "easy"
    if score == 2:
        return "medium"
    if score == 3:
        return "hard"
    return "extra hard"
