"""Synthetic WikiTableText-style corpus.

WikiTableText pairs small Wikipedia infobox-like tables (at least three rows
and two columns) with one-sentence descriptions of a table region.  The
synthetic counterpart generates per-subject attribute tables and a sentence
describing one row, mirroring the paper's Table XI case study ("Sallim was
the publisher of so ji-sub's journey in 2010.").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import vocabularies as vocab
from repro.encoding.table_encoder import encode_table
from repro.utils.rng import derive_seed, seeded_rng


@dataclass
class WikiTableTextExample:
    """One wiki-style table plus a one-sentence description of a row."""

    example_id: str
    columns: list[str]
    rows: list[list[object]]
    description: str

    @property
    def num_cells(self) -> int:
        """Number of table cells in the example."""
        return len(self.rows) * len(self.columns)

    def linearized(self, max_rows: int | None = None) -> str:
        """The example's table linearized to the model's text format."""
        return encode_table(self.columns, self.rows, max_rows=max_rows)


@dataclass
class WikiTableTextDataset:
    """The WikiTableText-style corpus."""

    examples: list[WikiTableTextExample]

    def __len__(self) -> int:
        return len(self.examples)

    def cell_statistics(self) -> dict:
        """Distribution statistics over per-example cell counts."""
        cells = [example.num_cells for example in self.examples]
        return {
            "instances": len(cells),
            "min_cells": min(cells) if cells else 0,
            "max_cells": max(cells) if cells else 0,
            "at_most_150": sum(1 for count in cells if count <= 150),
            "more_than_150": sum(1 for count in cells if count > 150),
        }


_BOOK_COLUMNS = ["subjtitle", "subjsubtitle", "year", "english title", "publisher", "notes"]

_CAREER_COLUMNS = ["subject", "field", "year", "achievement", "institution"]

_FIELDS = ["physics", "mathematics", "computer science", "chemistry", "biology"]

_ACHIEVEMENTS = ["major prize", "landmark paper", "honorary degree", "patent grant", "keynote lecture"]

_INSTITUTIONS = ["cambridge", "princeton", "mit", "eth zurich", "sorbonne", "tsinghua"]


def generate_wikitabletext(num_examples: int = 300, seed: int = 0) -> WikiTableTextDataset:
    """Generate ``num_examples`` wiki-style table/description pairs."""
    examples: list[WikiTableTextExample] = []
    for index in range(num_examples):
        rng = seeded_rng(derive_seed(seed, "wikitabletext", index))
        if rng.random() < 0.5:
            examples.append(_book_example(index, rng))
        else:
            examples.append(_career_example(index, rng))
    return WikiTableTextDataset(examples)


def _book_example(index: int, rng: np.random.Generator) -> WikiTableTextExample:
    subject = str(rng.choice(vocab.WIKI_SUBJECTS))
    num_rows = int(rng.integers(3, 7))
    rows = []
    for row_index in range(num_rows):
        year = int(rng.integers(1995, 2023))
        publisher = str(rng.choice(vocab.PUBLISHERS))
        note = str(rng.choice(vocab.BOOK_NOTES))
        title = f"{subject}'s {'journey' if row_index == 0 else f'volume {row_index + 1}'}"
        rows.append([subject, "books", year, title, publisher, note])
    target_row = rows[int(rng.integers(0, num_rows))]
    description = f"{target_row[4].capitalize()} was the publisher of {target_row[3]} in {target_row[2]} ."
    return WikiTableTextExample(
        example_id=f"wikitabletext:{index}",
        columns=list(_BOOK_COLUMNS),
        rows=rows,
        description=description,
    )


def _career_example(index: int, rng: np.random.Generator) -> WikiTableTextExample:
    subject = str(rng.choice(vocab.WIKI_SUBJECTS))
    num_rows = int(rng.integers(3, 8))
    rows = []
    for _ in range(num_rows):
        rows.append(
            [
                subject,
                str(rng.choice(_FIELDS)),
                int(rng.integers(1950, 2023)),
                str(rng.choice(_ACHIEVEMENTS)),
                str(rng.choice(_INSTITUTIONS)),
            ]
        )
    target_row = rows[int(rng.integers(0, num_rows))]
    description = (
        f"{subject} received a {target_row[3]} in {target_row[1]} at {target_row[4]} in {target_row[2]} ."
    )
    return WikiTableTextExample(
        example_id=f"wikitabletext:{index}",
        columns=list(_CAREER_COLUMNS),
        rows=rows,
        description=description,
    )
