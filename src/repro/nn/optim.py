"""Optimizers, gradient clipping and learning-rate schedules."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ModelConfigError
from repro.nn.layers import Parameter


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping, which training loops log to detect
    divergence.
    """
    if max_norm <= 0:
        raise ModelConfigError("max_norm must be positive")
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float((grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm


class LRSchedule:
    """Base class for learning-rate schedules keyed by optimizer step."""

    def learning_rate(self, step: int) -> float:  # pragma: no cover - abstract
        """The learning rate at ``step`` (subclasses must override)."""
        raise NotImplementedError


class ConstantSchedule(LRSchedule):
    """A constant learning rate."""

    def __init__(self, learning_rate: float):
        self._learning_rate = learning_rate

    def learning_rate(self, step: int) -> float:
        """The fixed learning rate, independent of ``step``."""
        return self._learning_rate


class LinearWarmupSchedule(LRSchedule):
    """Linear warm-up to a peak followed by linear decay to zero.

    Matches the paper's training recipe of a linear warm-up schedule with a
    configurable warm-up ratio over the total number of steps.
    """

    def __init__(self, peak_learning_rate: float, total_steps: int, warmup_ratio: float = 0.1):
        if total_steps <= 0:
            raise ModelConfigError("total_steps must be positive")
        if not 0.0 <= warmup_ratio <= 1.0:
            raise ModelConfigError("warmup_ratio must be in [0, 1]")
        self.peak_learning_rate = peak_learning_rate
        self.total_steps = total_steps
        self.warmup_steps = max(1, int(round(total_steps * warmup_ratio)))

    def learning_rate(self, step: int) -> float:
        """Linear warm-up to the peak, then linear decay toward zero."""
        step = max(step, 0)
        if step < self.warmup_steps:
            return self.peak_learning_rate * (step + 1) / self.warmup_steps
        remaining = max(self.total_steps - step, 0)
        decay_span = max(self.total_steps - self.warmup_steps, 1)
        return self.peak_learning_rate * remaining / decay_span


class Optimizer:
    """Base optimizer: owns the parameter list and the step counter."""

    def __init__(self, parameters: Sequence[Parameter], schedule: LRSchedule):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ModelConfigError("optimizer received no parameters")
        self.schedule = schedule
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear the gradients of every managed parameter."""
        for parameter in self.parameters:
            parameter.zero_grad()

    @property
    def current_learning_rate(self) -> float:
        """The schedule's learning rate at the current step."""
        return self.schedule.learning_rate(self.step_count)

    def step(self) -> None:  # pragma: no cover - abstract
        """Apply one update to the managed parameters (subclasses must override)."""
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters, ConstantSchedule(learning_rate))
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """One (momentum-)SGD update over the managed parameters."""
        lr = self.current_learning_rate
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += parameter.grad
                parameter.data -= lr * velocity
            else:
                parameter.data -= lr * parameter.grad
        self.step_count += 1


class Adam(Optimizer):
    """Adam with decoupled weight decay (AdamW), the optimizer family of the paper."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float | LRSchedule = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        schedule = learning_rate if isinstance(learning_rate, LRSchedule) else ConstantSchedule(learning_rate)
        super().__init__(parameters, schedule)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """One AdamW update: bias-corrected moments, decoupled weight decay."""
        lr = self.current_learning_rate
        beta1, beta2 = self.betas
        self.step_count += 1
        bias_correction1 = 1.0 - beta1**self.step_count
        bias_correction2 = 1.0 - beta2**self.step_count
        for parameter, first, second in zip(self.parameters, self._first_moment, self._second_moment):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            first *= beta1
            first += (1.0 - beta1) * grad
            second *= beta2
            second += (1.0 - beta2) * grad**2
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            update = corrected_first / (np.sqrt(corrected_second) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * parameter.data
            parameter.data -= lr * update
