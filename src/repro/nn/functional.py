"""Functional building blocks: activations, softmax and losses."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def relu(x: Tensor) -> Tensor:
    """Elementwise ReLU (delegates to :meth:`Tensor.relu`)."""
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """Tanh-approximated GELU (delegates to :meth:`Tensor.gelu`)."""
    return x.gelu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: int | None = None,
    label_smoothing: float = 0.0,
) -> Tensor:
    """Token-level cross-entropy averaged over non-ignored positions.

    ``logits`` has shape ``(N, V)`` and ``targets`` shape ``(N,)``.  Positions
    whose target equals ``ignore_index`` contribute neither to the loss nor to
    the gradient, matching the padding convention of the training loops.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"cross_entropy expects 2-D logits, got shape {logits.shape}")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError(f"targets shape {targets.shape} incompatible with logits {logits.shape}")
    if not 0.0 <= label_smoothing < 1.0:
        raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")

    if ignore_index is not None:
        keep = targets != ignore_index
    else:
        keep = np.ones_like(targets, dtype=bool)
    count = int(keep.sum())
    if count == 0:
        # No supervised positions: return a zero that still participates in the graph.
        return (logits * 0.0).sum()

    safe_targets = np.where(keep, targets, 0)
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(targets.shape[0]), safe_targets]
    keep_f = keep.astype(np.float64)
    nll = -(picked * Tensor(keep_f)).sum() * (1.0 / count)
    if label_smoothing == 0.0:
        return nll
    smooth = -(logp.mean(axis=-1) * Tensor(keep_f)).sum() * (1.0 / count)
    return nll * (1.0 - label_smoothing) + smooth * label_smoothing


def sequence_cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    pad_id: int,
    label_smoothing: float = 0.0,
) -> Tensor:
    """Cross-entropy for ``(B, T, V)`` logits against ``(B, T)`` targets, ignoring padding."""
    batch, length, vocab = logits.shape
    flat_logits = logits.reshape(batch * length, vocab)
    flat_targets = np.asarray(targets, dtype=np.int64).reshape(batch * length)
    return cross_entropy(flat_logits, flat_targets, ignore_index=pad_id, label_smoothing=label_smoothing)


def attention_mask_bias(mask: np.ndarray, negative: float = -1e9) -> np.ndarray:
    """Convert a boolean keep-mask into an additive attention bias array."""
    mask = np.asarray(mask, dtype=bool)
    return np.where(mask, 0.0, negative)


def causal_mask(length: int, key_length: int | None = None) -> np.ndarray:
    """Boolean causal keep-mask of shape ``(length, key_length)``.

    With the default ``key_length=length`` this is the usual lower-triangular
    mask.  When ``key_length > length`` the queries are taken to be the *last*
    ``length`` positions of the key sequence — the incremental-decoding case,
    where a step's new tokens attend to the whole cached prefix plus
    themselves: ``mask[i, j] = j <= (key_length - length) + i``.
    """
    key_length = length if key_length is None else key_length
    if key_length < length:
        raise ValueError(f"key_length={key_length} must be >= query length={length}")
    offset = key_length - length
    query_position = np.arange(length)[:, None]
    key_position = np.arange(key_length)[None, :]
    return key_position <= query_position + offset
