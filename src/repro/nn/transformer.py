"""A T5-style encoder--decoder transformer language model.

The architecture follows the original T5 design: pre-RMSNorm residual blocks,
relative position biases shared across layers, tied input/output embeddings
and a decoder fed with the target sequence shifted right by one position.
Model sizes are configurable through :class:`TransformerConfig`; the defaults
are tiny so the reproduction trains in CPU-seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelConfigError
from repro.nn import functional as F
from repro.nn.attention import MultiHeadAttention, RelativePositionBias
from repro.nn.layers import Dropout, Embedding, FeedForward, Module, RMSNorm
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import derive_seed, seeded_rng


@dataclass
class TransformerConfig:
    """Hyper-parameters of the encoder--decoder transformer."""

    vocab_size: int
    d_model: int = 64
    num_heads: int = 4
    d_ff: int = 128
    num_encoder_layers: int = 2
    num_decoder_layers: int = 2
    dropout: float = 0.0
    activation: str = "relu"
    relative_attention_num_buckets: int = 16
    relative_attention_max_distance: int = 64
    max_decode_length: int = 96
    pad_id: int = 0
    eos_id: int = 1
    bos_id: int = 3
    seed: int = 0

    def validate(self) -> None:
        if self.vocab_size <= 0:
            raise ModelConfigError("vocab_size must be positive")
        if self.d_model % self.num_heads != 0:
            raise ModelConfigError("d_model must be divisible by num_heads")
        if self.num_encoder_layers < 1 or self.num_decoder_layers < 1:
            raise ModelConfigError("at least one encoder and one decoder layer are required")
        if not 0.0 <= self.dropout < 1.0:
            raise ModelConfigError("dropout must be in [0, 1)")


class EncoderLayer(Module):
    """Self-attention + feed-forward block with pre-norm residuals."""

    def __init__(self, config: TransformerConfig, seed: int):
        super().__init__()
        rng = seeded_rng(seed)
        self.self_attention = MultiHeadAttention(config.d_model, config.num_heads, config.dropout, seed=rng)
        self.norm_attention = RMSNorm(config.d_model)
        self.feed_forward = FeedForward(config.d_model, config.d_ff, config.activation, config.dropout, seed=rng)
        self.norm_feed_forward = RMSNorm(config.d_model)
        self.dropout = Dropout(config.dropout, seed=rng)

    def forward(self, hidden: Tensor, mask: np.ndarray | None, position_bias: Tensor | None) -> Tensor:
        normed = self.norm_attention(hidden)
        attended = self.self_attention(normed, normed, normed, mask=mask, position_bias=position_bias)
        hidden = hidden + self.dropout(attended)
        normed = self.norm_feed_forward(hidden)
        hidden = hidden + self.dropout(self.feed_forward(normed))
        return hidden


class DecoderLayer(Module):
    """Causal self-attention + cross-attention + feed-forward block."""

    def __init__(self, config: TransformerConfig, seed: int):
        super().__init__()
        rng = seeded_rng(seed)
        self.self_attention = MultiHeadAttention(config.d_model, config.num_heads, config.dropout, seed=rng)
        self.norm_self = RMSNorm(config.d_model)
        self.cross_attention = MultiHeadAttention(config.d_model, config.num_heads, config.dropout, seed=rng)
        self.norm_cross = RMSNorm(config.d_model)
        self.feed_forward = FeedForward(config.d_model, config.d_ff, config.activation, config.dropout, seed=rng)
        self.norm_feed_forward = RMSNorm(config.d_model)
        self.dropout = Dropout(config.dropout, seed=rng)

    def forward(
        self,
        hidden: Tensor,
        encoder_hidden: Tensor,
        self_mask: np.ndarray | None,
        cross_mask: np.ndarray | None,
        position_bias: Tensor | None,
    ) -> Tensor:
        normed = self.norm_self(hidden)
        attended = self.self_attention(normed, normed, normed, mask=self_mask, position_bias=position_bias)
        hidden = hidden + self.dropout(attended)
        normed = self.norm_cross(hidden)
        cross = self.cross_attention(normed, encoder_hidden, encoder_hidden, mask=cross_mask)
        hidden = hidden + self.dropout(cross)
        normed = self.norm_feed_forward(hidden)
        hidden = hidden + self.dropout(self.feed_forward(normed))
        return hidden


class TransformerEncoder(Module):
    """Stack of encoder layers with a shared relative position bias."""

    def __init__(self, config: TransformerConfig, embedding: Embedding):
        super().__init__()
        self.config = config
        self.embedding = embedding
        self.layers = [EncoderLayer(config, derive_seed(config.seed, "encoder", i)) for i in range(config.num_encoder_layers)]
        self.position_bias = RelativePositionBias(
            config.num_heads,
            config.relative_attention_num_buckets,
            config.relative_attention_max_distance,
            bidirectional=True,
            seed=derive_seed(config.seed, "encoder_bias"),
        )
        self.final_norm = RMSNorm(config.d_model)
        self.dropout = Dropout(config.dropout, seed=derive_seed(config.seed, "encoder_dropout"))

    def forward(self, input_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> Tensor:
        input_ids = np.asarray(input_ids, dtype=np.int64)
        if attention_mask is None:
            attention_mask = input_ids != self.config.pad_id
        hidden = self.dropout(self.embedding(input_ids))
        length = input_ids.shape[1]
        bias = self.position_bias(length, length)
        keep = np.asarray(attention_mask, dtype=bool)[:, None, :]  # (B, 1, T)
        for layer in self.layers:
            hidden = layer(hidden, keep, bias)
        return self.final_norm(hidden)


class TransformerDecoder(Module):
    """Stack of decoder layers with causal masking and cross attention."""

    def __init__(self, config: TransformerConfig, embedding: Embedding):
        super().__init__()
        self.config = config
        self.embedding = embedding
        self.layers = [DecoderLayer(config, derive_seed(config.seed, "decoder", i)) for i in range(config.num_decoder_layers)]
        self.position_bias = RelativePositionBias(
            config.num_heads,
            config.relative_attention_num_buckets,
            config.relative_attention_max_distance,
            bidirectional=False,
            seed=derive_seed(config.seed, "decoder_bias"),
        )
        self.final_norm = RMSNorm(config.d_model)
        self.dropout = Dropout(config.dropout, seed=derive_seed(config.seed, "decoder_dropout"))

    def forward(
        self,
        decoder_input_ids: np.ndarray,
        encoder_hidden: Tensor,
        encoder_attention_mask: np.ndarray | None = None,
        decoder_attention_mask: np.ndarray | None = None,
    ) -> Tensor:
        decoder_input_ids = np.asarray(decoder_input_ids, dtype=np.int64)
        batch, length = decoder_input_ids.shape
        hidden = self.dropout(self.embedding(decoder_input_ids))
        bias = self.position_bias(length, length)

        causal = F.causal_mask(length)[None, :, :]  # (1, T, T)
        if decoder_attention_mask is not None:
            pad_keep = np.asarray(decoder_attention_mask, dtype=bool)[:, None, :]
            self_mask = causal & pad_keep
        else:
            self_mask = np.broadcast_to(causal, (batch, length, length))

        if encoder_attention_mask is not None:
            cross_mask = np.asarray(encoder_attention_mask, dtype=bool)[:, None, :]
        else:
            cross_mask = None

        for layer in self.layers:
            hidden = layer(hidden, encoder_hidden, self_mask, cross_mask, bias)
        return self.final_norm(hidden)


class T5Model(Module):
    """The full encoder--decoder LM with tied embeddings and an LM head."""

    def __init__(self, config: TransformerConfig):
        super().__init__()
        config.validate()
        self.config = config
        self.shared_embedding = Embedding(config.vocab_size, config.d_model, seed=derive_seed(config.seed, "embedding"))
        self.encoder = TransformerEncoder(config, self.shared_embedding)
        self.decoder = TransformerDecoder(config, self.shared_embedding)

    # -- training ------------------------------------------------------------
    def shift_right(self, labels: np.ndarray) -> np.ndarray:
        """Build decoder inputs by prepending BOS and dropping the final token."""
        labels = np.asarray(labels, dtype=np.int64)
        shifted = np.full_like(labels, self.config.pad_id)
        shifted[:, 0] = self.config.bos_id
        shifted[:, 1:] = labels[:, :-1]
        # Padding in the labels must stay padding in the inputs.
        shifted = np.where(shifted == self.config.pad_id, self.config.pad_id, shifted)
        return shifted

    def forward(
        self,
        input_ids: np.ndarray,
        labels: np.ndarray | None = None,
        decoder_input_ids: np.ndarray | None = None,
        attention_mask: np.ndarray | None = None,
    ) -> dict:
        """Run the model; returns a dict with ``logits`` and optionally ``loss``."""
        input_ids = np.asarray(input_ids, dtype=np.int64)
        if attention_mask is None:
            attention_mask = input_ids != self.config.pad_id
        if decoder_input_ids is None:
            if labels is None:
                raise ModelConfigError("either labels or decoder_input_ids must be provided")
            decoder_input_ids = self.shift_right(labels)
        decoder_mask = decoder_input_ids != self.config.pad_id
        decoder_mask[:, 0] = True  # BOS is always attended

        encoder_hidden = self.encoder(input_ids, attention_mask)
        decoder_hidden = self.decoder(decoder_input_ids, encoder_hidden, attention_mask, decoder_mask)
        logits = self.lm_logits(decoder_hidden)
        output = {"logits": logits, "encoder_hidden": encoder_hidden}
        if labels is not None:
            output["loss"] = F.sequence_cross_entropy(logits, labels, pad_id=self.config.pad_id)
        return output

    def lm_logits(self, decoder_hidden: Tensor) -> Tensor:
        """Project decoder states onto the vocabulary with the tied embedding."""
        scale = self.config.d_model**-0.5
        return (decoder_hidden * scale) @ self.shared_embedding.weight.transpose()

    # -- generation -------------------------------------------------------------
    def generate(
        self,
        input_ids: np.ndarray,
        max_length: int | None = None,
        num_beams: int = 1,
        length_penalty: float = 1.0,
    ) -> np.ndarray:
        """Generate output token ids (greedy for ``num_beams == 1``, else beam search)."""
        input_ids = np.atleast_2d(np.asarray(input_ids, dtype=np.int64))
        max_length = max_length or self.config.max_decode_length
        if num_beams <= 1:
            return self._greedy_generate(input_ids, max_length)
        return np.stack([self._beam_generate(row[None, :], max_length, num_beams, length_penalty) for row in input_ids])

    def _greedy_generate(self, input_ids: np.ndarray, max_length: int) -> np.ndarray:
        batch = input_ids.shape[0]
        attention_mask = input_ids != self.config.pad_id
        with no_grad():
            encoder_hidden = self.encoder(input_ids, attention_mask)
            sequences = np.full((batch, 1), self.config.bos_id, dtype=np.int64)
            finished = np.zeros(batch, dtype=bool)
            for _ in range(max_length):
                decoder_hidden = self.decoder(sequences, encoder_hidden, attention_mask)
                logits = self.lm_logits(decoder_hidden).numpy()[:, -1, :]
                next_tokens = logits.argmax(axis=-1)
                next_tokens = np.where(finished, self.config.pad_id, next_tokens)
                sequences = np.concatenate([sequences, next_tokens[:, None]], axis=1)
                finished |= next_tokens == self.config.eos_id
                if finished.all():
                    break
        return sequences[:, 1:]

    def _beam_generate(self, input_ids: np.ndarray, max_length: int, num_beams: int, length_penalty: float) -> np.ndarray:
        attention_mask = input_ids != self.config.pad_id
        with no_grad():
            encoder_hidden = self.encoder(input_ids, attention_mask)
            beams: list[tuple[list[int], float, bool]] = [([self.config.bos_id], 0.0, False)]
            for _ in range(max_length):
                candidates: list[tuple[list[int], float, bool]] = []
                for tokens, score, done in beams:
                    if done:
                        candidates.append((tokens, score, True))
                        continue
                    sequence = np.asarray(tokens, dtype=np.int64)[None, :]
                    decoder_hidden = self.decoder(sequence, encoder_hidden, attention_mask)
                    logits = self.lm_logits(decoder_hidden).numpy()[0, -1, :]
                    log_probs = logits - logits.max()
                    log_probs = log_probs - np.log(np.exp(log_probs).sum())
                    top = np.argsort(log_probs)[::-1][:num_beams]
                    for token in top:
                        candidates.append(
                            (tokens + [int(token)], score + float(log_probs[token]), int(token) == self.config.eos_id)
                        )
                candidates.sort(key=lambda item: item[1] / (max(len(item[0]) - 1, 1) ** length_penalty), reverse=True)
                beams = candidates[:num_beams]
                if all(done for _, _, done in beams):
                    break
        best_tokens = beams[0][0][1:][:max_length]
        padded = np.full(max_length, self.config.pad_id, dtype=np.int64)
        padded[: len(best_tokens)] = best_tokens
        return padded
