"""A T5-style encoder--decoder transformer language model.

The architecture follows the original T5 design: pre-RMSNorm residual blocks,
relative position biases shared across layers, tied input/output embeddings
and a decoder fed with the target sequence shifted right by one position.
Model sizes are configurable through :class:`TransformerConfig`; the defaults
are tiny so the reproduction trains in CPU-seconds.

Generation decodes incrementally with per-layer K/V caches
(:mod:`repro.nn.decode_cache`) and a fully batched beam search; the naive
loops that re-decode the whole prefix every step are retained behind
``use_cache=False`` as the reference implementation the decode-equivalence
test suite checks against.

Inference precision is a :meth:`T5Model.generate` knob: ``dtype="float32"``
runs the whole decode (encoder pass included) under
:func:`repro.nn.tensor.autocast`, and :meth:`T5Model.quantize_int8` converts
every projection weight and the shared embedding to symmetric int8 storage.
Training always stays float64 — see ``docs/numerics.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelConfigError
from repro.nn import functional as F
from repro.nn.attention import MultiHeadAttention, RelativePositionBias
from repro.nn.decode_cache import DecodeCache, LayerKVCache, PagedKVArena, PagedSequence
from repro.nn.layers import Dropout, Embedding, FeedForward, Module, RMSNorm, cast_cached
from repro.nn.tensor import Tensor, autocast, compute_dtype, no_grad
from repro.utils.rng import derive_seed, seeded_rng


@dataclass
class TransformerConfig:
    """Hyper-parameters of the encoder--decoder transformer."""

    vocab_size: int
    d_model: int = 64
    num_heads: int = 4
    d_ff: int = 128
    num_encoder_layers: int = 2
    num_decoder_layers: int = 2
    dropout: float = 0.0
    activation: str = "relu"
    relative_attention_num_buckets: int = 16
    relative_attention_max_distance: int = 64
    max_decode_length: int = 96
    pad_id: int = 0
    eos_id: int = 1
    bos_id: int = 3
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`ModelConfigError` on inconsistent hyper-parameters."""
        if self.vocab_size <= 0:
            raise ModelConfigError("vocab_size must be positive")
        if self.d_model % self.num_heads != 0:
            raise ModelConfigError("d_model must be divisible by num_heads")
        if self.num_encoder_layers < 1 or self.num_decoder_layers < 1:
            raise ModelConfigError("at least one encoder and one decoder layer are required")
        if not 0.0 <= self.dropout < 1.0:
            raise ModelConfigError("dropout must be in [0, 1)")


class EncoderLayer(Module):
    """Self-attention + feed-forward block with pre-norm residuals."""

    def __init__(self, config: TransformerConfig, seed: int):
        super().__init__()
        rng = seeded_rng(seed)
        self.self_attention = MultiHeadAttention(config.d_model, config.num_heads, config.dropout, seed=rng)
        self.norm_attention = RMSNorm(config.d_model)
        self.feed_forward = FeedForward(config.d_model, config.d_ff, config.activation, config.dropout, seed=rng)
        self.norm_feed_forward = RMSNorm(config.d_model)
        self.dropout = Dropout(config.dropout, seed=rng)

    def forward(self, hidden: Tensor, mask: np.ndarray | None, position_bias: Tensor | None) -> Tensor:
        """Self-attention then feed-forward, each behind a pre-norm residual."""
        normed = self.norm_attention(hidden)
        attended = self.self_attention(normed, normed, normed, mask=mask, position_bias=position_bias)
        hidden = hidden + self.dropout(attended)
        normed = self.norm_feed_forward(hidden)
        hidden = hidden + self.dropout(self.feed_forward(normed))
        return hidden


class DecoderLayer(Module):
    """Causal self-attention + cross-attention + feed-forward block."""

    def __init__(self, config: TransformerConfig, seed: int):
        super().__init__()
        rng = seeded_rng(seed)
        self.self_attention = MultiHeadAttention(config.d_model, config.num_heads, config.dropout, seed=rng)
        self.norm_self = RMSNorm(config.d_model)
        self.cross_attention = MultiHeadAttention(config.d_model, config.num_heads, config.dropout, seed=rng)
        self.norm_cross = RMSNorm(config.d_model)
        self.feed_forward = FeedForward(config.d_model, config.d_ff, config.activation, config.dropout, seed=rng)
        self.norm_feed_forward = RMSNorm(config.d_model)
        self.dropout = Dropout(config.dropout, seed=rng)

    def forward(
        self,
        hidden: Tensor,
        encoder_hidden: Tensor | None,
        self_mask: np.ndarray | None,
        cross_mask: np.ndarray | None,
        position_bias: Tensor | None,
        layer_cache: LayerKVCache | None = None,
    ) -> Tensor:
        """Causal self-attention, cross-attention and feed-forward, pre-norm residuals throughout."""
        self_cache = layer_cache.self_attention if layer_cache is not None else None
        cross_cache = layer_cache.cross_attention if layer_cache is not None else None
        normed = self.norm_self(hidden)
        attended = self.self_attention(
            normed, normed, normed, mask=self_mask, position_bias=position_bias, kv_cache=self_cache
        )
        hidden = hidden + self.dropout(attended)
        normed = self.norm_cross(hidden)
        cross = self.cross_attention(normed, encoder_hidden, encoder_hidden, mask=cross_mask, kv_cache=cross_cache)
        hidden = hidden + self.dropout(cross)
        normed = self.norm_feed_forward(hidden)
        hidden = hidden + self.dropout(self.feed_forward(normed))
        return hidden


class TransformerEncoder(Module):
    """Stack of encoder layers with a shared relative position bias."""

    def __init__(self, config: TransformerConfig, embedding: Embedding):
        super().__init__()
        self.config = config
        self.embedding = embedding
        self.layers = [EncoderLayer(config, derive_seed(config.seed, "encoder", i)) for i in range(config.num_encoder_layers)]
        self.position_bias = RelativePositionBias(
            config.num_heads,
            config.relative_attention_num_buckets,
            config.relative_attention_max_distance,
            bidirectional=True,
            seed=derive_seed(config.seed, "encoder_bias"),
        )
        self.final_norm = RMSNorm(config.d_model)
        self.dropout = Dropout(config.dropout, seed=derive_seed(config.seed, "encoder_dropout"))

    def forward(self, input_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> Tensor:
        """Embed and encode ``input_ids``; padding is masked out of attention."""
        input_ids = np.asarray(input_ids, dtype=np.int64)
        if attention_mask is None:
            attention_mask = input_ids != self.config.pad_id
        hidden = self.dropout(self.embedding(input_ids))
        length = input_ids.shape[1]
        bias = self.position_bias(length, length)
        keep = np.asarray(attention_mask, dtype=bool)[:, None, :]  # (B, 1, T)
        for layer in self.layers:
            hidden = layer(hidden, keep, bias)
        return self.final_norm(hidden)


class TransformerDecoder(Module):
    """Stack of decoder layers with causal masking and cross attention."""

    def __init__(self, config: TransformerConfig, embedding: Embedding):
        super().__init__()
        self.config = config
        self.embedding = embedding
        self.layers = [DecoderLayer(config, derive_seed(config.seed, "decoder", i)) for i in range(config.num_decoder_layers)]
        self.position_bias = RelativePositionBias(
            config.num_heads,
            config.relative_attention_num_buckets,
            config.relative_attention_max_distance,
            bidirectional=False,
            seed=derive_seed(config.seed, "decoder_bias"),
        )
        self.final_norm = RMSNorm(config.d_model)
        self.dropout = Dropout(config.dropout, seed=derive_seed(config.seed, "decoder_dropout"))

    def forward(
        self,
        decoder_input_ids: np.ndarray,
        encoder_hidden: Tensor | None,
        encoder_attention_mask: np.ndarray | None = None,
        decoder_attention_mask: np.ndarray | None = None,
        cache: DecodeCache | None = None,
    ) -> Tensor:
        """Decode ``decoder_input_ids`` (the full target prefix, or — with a
        ``cache`` — only the not-yet-cached newest tokens).

        With a cache, position biases and the causal mask are offset by the
        cached length, self-attention K/V of the new tokens is appended to the
        cache, and cross-attention K/V is computed once and reused — after the
        first cached step ``encoder_hidden`` may be ``None``; a provided
        ``decoder_attention_mask`` must cover cached plus new positions.
        """
        decoder_input_ids = np.asarray(decoder_input_ids, dtype=np.int64)
        batch, length = decoder_input_ids.shape
        offset = 0
        layer_caches: list[LayerKVCache | None] = [None] * len(self.layers)
        if cache is not None:
            if len(cache) != len(self.layers):
                raise ModelConfigError(
                    f"DecodeCache has {len(cache)} layers, decoder has {len(self.layers)}"
                )
            offset = cache.length
            layer_caches = list(cache.layers)
        key_length = offset + length
        hidden = self.dropout(self.embedding(decoder_input_ids))
        bias = self.position_bias(length, key_length, query_offset=offset)

        if decoder_attention_mask is not None:
            causal = F.causal_mask(length, key_length)[None, :, :]  # (1, T, offset + T)
            pad_keep = np.asarray(decoder_attention_mask, dtype=bool)[:, None, :]
            self_mask = causal & pad_keep
        elif length == 1:
            # A single new token attends the entire cached prefix plus itself:
            # the causal row is all-True, so masking would be a no-op.
            self_mask = None
        else:
            causal = F.causal_mask(length, key_length)[None, :, :]
            self_mask = np.broadcast_to(causal, (batch, length, key_length))

        if encoder_attention_mask is not None:
            cross_mask = np.asarray(encoder_attention_mask, dtype=bool)[:, None, :]
        else:
            cross_mask = None

        for layer, layer_cache in zip(self.layers, layer_caches):
            hidden = layer(hidden, encoder_hidden, self_mask, cross_mask, bias, layer_cache=layer_cache)
        return self.final_norm(hidden)


class T5Model(Module):
    """The full encoder--decoder LM with tied embeddings and an LM head."""

    def __init__(self, config: TransformerConfig):
        super().__init__()
        config.validate()
        self.config = config
        self.shared_embedding = Embedding(config.vocab_size, config.d_model, seed=derive_seed(config.seed, "embedding"))
        self.encoder = TransformerEncoder(config, self.shared_embedding)
        self.decoder = TransformerDecoder(config, self.shared_embedding)

    # -- training ------------------------------------------------------------
    def shift_right(self, labels: np.ndarray) -> np.ndarray:
        """Build decoder inputs by prepending BOS and dropping the final token."""
        labels = np.asarray(labels, dtype=np.int64)
        shifted = np.full_like(labels, self.config.pad_id)
        shifted[:, 0] = self.config.bos_id
        shifted[:, 1:] = labels[:, :-1]
        # Padding in the labels must stay padding in the inputs.
        shifted = np.where(shifted == self.config.pad_id, self.config.pad_id, shifted)
        return shifted

    def forward(
        self,
        input_ids: np.ndarray,
        labels: np.ndarray | None = None,
        decoder_input_ids: np.ndarray | None = None,
        attention_mask: np.ndarray | None = None,
    ) -> dict:
        """Run the model; returns a dict with ``logits`` and optionally ``loss``."""
        input_ids = np.asarray(input_ids, dtype=np.int64)
        if attention_mask is None:
            attention_mask = input_ids != self.config.pad_id
        if decoder_input_ids is None:
            if labels is None:
                raise ModelConfigError("either labels or decoder_input_ids must be provided")
            decoder_input_ids = self.shift_right(labels)
        decoder_mask = decoder_input_ids != self.config.pad_id
        decoder_mask[:, 0] = True  # BOS is always attended

        encoder_hidden = self.encoder(input_ids, attention_mask)
        decoder_hidden = self.decoder(decoder_input_ids, encoder_hidden, attention_mask, decoder_mask)
        logits = self.lm_logits(decoder_hidden)
        output = {"logits": logits, "encoder_hidden": encoder_hidden}
        if labels is not None:
            output["loss"] = F.sequence_cross_entropy(logits, labels, pad_id=self.config.pad_id)
        return output

    def lm_logits(self, decoder_hidden: Tensor) -> Tensor:
        """Project decoder states onto the vocabulary with the tied embedding."""
        scale = self.config.d_model**-0.5
        # Calibration attaches an observer to the shared embedding to record
        # the tied head's *input* activations (repro.nn.calibration) — the
        # embedding's quantization error hurts decoding through this
        # projection, so its equalization is driven by these channels.
        observer = self.shared_embedding.__dict__.get("_activation_observer")
        if observer is not None:
            observer.update(decoder_hidden.data * scale)
        dtype = compute_dtype()
        if dtype == np.float64:
            return (decoder_hidden * scale) @ self.shared_embedding.weight.transpose()
        # Reduced-precision decode hits this projection once per step, so the
        # transposed cast of the (V, D) master is memoized on the embedding.
        projection = cast_cached(
            self.shared_embedding, "lm_projection", self.shared_embedding.weight.data, dtype, transform=np.transpose
        )
        return (decoder_hidden * scale) @ Tensor(projection)

    # -- quantization ------------------------------------------------------------
    @property
    def quantized(self) -> bool:
        """Whether the model's projection/embedding weights are stored as int8."""
        return self.any_quantized

    # -- generation -------------------------------------------------------------
    def generate(
        self,
        input_ids: np.ndarray,
        max_length: int | None = None,
        num_beams: int = 1,
        length_penalty: float = 1.0,
        use_cache: bool = True,
        dtype: str = "float64",
    ) -> np.ndarray:
        """Generate output token ids (greedy for ``num_beams == 1``, else beam search).

        Output contract (identical for greedy and beam): an int64 array of
        shape ``(batch, L)`` where ``L <= max_length`` is the length of the
        longest generated sequence in the batch (including its EOS token,
        excluding BOS); shorter rows are right-padded with ``pad_id``.

        ``use_cache=True`` (the default) decodes incrementally with per-layer
        K/V caches and — for beam search — expands all beams of all batch rows
        in one forward pass per step.  ``use_cache=False`` runs the naive
        reference loops that re-decode the full prefix every step; both paths
        produce identical token ids (the decode-equivalence suite asserts it).

        ``dtype`` selects the inference compute dtype (``"float64"`` or
        ``"float32"``); the whole generation — encoder pass, decode steps, KV
        caches — runs under :func:`repro.nn.tensor.autocast` with it.
        Reduced precision can flip near-tied argmax decisions, so fp32 output
        agrees with fp64 to a high but not bitwise rate; the decode benchmark
        measures and gates it (see ``docs/numerics.md``).
        """
        input_ids = np.atleast_2d(np.asarray(input_ids, dtype=np.int64))
        max_length = max_length or self.config.max_decode_length
        with autocast(dtype):
            if num_beams <= 1:
                if use_cache:
                    return self._greedy_generate_cached(input_ids, max_length)
                return self._greedy_generate_reference(input_ids, max_length)
            if use_cache:
                rows = self._beam_generate_cached(input_ids, max_length, num_beams, length_penalty)
            else:
                rows = [
                    self._beam_generate_reference(row[None, :], max_length, num_beams, length_penalty)
                    for row in input_ids
                ]
        return _pad_token_rows(rows, self.config.pad_id)

    def paged_decode_batch(
        self, max_slots: int = 8, page_size: int = 16, dtype: str = "float64"
    ) -> "PagedDecodeBatch":
        """Open a step-wise greedy decode batch sequences can join and leave live.

        The returned :class:`PagedDecodeBatch` is the continuous-batching
        entry point: ``admit`` a source row whenever a slot is free (even
        while other sequences are mid-decode), call ``step`` to advance every
        live sequence by one token, and collect finished outputs — each
        bitwise-equal to that row's solo ``generate(..., use_cache=False)``
        decode.  K/V memory comes from a shared
        :class:`~repro.nn.decode_cache.PagedKVArena` sized ``page_size``.
        """
        return PagedDecodeBatch(self, max_slots=max_slots, page_size=page_size, dtype=dtype)

    def _log_probs(self, logits: np.ndarray) -> np.ndarray:
        """Log-softmax of one vocabulary row; shared by both beam paths so the
        cached and reference implementations run the exact same float ops."""
        log_probs = logits - logits.max()
        return log_probs - np.log(np.exp(log_probs).sum())

    # -- cached fast paths -------------------------------------------------------
    def _greedy_generate_cached(self, input_ids: np.ndarray, max_length: int) -> np.ndarray:
        """Incremental greedy decoding: each step feeds only the newest token.

        Rows that emit EOS are *evicted* from the live batch (a
        :meth:`DecodeCache.reorder` gather, like beam search shrinking), so
        later steps only pay for unfinished rows — previously finished rows
        kept riding along, burning a full decoder step each on pad tokens.
        Because every per-row computation is independent of which other rows
        share the batch, eviction leaves the surviving rows' outputs
        bitwise-identical (the decode-equivalence suite asserts it).
        """
        batch = input_ids.shape[0]
        attention_mask = input_ids != self.config.pad_id
        with no_grad():
            encoder_hidden = self.encoder(input_ids, attention_mask)
            cache = DecodeCache(len(self.decoder.layers))
            rows: list[list[int]] = [[] for _ in range(batch)]
            active = np.arange(batch)
            live_mask = attention_mask
            encoder_states: Tensor | None = encoder_hidden
            step_tokens = np.full((batch, 1), self.config.bos_id, dtype=np.int64)
            for _ in range(max_length):
                decoder_hidden = self.decoder(step_tokens, encoder_states, live_mask, cache=cache)
                logits = self.lm_logits(decoder_hidden).numpy()[:, -1, :]
                next_tokens = logits.argmax(axis=-1)
                for position, row in enumerate(active):
                    rows[row].append(int(next_tokens[position]))
                keep = next_tokens != self.config.eos_id
                if not keep.any():
                    break
                if not keep.all():
                    survivors = np.flatnonzero(keep)
                    cache.reorder(survivors)
                    live_mask = live_mask[survivors]
                    active = active[survivors]
                    next_tokens = next_tokens[survivors]
                # The cross cache is warm after the first step; later steps
                # skip materializing encoder states they would ignore.
                encoder_states = None
                step_tokens = next_tokens[:, None]
        width = max((len(row) for row in rows), default=0)
        sequences = np.full((batch, width), self.config.pad_id, dtype=np.int64)
        for index, row in enumerate(rows):
            sequences[index, : len(row)] = row
        return sequences

    def _beam_generate_cached(
        self, input_ids: np.ndarray, max_length: int, num_beams: int, length_penalty: float
    ) -> list[list[int]]:
        """Batched beam search: one cached forward pass expands every live beam
        of every batch row, then per-row candidate selection replicates the
        reference semantics (same expansion order, same stable sort)."""
        batch = input_ids.shape[0]
        attention_mask = input_ids != self.config.pad_id
        with no_grad():
            encoder_hidden = self.encoder(input_ids, attention_mask).numpy()
            # rows[r] is the beam list of batch row r: (tokens, score, done),
            # kept sorted exactly as the reference implementation keeps it.
            rows: list[list[tuple[list[int], float, bool]]] = [
                [([self.config.bos_id], 0.0, False)] for _ in range(batch)
            ]
            cache = DecodeCache(len(self.decoder.layers))
            # Flat layout of the upcoming forward pass: one entry per live beam.
            active: list[tuple[int, int]] = [(r, 0) for r in range(batch)]
            for _ in range(max_length):
                if not active:
                    break
                flat_of = {entry: flat for flat, entry in enumerate(active)}
                row_index = np.fromiter((r for r, _ in active), dtype=np.int64)
                step_tokens = np.asarray([[rows[r][b][0][-1]] for r, b in active], dtype=np.int64)
                # The cross-attention cache is warm after the first step, so
                # later steps skip gathering encoder states they would ignore.
                encoder_states = Tensor(encoder_hidden[row_index]) if cache.length == 0 else None
                decoder_hidden = self.decoder(
                    step_tokens,
                    encoder_states,
                    attention_mask[row_index],
                    cache=cache,
                )
                logits = self.lm_logits(decoder_hidden).numpy()[:, -1, :]
                next_active: list[tuple[int, int]] = []
                gather: list[int] = []
                for r in sorted({r for r, _ in active}):
                    candidates: list[tuple[list[int], float, bool]] = []
                    parents: list[int | None] = []
                    for b, (tokens, score, done) in enumerate(rows[r]):
                        if done:
                            candidates.append((tokens, score, True))
                            parents.append(None)
                            continue
                        log_probs = self._log_probs(logits[flat_of[(r, b)]])
                        top = np.argsort(log_probs)[::-1][:num_beams]
                        for token in top:
                            candidates.append(
                                (tokens + [int(token)], score + float(log_probs[token]), int(token) == self.config.eos_id)
                            )
                            parents.append(flat_of[(r, b)])
                    order = sorted(
                        range(len(candidates)),
                        key=lambda i: candidates[i][1] / (max(len(candidates[i][0]) - 1, 1) ** length_penalty),
                        reverse=True,
                    )[:num_beams]
                    rows[r] = [candidates[i] for i in order]
                    for b, i in enumerate(order):
                        if not candidates[i][2]:
                            next_active.append((r, b))
                            gather.append(parents[i])
                cache.reorder(np.asarray(gather, dtype=np.int64))
                active = next_active
        return [rows[r][0][0][1:][:max_length] for r in range(batch)]

    # -- naive reference implementations ------------------------------------------
    def _greedy_generate_reference(self, input_ids: np.ndarray, max_length: int) -> np.ndarray:
        """The O(L^2) greedy loop: re-decodes the full prefix every step."""
        batch = input_ids.shape[0]
        attention_mask = input_ids != self.config.pad_id
        with no_grad():
            encoder_hidden = self.encoder(input_ids, attention_mask)
            sequences = np.full((batch, 1), self.config.bos_id, dtype=np.int64)
            finished = np.zeros(batch, dtype=bool)
            for _ in range(max_length):
                decoder_hidden = self.decoder(sequences, encoder_hidden, attention_mask)
                logits = self.lm_logits(decoder_hidden).numpy()[:, -1, :]
                next_tokens = logits.argmax(axis=-1)
                next_tokens = np.where(finished, self.config.pad_id, next_tokens)
                sequences = np.concatenate([sequences, next_tokens[:, None]], axis=1)
                finished |= next_tokens == self.config.eos_id
                if finished.all():
                    break
        return sequences[:, 1:]

    def _beam_generate_reference(
        self, input_ids: np.ndarray, max_length: int, num_beams: int, length_penalty: float
    ) -> list[int]:
        """One-row, one-beam-at-a-time beam search; the equivalence oracle."""
        attention_mask = input_ids != self.config.pad_id
        with no_grad():
            encoder_hidden = self.encoder(input_ids, attention_mask)
            beams: list[tuple[list[int], float, bool]] = [([self.config.bos_id], 0.0, False)]
            for _ in range(max_length):
                candidates: list[tuple[list[int], float, bool]] = []
                for tokens, score, done in beams:
                    if done:
                        candidates.append((tokens, score, True))
                        continue
                    sequence = np.asarray(tokens, dtype=np.int64)[None, :]
                    decoder_hidden = self.decoder(sequence, encoder_hidden, attention_mask)
                    logits = self.lm_logits(decoder_hidden).numpy()[0, -1, :]
                    log_probs = self._log_probs(logits)
                    top = np.argsort(log_probs)[::-1][:num_beams]
                    for token in top:
                        candidates.append(
                            (tokens + [int(token)], score + float(log_probs[token]), int(token) == self.config.eos_id)
                        )
                candidates.sort(key=lambda item: item[1] / (max(len(item[0]) - 1, 1) ** length_penalty), reverse=True)
                beams = candidates[:num_beams]
                if all(done for _, _, done in beams):
                    break
        return beams[0][0][1:][:max_length]


class _PagedSlot:
    """One occupied slot of a :class:`PagedDecodeBatch`: a live sequence's state."""

    __slots__ = ("handle", "sequence", "cross_k", "cross_v", "cross_mask", "tokens", "max_length", "last_token")

    def __init__(
        self,
        handle: int,
        sequence: PagedSequence,
        cross_k: list[np.ndarray],
        cross_v: list[np.ndarray],
        cross_mask: np.ndarray,
        max_length: int,
        bos_id: int,
    ):
        self.handle = handle
        self.sequence = sequence
        self.cross_k = cross_k
        self.cross_v = cross_v
        self.cross_mask = cross_mask
        self.tokens: list[int] = []
        self.max_length = max_length
        self.last_token = bos_id


class PagedDecodeBatch:
    """A live greedy-decode batch that sequences join and leave step by step.

    This is the model-side half of continuous batching
    (:mod:`repro.serving.continuous` owns the scheduling half): up to
    ``max_slots`` sequences decode together, each backed by its own
    :class:`~repro.nn.decode_cache.PagedSequence` over a shared
    :class:`~repro.nn.decode_cache.PagedKVArena`.  :meth:`admit` runs the
    sequence's encoder pass (batch of one — bitwise what a solo decode would
    compute) and projects its static cross-attention K/V; :meth:`step`
    decodes one token for every live sequence in one batched pass; sequences
    finish (EOS or their own length budget) and free their slot and pages
    immediately, without waiting for batch-mates.

    **Equivalence contract:** every sequence's output token ids are bitwise
    identical to its solo ``generate(..., use_cache=False)`` decode,
    regardless of what else shares the batch or when it was admitted.  The
    batched sub-computations (embedding, norms, projections, FFN, LM head)
    are per-row independent — a ``(rows, 1, d)`` matmul is a stack of
    ``(1, d)`` matmuls — and attention runs per row over that row's exact
    history (padding histories to a common length would change summation
    grouping and break bitwise equality; see
    :meth:`~repro.nn.attention.MultiHeadAttention.attend_rows`).

    Inference-only: the model must be in eval mode, and every pass runs
    under :func:`~repro.nn.tensor.no_grad` + :func:`~repro.nn.tensor.autocast`
    with the ``dtype`` fixed at construction.
    """

    def __init__(self, model: "T5Model", max_slots: int = 8, page_size: int = 16, dtype: str = "float64"):
        if max_slots < 1:
            raise ModelConfigError("PagedDecodeBatch needs at least one slot")
        if model.training:
            raise ModelConfigError("PagedDecodeBatch is inference-only; call model.eval() first")
        config = model.config
        self.model = model
        self.max_slots = max_slots
        self.dtype = dtype
        self.arena = PagedKVArena(
            num_layers=len(model.decoder.layers),
            num_heads=config.num_heads,
            head_dim=config.d_model // config.num_heads,
            page_size=page_size,
            initial_pages=max_slots,
        )
        self._slots: list[_PagedSlot | None] = [None] * max_slots
        self._bias_memo: dict[int, Tensor] = {}
        self._next_handle = 0
        #: Every token the most recent :meth:`step` emitted, keyed by
        #: sequence handle (finished sequences included).  The hook token
        #: streaming taps (:mod:`repro.serving.continuous`) read after each
        #: step; reset at the top of the next one.
        self.last_step_tokens: dict[int, int] = {}

    @property
    def active_count(self) -> int:
        """Number of sequences currently decoding."""
        return sum(slot is not None for slot in self._slots)

    @property
    def free_slots(self) -> int:
        """Slots available for :meth:`admit` right now."""
        return self.max_slots - self.active_count

    def admit(self, input_ids: np.ndarray, max_length: int | None = None) -> int:
        """Join ``input_ids`` (one unbatched source row) to the live batch.

        Runs the encoder over the single row and caches each layer's
        projected cross-attention K/V, allocating a free slot; returns the
        sequence's handle (the key :meth:`step` reports completion under).
        Raises :class:`ModelConfigError` when every slot is occupied — the
        serving scheduler checks :attr:`free_slots` and queues instead.
        """
        if self.model.training:
            raise ModelConfigError("PagedDecodeBatch is inference-only; call model.eval() first")
        max_length = max_length or self.model.config.max_decode_length
        if max_length < 1:
            raise ModelConfigError("max_length must be at least 1")
        slot_index = next((i for i, slot in enumerate(self._slots) if slot is None), None)
        if slot_index is None:
            raise ModelConfigError(f"no free slot: all {self.max_slots} are decoding")
        input_ids = np.asarray(input_ids, dtype=np.int64)
        if input_ids.ndim != 1:
            raise ModelConfigError("admit() takes one unbatched source row at a time")
        attention_mask = (input_ids != self.model.config.pad_id)[None, :]
        with autocast(self.dtype), no_grad():
            encoder_hidden = self.model.encoder(input_ids[None, :], attention_mask)
            cross_k, cross_v = [], []
            for layer in self.model.decoder.layers:
                k, v = layer.cross_attention.project_static_kv(encoder_hidden)
                cross_k.append(k)
                cross_v.append(v)
        handle = self._next_handle
        self._next_handle += 1
        self._slots[slot_index] = _PagedSlot(
            handle=handle,
            sequence=self.arena.sequence(),
            cross_k=cross_k,
            cross_v=cross_v,
            cross_mask=attention_mask[:, None, :],  # (1, 1, source_len) keep mask
            max_length=max_length,
            bos_id=self.model.config.bos_id,
        )
        return handle

    def evict(self, handle: int) -> None:
        """Drop a live sequence (e.g. its caller gave up), freeing slot and pages."""
        for index, slot in enumerate(self._slots):
            if slot is not None and slot.handle == handle:
                slot.sequence.release()
                self._slots[index] = None
                return
        raise ModelConfigError(f"no live sequence with handle {handle}")

    def step(self) -> dict[int, list[int]]:
        """Decode one token for every live sequence; return the newly finished.

        The returned dict maps each finished sequence's handle to its
        complete output token ids (EOS included when emitted, BOS excluded —
        the per-row form of :meth:`T5Model.generate`'s contract).  Finished
        sequences leave the batch before the method returns, so their slots
        and pages are immediately reusable.
        """
        if self.model.training:
            raise ModelConfigError("PagedDecodeBatch is inference-only; call model.eval() first")
        active = [slot for slot in self._slots if slot is not None]
        if not active:
            return {}
        decoder = self.model.decoder
        config = self.model.config
        with autocast(self.dtype), no_grad():
            step_ids = np.asarray([[slot.last_token] for slot in active], dtype=np.int64)
            hidden = decoder.dropout(decoder.embedding(step_ids))
            for layer_index, layer in enumerate(decoder.layers):
                normed = layer.norm_self(hidden)
                q, k_new, v_new = layer.self_attention.decode_step_qkv(normed)
                keys, values, biases = [], [], []
                for row, slot in enumerate(active):
                    slot.sequence.append(layer_index, k_new[row : row + 1], v_new[row : row + 1])
                    k_row, v_row = slot.sequence.view(layer_index)
                    keys.append(k_row)
                    values.append(v_row)
                    biases.append(self._position_bias(slot.sequence.length))
                attended = layer.self_attention.attend_rows(q, keys, values, position_biases=biases)
                hidden = hidden + layer.dropout(attended)
                normed = layer.norm_cross(hidden)
                q_cross = layer.cross_attention.decode_step_query(normed)
                cross = layer.cross_attention.attend_rows(
                    q_cross,
                    [slot.cross_k[layer_index] for slot in active],
                    [slot.cross_v[layer_index] for slot in active],
                    masks=[slot.cross_mask for slot in active],
                )
                hidden = hidden + layer.dropout(cross)
                normed = layer.norm_feed_forward(hidden)
                hidden = hidden + layer.dropout(layer.feed_forward(normed))
            hidden = decoder.final_norm(hidden)
            logits = self.model.lm_logits(hidden).numpy()[:, -1, :]
        finished: dict[int, list[int]] = {}
        self.last_step_tokens = {}
        for row, slot in enumerate(active):
            token = int(logits[row].argmax())
            self.last_step_tokens[slot.handle] = token
            slot.tokens.append(token)
            slot.last_token = token
            if token == config.eos_id or len(slot.tokens) >= slot.max_length:
                finished[slot.handle] = slot.tokens
                slot.sequence.release()
                self._slots[self._slots.index(slot)] = None
        return finished

    def _position_bias(self, key_length: int) -> Tensor:
        """The single-query relative-position bias row for ``key_length`` cached
        positions, memoized — it depends only on the length in eval mode."""
        bias = self._bias_memo.get(key_length)
        if bias is None:
            bias = self.model.decoder.position_bias(1, key_length, query_offset=key_length - 1)
            self._bias_memo[key_length] = bias
        return bias


def _pad_token_rows(rows: list[list[int]], pad_id: int) -> np.ndarray:
    """Stack variable-length token rows into a ``(batch, L)`` array, where ``L``
    is the longest row (at least 1 so empty batches keep a well-formed shape)."""
    width = max((len(row) for row in rows), default=1) or 1
    padded = np.full((len(rows), width), pad_id, dtype=np.int64)
    for index, row in enumerate(rows):
        padded[index, : len(row)] = row
    return padded
