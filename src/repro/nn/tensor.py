"""A reverse-mode automatic-differentiation engine over numpy arrays.

The engine is intentionally small: a :class:`Tensor` wraps an ``ndarray`` and
records, for every operation, a closure that propagates the output gradient to
the operation's inputs.  Calling :meth:`Tensor.backward` on a scalar loss
topologically sorts the recorded graph and runs the closures in reverse.

Only the operations needed by the T5 transformer and the GRU baseline are
implemented, but each handles full numpy broadcasting so layers can be written
naturally.

Precision policy
----------------
Training and gradient checking always run in ``float64`` — that is what makes
the hypothesis-based gradient checks in the test-suite tight, and it is not
configurable.  Inference may opt into ``float32`` through :func:`autocast`,
which installs a per-thread *compute dtype*: every tensor created inside the
context (operation results included) is kept in that dtype, so a forward pass
runs its matmuls in fp32 end-to-end.  Because reduced precision is
meaningless for the gradient checks, entering ``autocast("float32")`` also
disables autograd recording for the scope, exactly like :func:`no_grad`.
See ``docs/numerics.md`` for the full policy.
"""

from __future__ import annotations

import contextlib
import threading
from collections.abc import Sequence

import numpy as np

# Graph recording is toggled per *thread*, not per process: the serving
# layer's worker shards run concurrent `no_grad()` inference on different
# threads, and a process-global flag would let one worker's save/restore
# re-enable recording in the middle of another worker's cached decode (which
# the KV-cache guard would reject).  Threads default to recording enabled.
_GRAD_STATE = threading.local()

# The compute dtype is likewise per-thread, so one serving worker decoding in
# float32 cannot downcast a concurrent worker's float64 request.  Threads
# default to float64 (the training dtype).
_PRECISION_STATE = threading.local()

#: Inference compute dtypes selectable through :func:`autocast`.
SUPPORTED_DTYPES = ("float64", "float32")


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (used for generation)."""
    previous = grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def grad_enabled() -> bool:
    """Whether operations on this thread record the autograd graph."""
    return getattr(_GRAD_STATE, "enabled", True)


def resolve_dtype(dtype) -> np.dtype:
    """Normalize a dtype spec (``"float32"``, ``np.float64``...) to a numpy dtype.

    Only the dtypes in :data:`SUPPORTED_DTYPES` are accepted — they are the
    compute dtypes the inference engine supports (int8 is a weight *storage*
    format, not a compute dtype; see :mod:`repro.nn.layers`).
    """
    resolved = np.dtype(dtype)
    if resolved.name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported compute dtype {dtype!r}; supported: {', '.join(SUPPORTED_DTYPES)}"
        )
    return resolved


def compute_dtype() -> np.dtype:
    """The dtype tensors are created (and operations computed) in on this thread."""
    return getattr(_PRECISION_STATE, "dtype", None) or np.dtype(np.float64)


@contextlib.contextmanager
def autocast(dtype="float32"):
    """Run the scope's tensor operations in ``dtype`` (an inference fast path).

    ``autocast("float32")`` makes every tensor created inside the scope —
    including every operation result — float32, so forward passes run their
    matmuls in single precision end-to-end.  Reduced precision is
    inference-only: entering the context with any dtype other than float64
    also disables autograd recording for the scope (float64 master weights
    stay untouched; layers cast them on the fly, see
    :func:`repro.nn.layers.cast_cached`).  ``autocast("float64")`` is a
    no-op, which lets callers thread a dtype policy unconditionally.
    """
    resolved = resolve_dtype(dtype)
    previous_dtype = getattr(_PRECISION_STATE, "dtype", None)
    previous_grad = grad_enabled()
    _PRECISION_STATE.dtype = resolved
    if resolved != np.float64:
        _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _PRECISION_STATE.dtype = previous_dtype
        _GRAD_STATE.enabled = previous_grad


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and autograd history."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")
    __array_priority__ = 100  # make numpy defer to our reflected operators

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward=None,
        name: str | None = None,
    ):
        self.data = np.asarray(data, dtype=compute_dtype())
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and grad_enabled()
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # -- basic protocol -----------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def item(self) -> float:
        """The value of a one-element tensor as a python float."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # -- graph construction helpers ------------------------------------------
    @staticmethod
    def _coerce(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = grad_enabled() and any(p.requires_grad for p in parents)
        # Tensor.__init__ re-asserts the compute dtype, so an op that mixed a
        # float64 master weight into a float32 autocast scope (and was thus
        # promoted by numpy) lands back in the scope's dtype here.
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data**exponent

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad, out):
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim == 1 else grad[..., None] * other.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if grad.ndim == 1 else self.data[..., None] @ grad[..., None, :])
                else:
                    other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return self._make(out_data, (self, other), backward)

    # -- elementwise functions -------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise ``e**x`` with autograd support."""
        out_data = np.exp(self.data)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm with autograd support."""
        out_data = np.log(self.data)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root (``self ** 0.5``)."""
        return self**0.5

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent with autograd support."""
        out_data = np.tanh(self.data)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid with autograd support."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        """Elementwise ``max(x, 0)`` with autograd support."""
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """The tanh approximation of GELU used by T5 v1.1 style feed-forwards."""
        x = self.data
        inner = np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + tanh_inner)

        def backward(grad, out):
            if self.requires_grad:
                sech2 = 1.0 - tanh_inner**2
                d_inner = np.sqrt(2.0 / np.pi) * (1.0 + 3 * 0.044715 * x**2)
                local = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
                self._accumulate(grad * local)

        return self._make(out_data, (self,), backward)

    # -- reductions --------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all elements when ``None``)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad, out):
            if not self.requires_grad:
                return
            grad = np.asarray(grad, dtype=np.float64)
            if axis is None:
                self._accumulate(np.ones_like(self.data) * grad)
                return
            if not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (all elements when ``None``)."""
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; ties split the gradient evenly."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad, out):
            if not self.requires_grad:
                return
            grad = np.asarray(grad, dtype=np.float64)
            expanded = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum(), 1.0)
            self._accumulate(mask * grad)

        return self._make(out_data, (self,), backward)

    # -- shape manipulation --------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """The same data viewed under a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.data.shape

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(original_shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        """Permute dimensions (reversed order when no axes are given)."""
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes)

        def backward(grad, out):
            if self.requires_grad:
                # The inverse permutation is only needed on the backward pass;
                # computing it lazily keeps inference-time transposes cheap.
                self._accumulate(np.asarray(grad).transpose(np.argsort(axes)))

        return self._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Swap two dimensions."""
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad, out):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # -- composition helpers ----------------------------------------------------------
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Join tensors along an existing ``axis``."""
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad, out):
            grad = np.asarray(grad)
            start = 0
            for tensor, size in zip(tensors, sizes):
                if tensor.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(start, start + size)
                    tensor._accumulate(grad[tuple(index)])
                start += size

        requires = grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            out._parents = tuple(tensors)
            out._backward = backward
        return out

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Stack tensors along a new ``axis``."""
        expanded = [t.reshape(t.shape[:axis] + (1,) + t.shape[axis:]) for t in (Tensor._coerce(t) for t in tensors)]
        return Tensor.concatenate(expanded, axis=axis)

    def embedding_lookup(self, ids: np.ndarray) -> "Tensor":
        """Row lookup ``self[ids]`` where ``self`` is an (V, D) embedding matrix."""
        ids = np.asarray(ids, dtype=np.int64)
        out_data = self.data[ids]

        def backward(grad, out):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, ids.reshape(-1), np.asarray(grad).reshape(-1, self.data.shape[-1]))
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is true by ``value`` (no grad through them)."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(np.where(mask, 0.0, grad))

        return self._make(out_data, (self,), backward)

    # -- backward pass -------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to 1 for scalar outputs; non-scalar outputs require
        an explicit output gradient.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient is only defined for scalar tensors")
            grad = np.ones_like(self.data)
        # Topological order over the recorded graph.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad, node)
