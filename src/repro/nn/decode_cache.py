"""Key/value caches for incremental (single-step) decoding.

Autoregressive generation re-runs the decoder once per emitted token.  Without
caching, every step re-projects and re-attends the entire prefix, so decoding
``L`` tokens costs ``O(L^2)`` decoder passes worth of work.  The caches here
make each step's decoder work independent of the prefix length:

* **self-attention** — the projected K/V of every already-decoded position is
  stored per layer; a step projects only the newest token and appends it
  (amortized O(1): appends land in a geometrically grown buffer, not a
  re-concatenated array);
* **cross-attention** — K/V over the encoder output never changes during
  decoding, so it is projected once on the first step and reused verbatim.

The caches store raw numpy arrays (shape ``(batch, heads, length,
head_dim)``) rather than autograd tensors: incremental decoding is an
inference-only fast path and always runs under :func:`repro.nn.tensor.no_grad`.
Buffers adopt the dtype of the first projected K/V they receive, so a decode
running under ``autocast("float32")`` caches float32 throughout; mixing
dtypes within one cache is rejected (each generation owns a fresh cache, so
a mix can only mean the precision policy changed mid-decode).
:meth:`DecodeCache.reorder` re-gathers the batch axis, which is what batched
beam search uses to carry each surviving beam's prefix forward.

For token-level continuous batching the monolithic per-batch buffers are the
wrong shape: sequences join and leave the batch at every step, so per-slot
memory must be recyclable in O(1) without copying survivors.
:class:`PagedKVArena` provides that — a shared pool of fixed-size K/V pages
per decoder layer, with a free list so a finished sequence's pages are
immediately reusable — and :class:`PagedSequence` is one sequence's page
table over the arena (see ``docs/decoding.md`` for the layout).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import ModelConfigError
from repro.obs.names import METRIC_ARENA_PAGE_REUSE_RATIO, METRIC_ARENA_PAGES_IN_USE

_PAGES_IN_USE = obs.METRICS.gauge(METRIC_ARENA_PAGES_IN_USE)
_PAGE_REUSE_RATIO = obs.METRICS.gauge(METRIC_ARENA_PAGE_REUSE_RATIO)

_INITIAL_CAPACITY = 16


def _check_kv_pair(k: np.ndarray, v: np.ndarray) -> None:
    """Reject a k/v pair whose dtypes or shapes disagree.

    Keys and values are projected from the same hidden states, so any
    disagreement means the caller mixed tensors from different steps or
    precision scopes — silently casting (the old behaviour for ``v``) would
    hide the bug until outputs diverge.
    """
    if k.dtype != v.dtype:
        raise ModelConfigError(f"k/v dtype mismatch: keys are {k.dtype}, values are {v.dtype}")
    if k.shape != v.shape:
        raise ModelConfigError(f"k/v shape mismatch: keys are {k.shape}, values are {v.shape}")


class KVState:
    """The cached key/value arrays of one attention module.

    ``static`` marks cross-attention state: it is written once (from the
    encoder output) and then reused, whereas non-static (self-attention)
    state grows by one step per :meth:`append`.  ``k``/``v`` expose the live
    ``(batch, heads, length, head_dim)`` slice; appends write into an
    over-allocated buffer that doubles when full, so growing the cache does
    not re-copy the whole history every step.
    """

    __slots__ = ("static", "_buffer_k", "_buffer_v", "_length")

    def __init__(self, static: bool = False):
        self.static = static
        self._buffer_k: np.ndarray | None = None
        self._buffer_v: np.ndarray | None = None
        self._length = 0

    @property
    def k(self) -> np.ndarray | None:
        """The live keys (``None`` when empty); a view, not a copy."""
        return None if self._buffer_k is None else self._buffer_k[:, :, : self._length]

    @property
    def v(self) -> np.ndarray | None:
        """The live values (``None`` when empty); a view, not a copy."""
        return None if self._buffer_v is None else self._buffer_v[:, :, : self._length]

    @property
    def length(self) -> int:
        """Number of cached key positions (0 when empty)."""
        return self._length

    def set(self, k: np.ndarray, v: np.ndarray) -> None:
        """Store projected K/V wholesale (the cross-attention write path)."""
        _check_kv_pair(k, v)
        self._buffer_k = k
        self._buffer_v = v
        self._length = int(k.shape[2])

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Grow the cache along the sequence axis (the self-attention write path)."""
        if self.static:
            raise ModelConfigError("append() is only valid on non-static (self-attention) KV state")
        _check_kv_pair(k, v)
        steps = int(k.shape[2])
        new_length = self._length + steps
        if self._buffer_k is not None and self._buffer_k.dtype != k.dtype:
            raise ModelConfigError(
                f"KV cache holds {self._buffer_k.dtype} but received {k.dtype}; "
                "the compute dtype must stay fixed for the lifetime of one decode"
            )
        if self._buffer_k is None or new_length > self._buffer_k.shape[2]:
            capacity = max(_INITIAL_CAPACITY, new_length)
            if self._buffer_k is not None:
                capacity = max(capacity, 2 * self._buffer_k.shape[2])
            shape = (k.shape[0], k.shape[1], capacity, k.shape[3])
            grown_k = np.empty(shape, dtype=k.dtype)
            grown_v = np.empty(shape, dtype=k.dtype)
            if self._length:
                grown_k[:, :, : self._length] = self._buffer_k[:, :, : self._length]
                grown_v[:, :, : self._length] = self._buffer_v[:, :, : self._length]
            self._buffer_k, self._buffer_v = grown_k, grown_v
        self._buffer_k[:, :, self._length : new_length] = k
        self._buffer_v[:, :, self._length : new_length] = v
        self._length = new_length

    def reorder(self, indices: np.ndarray) -> None:
        """Gather the batch axis by ``indices`` (beam-search reordering).

        Only the live positions are copied (fancy indexing on the sliced view
        yields a fresh contiguous array); unused buffer capacity is dropped
        and re-grown by the next :meth:`append` if needed.
        """
        if self._buffer_k is not None:
            self._buffer_k = self._buffer_k[:, :, : self._length][indices]
            self._buffer_v = self._buffer_v[:, :, : self._length][indices]


class LayerKVCache:
    """The per-decoder-layer pair of caches: growing self-K/V, static cross-K/V."""

    __slots__ = ("self_attention", "cross_attention")

    def __init__(self):
        self.self_attention = KVState(static=False)
        self.cross_attention = KVState(static=True)

    def reorder(self, indices: np.ndarray) -> None:
        """Gather both caches' batch axes by ``indices``."""
        self.self_attention.reorder(indices)
        self.cross_attention.reorder(indices)


class DecodeCache:
    """All decoder-layer K/V caches for one in-flight generation.

    Create one per ``generate`` call, pass it to every decoder step, and the
    decoder feeds each layer only the newest token(s); ``length`` tracks how
    many target positions are already cached so position biases and causal
    masks can be offset correctly.
    """

    def __init__(self, num_layers: int):
        if num_layers < 1:
            raise ModelConfigError("DecodeCache needs at least one decoder layer")
        self.layers = [LayerKVCache() for _ in range(num_layers)]

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def length(self) -> int:
        """Number of already-decoded (cached) target positions."""
        return self.layers[0].self_attention.length

    @property
    def batch_size(self) -> int | None:
        """Batch rows currently cached (``None`` before the first step)."""
        state = self.layers[0].self_attention
        return None if state.k is None else int(state.k.shape[0])

    def reorder(self, indices) -> None:
        """Gather every layer's batch axis by ``indices``.

        Beam search calls this between steps so that row ``i`` of the cache
        holds the prefix of the ``i``-th surviving beam; indices may repeat
        (one parent beam expanding into several children) or drop rows
        (finished beams leaving the batch).
        """
        indices = np.asarray(indices, dtype=np.int64)
        batch = self.batch_size
        if batch is not None and indices.shape[0] == batch and np.array_equal(indices, np.arange(batch)):
            return  # identity gather — common once beams stabilize
        for layer in self.layers:
            layer.reorder(indices)


class PagedKVArena:
    """A shared pool of fixed-size K/V pages backing paged decode caches.

    The arena owns one ``(pages, page_size, heads, head_dim)`` key pool and
    value pool per decoder layer.  A *page id* addresses the same slot in
    every layer's pools: decoder layers advance in lockstep within a step, so
    one logical allocation covers all layers and the page table of a
    :class:`PagedSequence` is a single list of ids.  Page memory is recycled
    through a free list — releasing a finished sequence and admitting a new
    one are both O(pages), no copying of surviving sequences — and the pools
    grow by doubling when the free list runs dry, so total memory tracks the
    high-water mark of *tokens in flight*, not ``max_length × batch``.

    Like :class:`KVState`, the arena adopts the dtype of the first K/V it
    receives and rejects mixes (a mix means the precision policy changed
    while sequences were in flight).
    """

    def __init__(self, num_layers: int, num_heads: int, head_dim: int, page_size: int = 16, initial_pages: int = 8):
        if num_layers < 1:
            raise ModelConfigError("PagedKVArena needs at least one decoder layer")
        if num_heads < 1 or head_dim < 1:
            raise ModelConfigError("PagedKVArena needs positive num_heads and head_dim")
        if page_size < 1:
            raise ModelConfigError("page_size must be positive")
        if initial_pages < 1:
            raise ModelConfigError("initial_pages must be positive")
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.page_size = page_size
        self._initial_pages = initial_pages
        self._pool_k: list[np.ndarray] | None = None
        self._pool_v: list[np.ndarray] | None = None
        self._free: list[int] = []
        self._num_pages = 0
        self._pages_in_use = 0
        self._high_water = 0
        self._fresh_allocations = 0
        self._page_reuses = 0
        self._ever_used: set[int] = set()
        self._sequences_opened = 0
        self._sequences_released = 0

    @property
    def dtype(self) -> np.dtype | None:
        """The pool dtype (``None`` until the first write fixes it)."""
        return None if self._pool_k is None else self._pool_k[0].dtype

    @property
    def num_pages(self) -> int:
        """Total pages the pools currently hold (allocated + free)."""
        return self._num_pages

    @property
    def pages_in_use(self) -> int:
        """Pages currently owned by live sequences."""
        return self._pages_in_use

    def sequence(self) -> "PagedSequence":
        """Open a new empty sequence over this arena."""
        self._sequences_opened += 1
        return PagedSequence(self)

    @property
    def sequences_open(self) -> int:
        """Sequences opened but not yet released — the live streams/decodes.

        The streaming telemetry reads this to report how many token streams
        are drawing on the arena right now.
        """
        return self._sequences_opened - self._sequences_released

    def stats(self) -> dict:
        """Allocation counters for monitoring and the continuous benchmark."""
        return {
            "page_size": self.page_size,
            "num_pages": self._num_pages,
            "pages_in_use": self._pages_in_use,
            "pages_high_water": self._high_water,
            "fresh_allocations": self._fresh_allocations,
            "page_reuses": self._page_reuses,
            "sequences_opened": self._sequences_opened,
            "sequences_released": self._sequences_released,
        }

    def observe(self) -> None:
        """Publish the arena occupancy and free-list reuse gauges.

        Called once per continuous-batching step so the metrics snapshot
        reflects the live arena rather than the state at the last request
        boundary.  The reuse ratio is ``page_reuses / (page_reuses +
        fresh_allocations)`` — how often an allocation was served by the
        free list rather than first-touch pool memory.
        """
        _PAGES_IN_USE.set(float(self._pages_in_use))
        allocations = self._page_reuses + self._fresh_allocations
        if allocations:
            _PAGE_REUSE_RATIO.set(self._page_reuses / allocations)

    # -- page bookkeeping (driven by PagedSequence) ------------------------------------
    def _materialize(self, dtype: np.dtype) -> None:
        shape = (self._initial_pages, self.page_size, self.num_heads, self.head_dim)
        self._pool_k = [np.zeros(shape, dtype=dtype) for _ in range(self.num_layers)]
        self._pool_v = [np.zeros(shape, dtype=dtype) for _ in range(self.num_layers)]
        self._num_pages = self._initial_pages
        self._free = list(range(self._initial_pages - 1, -1, -1))

    def _grow(self) -> None:
        grown = max(1, self._num_pages)
        shape = (grown, self.page_size, self.num_heads, self.head_dim)
        for pools in (self._pool_k, self._pool_v):
            for layer in range(self.num_layers):
                pools[layer] = np.concatenate([pools[layer], np.zeros(shape, dtype=pools[layer].dtype)])
        self._free.extend(range(self._num_pages + grown - 1, self._num_pages - 1, -1))
        self._num_pages += grown

    def _allocate_page(self, dtype: np.dtype) -> int:
        if self._pool_k is None:
            self._materialize(dtype)
        elif self._pool_k[0].dtype != dtype:
            raise ModelConfigError(
                f"KV arena holds {self._pool_k[0].dtype} but received {dtype}; "
                "the compute dtype must stay fixed while sequences are in flight"
            )
        if not self._free:
            self._grow()
        page = self._free.pop()
        if page in self._ever_used:
            self._page_reuses += 1
        else:
            self._fresh_allocations += 1
            self._ever_used.add(page)
        self._pages_in_use += 1
        self._high_water = max(self._high_water, self._pages_in_use)
        return page

    def _release_pages(self, pages: list[int]) -> None:
        self._free.extend(reversed(pages))
        self._pages_in_use -= len(pages)


class PagedSequence:
    """One sequence's self-attention K/V history, paged over a :class:`PagedKVArena`.

    The sequence owns a page table (a list of arena page ids, shared across
    layers — see :class:`PagedKVArena`) plus a per-layer length.  Each decoder
    step :meth:`append`\\ s the newest token's projected K/V for every layer;
    a page is allocated lazily when the first write crosses into it.
    :meth:`view` gathers the live positions of one layer back into a dense
    ``(1, heads, length, head_dim)`` pair for attention — a copy, so released
    pages being overwritten by another sequence can never alias an in-flight
    read.  :meth:`release` returns every page to the arena's free list;
    a released sequence rejects further use.
    """

    __slots__ = ("arena", "pages", "_lengths", "_released")

    def __init__(self, arena: PagedKVArena):
        self.arena = arena
        self.pages: list[int] = []
        self._lengths = [0] * arena.num_layers
        self._released = False

    @property
    def length(self) -> int:
        """Cached positions of the first layer (layers advance in lockstep)."""
        return self._lengths[0]

    @property
    def released(self) -> bool:
        """Whether the sequence's pages have been returned to the arena."""
        return self._released

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        """Write the newest step's projected K/V for ``layer``.

        ``k``/``v`` are ``(1, heads, steps, head_dim)``, exactly what one
        attention module projects for one sequence's new tokens.
        """
        if self._released:
            raise ModelConfigError("PagedSequence was released; its pages belong to the arena again")
        _check_kv_pair(k, v)
        if k.ndim != 4 or k.shape[0] != 1 or k.shape[1] != self.arena.num_heads or k.shape[3] != self.arena.head_dim:
            raise ModelConfigError(
                f"K/V geometry {k.shape} does not match the arena's "
                f"(1, {self.arena.num_heads}, steps, {self.arena.head_dim})"
            )
        k = k[0].transpose(1, 0, 2)  # (steps, heads, head_dim)
        v = v[0].transpose(1, 0, 2)
        position = self._lengths[layer]
        steps = k.shape[0]
        page_size = self.arena.page_size
        needed = -(-(position + steps) // page_size)  # ceil division
        while len(self.pages) < needed:
            self.pages.append(self.arena._allocate_page(k.dtype))
        pool_k = self.arena._pool_k[layer]
        pool_v = self.arena._pool_v[layer]
        for step in range(steps):
            page = self.pages[(position + step) // page_size]
            offset = (position + step) % page_size
            pool_k[page, offset] = k[step]
            pool_v[page, offset] = v[step]
        self._lengths[layer] = position + steps

    def view(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Gather ``layer``'s live K/V as dense ``(1, heads, length, head_dim)`` copies."""
        if self._released:
            raise ModelConfigError("PagedSequence was released; its pages belong to the arena again")
        length = self._lengths[layer]
        if length == 0:
            raise ModelConfigError("cannot view an empty paged sequence; append a step first")
        page_size = self.arena.page_size
        positions = np.arange(length)
        table = np.asarray(self.pages, dtype=np.int64)
        flat = table[positions // page_size] * page_size + positions % page_size
        heads, head_dim = self.arena.num_heads, self.arena.head_dim
        k = self.arena._pool_k[layer].reshape(-1, heads, head_dim)[flat]
        v = self.arena._pool_v[layer].reshape(-1, heads, head_dim)[flat]
        # (length, heads, head_dim) -> (1, heads, length, head_dim), densely
        # laid out like the contiguous caches so attention sees the same shape.
        return (
            np.ascontiguousarray(k.transpose(1, 0, 2))[None],
            np.ascontiguousarray(v.transpose(1, 0, 2))[None],
        )

    def release(self) -> None:
        """Return every page to the arena (idempotent); the sequence is dead after."""
        if not self._released:
            self.arena._release_pages(self.pages)
            self.arena._sequences_released += 1
            self.pages = []
            self._released = True
