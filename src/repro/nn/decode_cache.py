"""Key/value caches for incremental (single-step) decoding.

Autoregressive generation re-runs the decoder once per emitted token.  Without
caching, every step re-projects and re-attends the entire prefix, so decoding
``L`` tokens costs ``O(L^2)`` decoder passes worth of work.  The caches here
make each step's decoder work independent of the prefix length:

* **self-attention** — the projected K/V of every already-decoded position is
  stored per layer; a step projects only the newest token and appends it
  (amortized O(1): appends land in a geometrically grown buffer, not a
  re-concatenated array);
* **cross-attention** — K/V over the encoder output never changes during
  decoding, so it is projected once on the first step and reused verbatim.

The caches store raw numpy arrays (shape ``(batch, heads, length,
head_dim)``) rather than autograd tensors: incremental decoding is an
inference-only fast path and always runs under :func:`repro.nn.tensor.no_grad`.
Buffers adopt the dtype of the first projected K/V they receive, so a decode
running under ``autocast("float32")`` caches float32 throughout; mixing
dtypes within one cache is rejected (each generation owns a fresh cache, so
a mix can only mean the precision policy changed mid-decode).
:meth:`DecodeCache.reorder` re-gathers the batch axis, which is what batched
beam search uses to carry each surviving beam's prefix forward.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelConfigError

_INITIAL_CAPACITY = 16


class KVState:
    """The cached key/value arrays of one attention module.

    ``static`` marks cross-attention state: it is written once (from the
    encoder output) and then reused, whereas non-static (self-attention)
    state grows by one step per :meth:`append`.  ``k``/``v`` expose the live
    ``(batch, heads, length, head_dim)`` slice; appends write into an
    over-allocated buffer that doubles when full, so growing the cache does
    not re-copy the whole history every step.
    """

    __slots__ = ("static", "_buffer_k", "_buffer_v", "_length")

    def __init__(self, static: bool = False):
        self.static = static
        self._buffer_k: np.ndarray | None = None
        self._buffer_v: np.ndarray | None = None
        self._length = 0

    @property
    def k(self) -> np.ndarray | None:
        """The live keys (``None`` when empty); a view, not a copy."""
        return None if self._buffer_k is None else self._buffer_k[:, :, : self._length]

    @property
    def v(self) -> np.ndarray | None:
        """The live values (``None`` when empty); a view, not a copy."""
        return None if self._buffer_v is None else self._buffer_v[:, :, : self._length]

    @property
    def length(self) -> int:
        """Number of cached key positions (0 when empty)."""
        return self._length

    def set(self, k: np.ndarray, v: np.ndarray) -> None:
        """Store projected K/V wholesale (the cross-attention write path)."""
        self._buffer_k = k
        self._buffer_v = v
        self._length = int(k.shape[2])

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Grow the cache along the sequence axis (the self-attention write path)."""
        if self.static:
            raise ModelConfigError("append() is only valid on non-static (self-attention) KV state")
        steps = int(k.shape[2])
        new_length = self._length + steps
        if self._buffer_k is not None and self._buffer_k.dtype != k.dtype:
            raise ModelConfigError(
                f"KV cache holds {self._buffer_k.dtype} but received {k.dtype}; "
                "the compute dtype must stay fixed for the lifetime of one decode"
            )
        if self._buffer_k is None or new_length > self._buffer_k.shape[2]:
            capacity = max(_INITIAL_CAPACITY, new_length)
            if self._buffer_k is not None:
                capacity = max(capacity, 2 * self._buffer_k.shape[2])
            shape = (k.shape[0], k.shape[1], capacity, k.shape[3])
            grown_k = np.empty(shape, dtype=k.dtype)
            grown_v = np.empty(shape, dtype=k.dtype)
            if self._length:
                grown_k[:, :, : self._length] = self._buffer_k[:, :, : self._length]
                grown_v[:, :, : self._length] = self._buffer_v[:, :, : self._length]
            self._buffer_k, self._buffer_v = grown_k, grown_v
        self._buffer_k[:, :, self._length : new_length] = k
        self._buffer_v[:, :, self._length : new_length] = v
        self._length = new_length

    def reorder(self, indices: np.ndarray) -> None:
        """Gather the batch axis by ``indices`` (beam-search reordering).

        Only the live positions are copied (fancy indexing on the sliced view
        yields a fresh contiguous array); unused buffer capacity is dropped
        and re-grown by the next :meth:`append` if needed.
        """
        if self._buffer_k is not None:
            self._buffer_k = self._buffer_k[:, :, : self._length][indices]
            self._buffer_v = self._buffer_v[:, :, : self._length][indices]


class LayerKVCache:
    """The per-decoder-layer pair of caches: growing self-K/V, static cross-K/V."""

    __slots__ = ("self_attention", "cross_attention")

    def __init__(self):
        self.self_attention = KVState(static=False)
        self.cross_attention = KVState(static=True)

    def reorder(self, indices: np.ndarray) -> None:
        """Gather both caches' batch axes by ``indices``."""
        self.self_attention.reorder(indices)
        self.cross_attention.reorder(indices)


class DecodeCache:
    """All decoder-layer K/V caches for one in-flight generation.

    Create one per ``generate`` call, pass it to every decoder step, and the
    decoder feeds each layer only the newest token(s); ``length`` tracks how
    many target positions are already cached so position biases and causal
    masks can be offset correctly.
    """

    def __init__(self, num_layers: int):
        if num_layers < 1:
            raise ModelConfigError("DecodeCache needs at least one decoder layer")
        self.layers = [LayerKVCache() for _ in range(num_layers)]

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def length(self) -> int:
        """Number of already-decoded (cached) target positions."""
        return self.layers[0].self_attention.length

    @property
    def batch_size(self) -> int | None:
        """Batch rows currently cached (``None`` before the first step)."""
        state = self.layers[0].self_attention
        return None if state.k is None else int(state.k.shape[0])

    def reorder(self, indices) -> None:
        """Gather every layer's batch axis by ``indices``.

        Beam search calls this between steps so that row ``i`` of the cache
        holds the prefix of the ``i``-th surviving beam; indices may repeat
        (one parent beam expanding into several children) or drop rows
        (finished beams leaving the batch).
        """
        indices = np.asarray(indices, dtype=np.int64)
        batch = self.batch_size
        if batch is not None and indices.shape[0] == batch and np.array_equal(indices, np.arange(batch)):
            return  # identity gather — common once beams stabilize
        for layer in self.layers:
            layer.reorder(indices)
