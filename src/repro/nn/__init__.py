"""A small numpy-based neural-network substrate.

The paper builds DataVisT5 on the HuggingFace T5/CodeT5+ stack; this
environment is offline and has no deep-learning framework installed, so the
package provides the pieces that stack supplies:

* :mod:`repro.nn.tensor` -- a reverse-mode autograd engine over numpy arrays;
* :mod:`repro.nn.layers` -- modules (Linear, Embedding, RMSNorm, Dropout);
* :mod:`repro.nn.calibration` -- activation-aware int8 calibration:
  activation statistics, SmoothQuant-style equalization, and mixed-precision
  :class:`~repro.nn.calibration.QuantPolicy` search;
* :mod:`repro.nn.attention` -- multi-head attention with T5 relative
  position biases and an optional K/V-cache fast path;
* :mod:`repro.nn.decode_cache` -- per-layer key/value caches for
  incremental decoding;
* :mod:`repro.nn.transformer` -- a T5-style encoder--decoder LM with
  KV-cached greedy and batched beam-search generation;
* :mod:`repro.nn.rnn` -- a GRU sequence-to-sequence model with attention
  (the Seq2Vis baseline);
* :mod:`repro.nn.optim` -- Adam, gradient clipping and LR schedules.

Models are deliberately small (a few hundred thousand parameters) so the
whole benchmark suite trains in seconds on a CPU, but the architecture and
objectives are the same shape as the paper's.
"""

from repro.nn.tensor import Tensor, autocast, compute_dtype, no_grad
from repro.nn import functional
from repro.nn.decode_cache import DecodeCache, KVState, LayerKVCache, PagedKVArena, PagedSequence
from repro.nn.layers import Module, Linear, Embedding, RMSNorm, Dropout, Parameter, asymmetric_int8, symmetric_int8
from repro.nn.calibration import (
    ActivationObserver,
    ActivationStats,
    QuantPolicy,
    apply_policy,
    calibrate_policy,
    collect_activation_stats,
    equalization_scales,
    observe_activations,
    quantizable_modules,
    sensitivity_scan,
    token_agreement,
)
from repro.nn.attention import MultiHeadAttention, RelativePositionBias
from repro.nn.transformer import PagedDecodeBatch, TransformerConfig, T5Model, TransformerEncoder, TransformerDecoder
from repro.nn.rnn import GRUCell, GRUEncoder, AttentionGRUDecoder, Seq2SeqModel
from repro.nn.optim import Adam, SGD, clip_grad_norm, LinearWarmupSchedule, ConstantSchedule

__all__ = [
    "Tensor",
    "no_grad",
    "autocast",
    "compute_dtype",
    "symmetric_int8",
    "asymmetric_int8",
    "ActivationObserver",
    "ActivationStats",
    "QuantPolicy",
    "apply_policy",
    "calibrate_policy",
    "collect_activation_stats",
    "equalization_scales",
    "observe_activations",
    "quantizable_modules",
    "sensitivity_scan",
    "token_agreement",
    "functional",
    "DecodeCache",
    "KVState",
    "LayerKVCache",
    "PagedKVArena",
    "PagedSequence",
    "Module",
    "Linear",
    "Embedding",
    "RMSNorm",
    "Dropout",
    "Parameter",
    "MultiHeadAttention",
    "RelativePositionBias",
    "TransformerConfig",
    "T5Model",
    "PagedDecodeBatch",
    "TransformerEncoder",
    "TransformerDecoder",
    "GRUCell",
    "GRUEncoder",
    "AttentionGRUDecoder",
    "Seq2SeqModel",
    "Adam",
    "SGD",
    "clip_grad_norm",
    "LinearWarmupSchedule",
    "ConstantSchedule",
]
