"""Multi-head attention with T5-style relative position biases."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelConfigError
from repro.nn import functional as F
from repro.nn.decode_cache import KVState
from repro.nn.layers import Dropout, Linear, Module, Parameter
from repro.nn.tensor import Tensor, grad_enabled
from repro.utils.rng import seeded_rng


class RelativePositionBias(Module):
    """The learned bucketed relative-position bias used by T5 attention.

    Instead of absolute position embeddings, T5 adds a learned scalar to each
    attention logit that depends only on the bucketed distance between the
    query and key positions.  Buckets grow logarithmically with distance, and
    the decoder (causal) variant only distinguishes "how far in the past".
    """

    def __init__(
        self,
        num_heads: int,
        num_buckets: int = 32,
        max_distance: int = 128,
        bidirectional: bool = True,
        seed: int | np.random.Generator = 0,
    ):
        super().__init__()
        if num_buckets < 2:
            raise ModelConfigError("relative position bias needs at least 2 buckets")
        rng = seeded_rng(seed)
        self.num_heads = num_heads
        self.num_buckets = num_buckets
        self.max_distance = max_distance
        self.bidirectional = bidirectional
        self.embedding = Parameter(rng.normal(0.0, 0.02, size=(num_buckets, num_heads)))

    def _bucket(self, relative_position: np.ndarray) -> np.ndarray:
        """Map signed relative positions to bucket indices (vectorised)."""
        num_buckets = self.num_buckets
        result = np.zeros_like(relative_position)
        if self.bidirectional:
            num_buckets //= 2
            result = result + (relative_position > 0).astype(np.int64) * num_buckets
            relative_position = np.abs(relative_position)
        else:
            relative_position = -np.minimum(relative_position, 0)
        max_exact = num_buckets // 2
        is_small = relative_position < max_exact
        # Larger distances share logarithmically sized buckets.
        with np.errstate(divide="ignore"):
            relative_if_large = max_exact + (
                np.log(np.maximum(relative_position, 1) / max_exact)
                / np.log(self.max_distance / max_exact)
                * (num_buckets - max_exact)
            ).astype(np.int64)
        relative_if_large = np.minimum(relative_if_large, num_buckets - 1)
        result = result + np.where(is_small, relative_position, relative_if_large)
        return result

    def forward(self, query_length: int, key_length: int, query_offset: int = 0) -> Tensor:
        """Return a bias tensor of shape ``(1, num_heads, query_length, key_length)``.

        ``query_offset`` places the queries at absolute positions
        ``offset .. offset + query_length`` — incremental decoding uses it to
        get the bias row of the newest token only, which is bitwise the same
        as the corresponding row of the full ``(key_length, key_length)`` bias.
        """
        context_position = np.arange(query_offset, query_offset + query_length)[:, None]
        memory_position = np.arange(key_length)[None, :]
        relative_position = memory_position - context_position
        buckets = self._bucket(relative_position)
        bias = self.embedding.embedding_lookup(buckets)  # (Q, K, H)
        return bias.transpose((2, 0, 1)).reshape(1, self.num_heads, query_length, key_length)


class MultiHeadAttention(Module):
    """Scaled dot-product attention over several heads, with optional position bias."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.0,
        seed: int | np.random.Generator = 0,
    ):
        super().__init__()
        if d_model % num_heads != 0:
            raise ModelConfigError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        rng = seeded_rng(seed)
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.q_proj = Linear(d_model, d_model, bias=False, seed=rng)
        self.k_proj = Linear(d_model, d_model, bias=False, seed=rng)
        self.v_proj = Linear(d_model, d_model, bias=False, seed=rng)
        self.out_proj = Linear(d_model, d_model, bias=False, seed=rng)
        self.dropout = Dropout(dropout, seed=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose((0, 2, 1, 3))

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, length, head_dim = x.shape
        return x.transpose((0, 2, 1, 3)).reshape(batch, length, heads * head_dim)

    def forward(
        self,
        query: Tensor,
        key: Tensor | None,
        value: Tensor | None,
        mask: np.ndarray | None = None,
        position_bias: Tensor | None = None,
        return_weights: bool = False,
        kv_cache: KVState | None = None,
    ):
        """Attend ``query`` over ``key``/``value``.

        ``mask`` is a boolean *keep* mask broadcastable to
        ``(batch, 1, query_length, key_length)``; masked-out logits receive a
        large negative bias before the softmax.

        ``kv_cache`` switches on the incremental-decode fast path: a static
        cache (cross-attention) projects ``key``/``value`` once and reuses the
        result on later steps — once warm, ``key``/``value`` may be ``None``
        so callers need not materialize unused encoder states; a growing cache
        (self-attention) projects only the tokens passed in and appends them,
        then attends the query over the whole cached history.  Cached
        attention is inference-only.
        """
        q = self._split_heads(self.q_proj(query))
        if kv_cache is None:
            k = self._split_heads(self.k_proj(key))
            v = self._split_heads(self.v_proj(value))
        else:
            if grad_enabled():
                raise ModelConfigError(
                    "KV-cached attention is a decode-only fast path; run it under no_grad()"
                )
            if kv_cache.static:
                if kv_cache.k is None:
                    if key is None:
                        raise ModelConfigError(
                            "a cold static KV cache needs key/value to project from"
                        )
                    kv_cache.set(
                        self._split_heads(self.k_proj(key)).numpy(),
                        self._split_heads(self.v_proj(value)).numpy(),
                    )
            else:
                kv_cache.append(
                    self._split_heads(self.k_proj(key)).numpy(),
                    self._split_heads(self.v_proj(value)).numpy(),
                )
            k = Tensor(kv_cache.k)
            v = Tensor(kv_cache.v)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.swapaxes(-1, -2)) * scale
        if position_bias is not None:
            scores = scores + position_bias
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            while mask.ndim < 4:
                mask = mask[:, None] if mask.ndim >= 2 else mask[None]
            scores = scores.masked_fill(~mask, -1e9)
        weights = F.softmax(scores, axis=-1)
        weights = self.dropout(weights)
        attended = weights @ v
        output = self.out_proj(self._merge_heads(attended))
        if return_weights:
            return output, weights
        return output

    # -- paged continuous-decode fast path ---------------------------------------------
    # Continuous batching attends each sequence over its *own* exact-length
    # K/V history (gathered from arena pages), because padding histories to a
    # common length changes numpy's pairwise-summation grouping and breaks
    # bitwise equality with the solo decode.  Everything except the
    # score/softmax/value core stays batched across rows — those ops are
    # row-stable (per-row M=1 gemms), so slicing a row out of the batched
    # projections is bitwise-identical to projecting it alone.

    def decode_step_qkv(self, hidden: Tensor) -> tuple[Tensor, np.ndarray, np.ndarray]:
        """Project one decode step's batched hidden states into Q/K/V heads.

        ``hidden`` is ``(rows, 1, d_model)`` — one new token per row.  Returns
        the split-head query tensor ``(rows, heads, 1, head_dim)`` plus raw
        numpy K/V of the same shape, ready to be appended into each row's
        :class:`~repro.nn.decode_cache.PagedSequence`.  Decode-only: requires
        :func:`~repro.nn.tensor.no_grad`.
        """
        if grad_enabled():
            raise ModelConfigError(
                "decode_step_qkv is a decode-only fast path; run it under no_grad()"
            )
        q = self._split_heads(self.q_proj(hidden))
        k = self._split_heads(self.k_proj(hidden)).numpy()
        v = self._split_heads(self.v_proj(hidden)).numpy()
        return q, k, v

    def decode_step_query(self, hidden: Tensor) -> Tensor:
        """Project only the split-head queries of one decode step.

        The cross-attention half of a continuous-decode step reuses K/V
        projected at admission, so unlike :meth:`decode_step_qkv` there is
        nothing to project but the query.  Decode-only.
        """
        if grad_enabled():
            raise ModelConfigError(
                "decode_step_query is a decode-only fast path; run it under no_grad()"
            )
        return self._split_heads(self.q_proj(hidden))

    def project_static_kv(self, states: Tensor) -> tuple[np.ndarray, np.ndarray]:
        """Project encoder ``states`` into the split-head K/V a warm cross cache holds.

        Bitwise the same arrays :meth:`forward` writes into a cold static
        :class:`~repro.nn.decode_cache.KVState` — continuous batching calls
        this once per admitted sequence and stores the result beside its page
        table.  Decode-only.
        """
        if grad_enabled():
            raise ModelConfigError(
                "project_static_kv is a decode-only fast path; run it under no_grad()"
            )
        return (
            self._split_heads(self.k_proj(states)).numpy(),
            self._split_heads(self.v_proj(states)).numpy(),
        )

    def attend_rows(
        self,
        q: Tensor,
        keys: list[np.ndarray],
        values: list[np.ndarray],
        masks: list[np.ndarray | None] | None = None,
        position_biases: list[Tensor | None] | None = None,
    ) -> Tensor:
        """Attend each query row over its own (per-row length) K/V history.

        ``q`` is the ``(rows, heads, 1, head_dim)`` split-head query batch;
        ``keys[i]``/``values[i]`` are row ``i``'s ``(1, heads, length_i,
        head_dim)`` history (a :meth:`PagedSequence.view` gather, or a stored
        cross-attention projection).  ``masks[i]`` is a boolean keep mask
        broadcastable to ``(1, 1, 1, length_i)`` or ``None``; likewise
        ``position_biases[i]``.  The per-row core runs the exact op sequence
        of :meth:`forward` — scale, bias, mask fill, softmax, dropout, value
        mix — so each row's output is bitwise what that row would get
        decoding alone.  Returns the merged, output-projected
        ``(rows, 1, d_model)`` tensor.
        """
        if grad_enabled():
            raise ModelConfigError(
                "attend_rows is a decode-only fast path; run it under no_grad()"
            )
        rows = q.shape[0]
        if len(keys) != rows or len(values) != rows:
            raise ModelConfigError(f"attend_rows got {rows} query rows but {len(keys)}/{len(values)} K/V histories")
        scale = 1.0 / np.sqrt(self.head_dim)
        attended_rows = []
        for row in range(rows):
            q_row = q[row : row + 1]
            scores = (q_row @ Tensor(keys[row]).swapaxes(-1, -2)) * scale
            bias = position_biases[row] if position_biases is not None else None
            if bias is not None:
                scores = scores + bias
            mask = masks[row] if masks is not None else None
            if mask is not None:
                mask = np.asarray(mask, dtype=bool)
                while mask.ndim < 4:
                    mask = mask[:, None] if mask.ndim >= 2 else mask[None]
                scores = scores.masked_fill(~mask, -1e9)
            weights = F.softmax(scores, axis=-1)
            weights = self.dropout(weights)
            attended_rows.append((weights @ Tensor(values[row])).numpy())
        attended = Tensor(np.concatenate(attended_rows, axis=0))
        return self.out_proj(self._merge_heads(attended))
