"""Neural-network modules: parameter containers and basic layers."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import ModelConfigError
from repro.nn.tensor import Tensor
from repro.utils.rng import seeded_rng


class Parameter(Tensor):
    """A tensor that is always trainable and discoverable by :class:`Module`."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)
        # Parameters must remain trainable even when created inside ``no_grad``.
        self.requires_grad = True


class Module:
    """Base class providing parameter discovery, train/eval mode and state dicts."""

    def __init__(self):
        self.training = True

    # -- parameter discovery ------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for attr_name, value in vars(self).items():
            full_name = f"{prefix}{attr_name}"
            if isinstance(value, Parameter):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{index}.")
                    elif isinstance(item, Parameter):
                        yield f"{full_name}.{index}", item

    def parameters(self) -> list[Parameter]:
        return [parameter for _, parameter in self.named_parameters()]

    def num_parameters(self) -> int:
        return int(sum(parameter.size for parameter in self.parameters()))

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- train / eval --------------------------------------------------------
    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- persistence -----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            raise ModelConfigError(f"state dict mismatch: missing={missing} unexpected={unexpected}")
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ModelConfigError(
                    f"shape mismatch for {name}: expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data = value.copy()

    # -- call protocol ------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """A dense layer ``y = x W + b`` with Glorot-style initialisation."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: int | np.random.Generator = 0):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ModelConfigError("Linear dimensions must be positive")
        rng = seeded_rng(seed)
        scale = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-scale, scale, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(self, num_embeddings: int, embedding_dim: int, seed: int | np.random.Generator = 0):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ModelConfigError("Embedding dimensions must be positive")
        rng = seeded_rng(seed)
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise ModelConfigError(
                f"token id outside embedding range [0, {self.num_embeddings}): "
                f"min={ids.min() if ids.size else None}, max={ids.max() if ids.size else None}"
            )
        return self.weight.embedding_lookup(ids)


class RMSNorm(Module):
    """Root-mean-square layer norm, the normalisation used by T5 (no mean subtraction)."""

    def __init__(self, dim: int, eps: float = 1e-6):
        super().__init__()
        self.weight = Parameter(np.ones(dim))
        self.eps = eps
        self.dim = dim

    def forward(self, x: Tensor) -> Tensor:
        variance = (x * x).mean(axis=-1, keepdims=True)
        normed = x * ((variance + self.eps) ** -0.5)
        return normed * self.weight


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode or at rate 0."""

    def __init__(self, rate: float = 0.0, seed: int | np.random.Generator = 0):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ModelConfigError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = seeded_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep_probability = 1.0 - self.rate
        mask = self._rng.random(x.shape) < keep_probability
        return x * Tensor(mask.astype(np.float64) / keep_probability)


class FeedForward(Module):
    """The T5 position-wise feed-forward block (Linear -> activation -> Linear)."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        activation: str = "relu",
        dropout: float = 0.0,
        seed: int | np.random.Generator = 0,
    ):
        super().__init__()
        rng = seeded_rng(seed)
        self.wi = Linear(d_model, d_ff, bias=False, seed=rng)
        self.wo = Linear(d_ff, d_model, bias=False, seed=rng)
        self.dropout = Dropout(dropout, seed=rng)
        if activation not in ("relu", "gelu"):
            raise ModelConfigError(f"unknown activation {activation!r}")
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.wi(x)
        hidden = hidden.relu() if self.activation == "relu" else hidden.gelu()
        hidden = self.dropout(hidden)
        return self.wo(hidden)
