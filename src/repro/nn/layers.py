"""Neural-network modules: parameter containers and basic layers.

Precision support lives at this level too.  Master weights are always
``float64`` (:class:`Parameter` pins them); when a forward pass runs inside
:func:`repro.nn.tensor.autocast` with a reduced compute dtype, layers cast
their masters on the fly through a per-module memo (:func:`cast_cached`).
:class:`Linear` and :class:`Embedding` additionally support per-row **int8
weight quantization** (:meth:`Linear.quantize_int8`) — symmetric by default,
optionally asymmetric (zero-point) and/or equalized by per-input-channel
activation scales (:mod:`repro.nn.calibration`): the int8 codes plus their
scales (and any zero points / equalization vectors) become the persisted
form of the weight, and the float master is re-derived from them so compute
at any dtype sees the quantized values.  See ``docs/numerics.md``.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import ModelConfigError
from repro.nn.tensor import Tensor, compute_dtype
from repro.utils.rng import seeded_rng


def cast_cached(module: "Module", slot: str, source: np.ndarray, dtype, transform=None) -> np.ndarray:
    """``source`` cast to ``dtype`` (optionally through ``transform``), memoized.

    The memo lives on ``module`` under ``slot`` and is keyed by the *identity*
    of ``source``, so reassigning a parameter's ``data`` (``load_state_dict``,
    :meth:`Linear.load_int8`) invalidates it automatically.  In-place
    mutation (an optimizer step) does not change identity; the cache is
    therefore also dropped whenever a module transitions between train and
    eval mode — the protocol every training loop in the repo follows — and
    can be dropped explicitly via :meth:`Module.invalidate_cast_caches`.
    """
    if transform is None and source.dtype == dtype:
        return source
    cache = module.__dict__.setdefault("_cast_cache", {})
    entry = cache.get(slot)
    if entry is not None and entry[0] is source and entry[1] == dtype:
        return entry[2]
    cast = np.ascontiguousarray(transform(source) if transform is not None else source, dtype=dtype)
    cache[slot] = (source, dtype, cast)
    return cast


def symmetric_int8(values: np.ndarray, axis: int) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric int8 quantization of ``values`` with one scale per slice of ``axis``.

    Every slice along ``axis`` is mapped to ``round(values / scale)`` clipped
    to ``[-127, 127]``, where ``scale = max(|slice|) / 127`` (all-zero slices
    get scale 1.0 so dequantization is exact).  Returns ``(codes, scales)``
    with ``scales`` keeping the reduced axis as size 1, so
    ``codes * scales`` broadcasts back to the original shape.
    """
    values = np.asarray(values, dtype=np.float64)
    scales = np.max(np.abs(values), axis=axis, keepdims=True) / 127.0
    scales = np.where(scales == 0.0, 1.0, scales)
    codes = np.clip(np.rint(values / scales), -127, 127).astype(np.int8)
    return codes, scales


def asymmetric_int8(values: np.ndarray, axis: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Asymmetric (zero-point) int8 quantization with one scale per slice of ``axis``.

    Where :func:`symmetric_int8` centers the code range on zero, this maps
    each slice's actual ``[min, max]`` interval onto the 255 signed levels:
    ``scale = (max - min) / 254``, ``zero_point = midpoint / scale``, and
    ``codes = round(values / scale - zero_point)`` clipped to ``[-127, 127]``.
    Skewed slices (e.g. embedding rows whose mass sits off-center) lose half
    a level of error versus wasting range on values that never occur.
    Constant slices take scale 1.0 with the constant absorbed into the zero
    point, so dequantization is exact.  Returns ``(codes, scales,
    zero_points)``; the dequantized form is ``(codes + zero_points) * scales``.
    """
    values = np.asarray(values, dtype=np.float64)
    low = values.min(axis=axis, keepdims=True)
    high = values.max(axis=axis, keepdims=True)
    scales = (high - low) / 254.0
    scales = np.where(scales == 0.0, 1.0, scales)
    zero_points = (high + low) / (2.0 * scales)
    codes = np.clip(np.rint(values / scales - zero_points), -127, 127).astype(np.int8)
    return codes, scales, zero_points


def _validate_equalization(
    equalization: np.ndarray | None, channels: int, shape: tuple[int, int], owner: str
) -> np.ndarray | None:
    """Normalize an equalization vector to ``shape`` (float64), or reject it."""
    if equalization is None:
        return None
    equalization = np.asarray(equalization, dtype=np.float64)
    if equalization.size != channels:
        raise ModelConfigError(
            f"{owner} equalization must have {channels} per-channel scales, got {equalization.size}"
        )
    if not np.all(np.isfinite(equalization)) or np.any(equalization <= 0.0):
        raise ModelConfigError(f"{owner} equalization scales must be finite and positive")
    return equalization.reshape(shape)


class Parameter(Tensor):
    """A tensor that is always trainable and discoverable by :class:`Module`.

    Master parameter storage is pinned to ``float64`` regardless of any
    active :func:`~repro.nn.tensor.autocast` scope — reduced precision is a
    property of *compute*, never of the stored weights.
    """

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)
        # Re-derive the master from the *source* data, not from ``self.data``:
        # inside an autocast scope the base constructor casts through the
        # compute dtype, which would silently round float64 initial values.
        self.data = np.asarray(data, dtype=np.float64)
        # Parameters must remain trainable even when created inside ``no_grad``.
        self.requires_grad = True


class Module:
    """Base class providing parameter discovery, train/eval mode and state dicts."""

    def __init__(self):
        self.training = True

    # -- parameter discovery ------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` for every parameter in the tree."""
        for attr_name, value in vars(self).items():
            full_name = f"{prefix}{attr_name}"
            if isinstance(value, Parameter):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{index}.")
                    elif isinstance(item, Parameter):
                        yield f"{full_name}.{index}", item

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` for this module and every submodule.

        Traversal mirrors :meth:`named_parameters`, so a submodule reachable
        through several attributes (e.g. a shared embedding) is yielded once
        per path — callers that must visit each instance once should dedupe
        by identity.
        """
        yield prefix[:-1] if prefix.endswith(".") else prefix, self
        for attr_name, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.named_modules(prefix=f"{prefix}{attr_name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(prefix=f"{prefix}{attr_name}.{index}.")

    def parameters(self) -> list[Parameter]:
        """Every :class:`Parameter` reachable from this module, in discovery order."""
        return [parameter for _, parameter in self.named_parameters()]

    def invalidate_cast_caches(self) -> None:
        """Drop every memoized reduced-precision weight cast in this tree.

        Needed only after mutating parameter data in place outside the
        train/eval protocol (mode transitions drop the memos automatically).
        """
        for _, module in self.named_modules():
            module.__dict__.pop("_cast_cache", None)

    def num_parameters(self) -> int:
        """Total scalar parameters in the tree."""
        return int(sum(parameter.size for parameter in self.parameters()))

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- train / eval --------------------------------------------------------
    def train(self) -> "Module":
        """Switch the tree to training mode; returns ``self``."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Switch the tree to inference mode; returns ``self``."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        if training != self.training:
            # A mode transition brackets any in-place weight mutation the
            # optimizer made, so it is the safe point to drop stale casts.
            self.__dict__.pop("_cast_cache", None)
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- quantization ----------------------------------------------------------
    def quantize_int8(self) -> None:
        """Int8-quantize every not-yet-quantized :class:`Linear`/:class:`Embedding` below.

        Leaf modules override this with the actual per-weight quantization;
        the generic version walks the tree once per module *instance* (a
        shared submodule is quantized once, however many attributes reach
        it).  Quantized weights are frozen, so a quantized model is
        inference-only.
        """
        seen: set[int] = set()
        for _, module in self.named_modules():
            if isinstance(module, (Linear, Embedding)) and id(module) not in seen:
                seen.add(id(module))
                if not module.quantized:
                    module.quantize_int8()

    @property
    def any_quantized(self) -> bool:
        """Whether any submodule stores int8-quantized weights."""
        return any(
            isinstance(module, (Linear, Embedding)) and module.quantized
            for _, module in self.named_modules()
        )

    # -- persistence -----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Every parameter as a ``name -> float64 array`` mapping (copies).

        A parameter reachable through several attributes (e.g. a tied
        embedding) appears **once**, under its first traversal name — saving
        each alias would triple a tied embedding's checkpoint footprint.
        :meth:`load_state_dict` resolves aliases by identity, so a state dict
        keyed by any alias of a shared parameter still loads.  Quantized
        weights appear in their dequantized float64 form; use
        :meth:`int8_state_dict` to persist the codes + scales instead.
        """
        state: dict[str, np.ndarray] = {}
        seen: set[int] = set()
        for name, parameter in self.named_parameters():
            if id(parameter) in seen:
                continue
            seen.add(id(parameter))
            state[name] = parameter.data.copy()
        return state

    def int8_state_dict(self) -> dict[str, np.ndarray]:
        """Like :meth:`state_dict`, but quantized weights stay int8.

        Each quantized weight ``<name>`` is replaced by ``<name>.int8`` (the
        int8 codes) and ``<name>.int8_scale`` (the per-row float scales) —
        roughly an 8x size reduction for the quantized share of the
        parameters — plus, when the module was calibrated, ``<name>.int8_zp``
        (asymmetric zero points) and/or ``<name>.int8_eq`` (the per-channel
        equalization scales folded in before rounding; see
        :mod:`repro.nn.calibration`).  :meth:`load_state_dict` accepts both
        formats and rebuilds the exact dequantized masters bitwise.
        """
        state = self.state_dict()
        seen: set[int] = set()
        for name, module in self.named_modules():
            if not isinstance(module, (Linear, Embedding)) or id(module) in seen:
                continue
            seen.add(id(module))
            if not module.quantized:
                continue
            key = f"{name}.weight" if name else "weight"
            state.pop(key, None)
            state[f"{key}.int8"] = module.weight_q.copy()
            state[f"{key}.int8_scale"] = module.weight_scale.copy()
            if module.weight_zero_point is not None:
                state[f"{key}.int8_zp"] = module.weight_zero_point.copy()
            if module.weight_equalization is not None:
                state[f"{key}.int8_eq"] = module.weight_equalization.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Install ``state`` (a :meth:`state_dict` or :meth:`int8_state_dict`).

        ``<name>.int8`` / ``<name>.int8_scale`` pairs (plus optional
        ``.int8_zp`` / ``.int8_eq`` entries) are routed to the owning module's
        ``load_int8`` (quantizing it if it was not already); a plain float
        entry arriving for a currently-quantized weight clears that module's
        int8 storage — the checkpoint defines the storage format.  A shared
        parameter is satisfied by an entry under *any* of its alias names
        (state dicts written by :meth:`state_dict` carry the first traversal
        name; older checkpoints that saved every alias still load).
        """
        state = dict(state)
        quantized: dict[str, dict[str, np.ndarray]] = {}
        for key in [k for k in state if k.endswith(".int8")]:
            base = key[: -len(".int8")]
            scale_key = f"{base}.int8_scale"
            if scale_key not in state:
                raise ModelConfigError(f"int8 entry {key!r} is missing its {scale_key!r} scales")
            entry = {"codes": np.asarray(state.pop(key)), "scales": np.asarray(state.pop(scale_key))}
            zp_key, eq_key = f"{base}.int8_zp", f"{base}.int8_eq"
            if zp_key in state:
                entry["zero_points"] = np.asarray(state.pop(zp_key))
            if eq_key in state:
                entry["equalization"] = np.asarray(state.pop(eq_key))
            quantized[base] = entry
        # Validate everything BEFORE the first mutation, so a rejected state
        # dict leaves the model untouched rather than partially overwritten.
        modules = dict(self.named_modules())
        targets: dict[str, "Linear | Embedding"] = {}
        for base in quantized:
            module_name, _, leaf = base.rpartition(".")
            module = modules.get(module_name)
            if leaf != "weight" or not isinstance(module, (Linear, Embedding)):
                raise ModelConfigError(f"int8 entry {base!r} does not name a Linear/Embedding weight")
            targets[base] = module
        own = dict(self.named_parameters())
        # Group alias names by parameter identity: one entry per group loads
        # the shared parameter, whichever alias the writer happened to use.
        alias_groups: dict[int, list[str]] = {}
        for name, parameter in own.items():
            alias_groups.setdefault(id(parameter), []).append(name)
        provided = set(state) | set(quantized)
        missing = sorted(
            names[0] for names in alias_groups.values() if not provided.intersection(names)
        )
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            raise ModelConfigError(f"state dict mismatch: missing={missing} unexpected={unexpected}")
        for name in state:
            value = np.asarray(state[name])
            if value.shape != own[name].data.shape:
                raise ModelConfigError(
                    f"shape mismatch for {name}: expected {own[name].data.shape}, got {value.shape}"
                )
        for base, entry in quantized.items():
            targets[base].load_int8(**entry)
        for name, parameter in own.items():
            if name in quantized or name not in state:
                continue  # installed via load_int8, or satisfied through an alias
            value = np.asarray(state[name], dtype=np.float64)
            module_name, _, leaf = name.rpartition(".")
            owner = modules.get(module_name)
            if leaf == "weight" and isinstance(owner, (Linear, Embedding)) and owner.quantized:
                owner.weight_q = None
                owner.weight_scale = None
                owner.weight_zero_point = None
                owner.weight_equalization = None
                parameter.requires_grad = True
                owner.invalidate_cast_caches()
            parameter.data = value.copy()

    # -- call protocol ------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        """Compute the module's output (subclasses must override)."""
        raise NotImplementedError


class Linear(Module):
    """A dense layer ``y = x W + b`` with Glorot-style initialisation.

    Supports int8 weight storage (:meth:`quantize_int8`): the weight matrix
    is replaced by per-output-channel symmetric int8 codes plus float scales
    (one scale per column of ``W``, i.e. per row of the conventional
    ``(out, in)`` weight view), and the float64 master is re-derived as
    ``codes * scales`` so every compute path — float64 or an autocast
    float32 pass — sees the identical quantized values.  Quantized layers are
    frozen: their weight stops requiring gradients.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: int | np.random.Generator = 0):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ModelConfigError("Linear dimensions must be positive")
        rng = seeded_rng(seed)
        scale = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-scale, scale, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features
        self.weight_q: np.ndarray | None = None
        self.weight_scale: np.ndarray | None = None
        self.weight_zero_point: np.ndarray | None = None
        self.weight_equalization: np.ndarray | None = None

    @property
    def quantized(self) -> bool:
        """Whether the weight is stored as int8 codes + scales."""
        return self.weight_q is not None

    def quantize_int8(self, equalization: np.ndarray | None = None, asymmetric: bool = False) -> None:
        """Quantize the weight to per-output-channel int8 in place (idempotent).

        ``equalization`` (one positive scale per *input* channel, see
        :func:`repro.nn.calibration.equalization_scales`) is folded into the
        weight before rounding and divided back out of the dequantized
        master, so input channels carrying large activations are represented
        finely at the expense of channels whose error barely matters.
        ``asymmetric=True`` uses zero-point quantization
        (:func:`asymmetric_int8`) instead of the symmetric default.

        Calling this on an already-quantized layer is a **no-op**: the codes
        are already the stored form, and re-quantizing the dequantized master
        would silently compound rounding error on every deploy/load cycle.
        """
        if self.quantized:
            return
        eq = _validate_equalization(equalization, self.in_features, (self.in_features, 1), "Linear")
        values = self.weight.data if eq is None else self.weight.data * eq
        if asymmetric:
            codes, scales, zero_points = asymmetric_int8(values, axis=0)
            self.load_int8(codes, scales, zero_points=zero_points, equalization=eq)
        else:
            codes, scales = symmetric_int8(values, axis=0)
            self.load_int8(codes, scales, equalization=eq)

    def load_int8(
        self,
        codes: np.ndarray,
        scales: np.ndarray,
        zero_points: np.ndarray | None = None,
        equalization: np.ndarray | None = None,
    ) -> None:
        """Install int8 ``codes`` and per-column ``scales`` as the weight.

        The float64 master is rebuilt as ``codes * scales`` — or
        ``(codes + zero_points) * scales`` for asymmetric storage — divided
        by the per-input-channel ``equalization`` when one was folded in at
        quantization time.  The rebuild is bitwise deterministic, which is
        what makes quantized checkpoints round-trip exactly; the weight is
        frozen afterwards.
        """
        codes = np.asarray(codes)
        scales = np.asarray(scales, dtype=np.float64).reshape(1, self.out_features)
        if codes.dtype != np.int8 or codes.shape != (self.in_features, self.out_features):
            raise ModelConfigError(
                f"int8 weight must be int8 with shape {(self.in_features, self.out_features)}, "
                f"got {codes.dtype} {codes.shape}"
            )
        if zero_points is not None:
            zero_points = np.asarray(zero_points, dtype=np.float64).reshape(1, self.out_features)
        equalization = _validate_equalization(equalization, self.in_features, (self.in_features, 1), "Linear")
        self.weight_q = codes
        self.weight_scale = scales
        self.weight_zero_point = zero_points
        self.weight_equalization = equalization
        master = codes.astype(np.float64)
        if zero_points is not None:
            master = master + zero_points
        master = master * scales
        if equalization is not None:
            master = master / equalization
        self.weight.data = master
        self.weight.requires_grad = False
        self.invalidate_cast_caches()

    def forward(self, x: Tensor) -> Tensor:
        """Apply ``x @ W (+ b)``, casting masters to the active compute dtype."""
        observer = self.__dict__.get("_activation_observer")
        if observer is not None:
            observer.update(x.data)
        dtype = compute_dtype()
        if dtype == np.float64:
            weight, bias = self.weight, self.bias
        else:
            weight = Tensor(cast_cached(self, "weight", self.weight.data, dtype))
            bias = None if self.bias is None else Tensor(cast_cached(self, "bias", self.bias.data, dtype))
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out


class Embedding(Module):
    """Token-id to vector lookup table.

    Supports int8 weight storage (:meth:`quantize_int8`) with one symmetric
    scale per vocabulary row, so frequent and rare tokens each use their own
    dynamic range.  As with :class:`Linear`, the float64 master is re-derived
    from the codes and frozen, which keeps the tied LM head consistent with
    the quantized lookup table.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int, seed: int | np.random.Generator = 0):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ModelConfigError("Embedding dimensions must be positive")
        rng = seeded_rng(seed)
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight_q: np.ndarray | None = None
        self.weight_scale: np.ndarray | None = None
        self.weight_zero_point: np.ndarray | None = None
        self.weight_equalization: np.ndarray | None = None

    @property
    def quantized(self) -> bool:
        """Whether the table is stored as int8 codes + per-row scales."""
        return self.weight_q is not None

    def quantize_int8(self, equalization: np.ndarray | None = None, asymmetric: bool = False) -> None:
        """Quantize the table to per-row int8 in place (idempotent).

        ``equalization`` is one positive scale per embedding *dimension* —
        the input channels of the tied LM head projection, which is where an
        embedding's quantization error hurts decode agreement.
        ``asymmetric=True`` stores per-row zero points, which suits skewed
        embedding rows.  As with :meth:`Linear.quantize_int8`, a second call
        on an already-quantized table is a no-op rather than a
        rounding-error-compounding re-quantization.
        """
        if self.quantized:
            return
        eq = _validate_equalization(equalization, self.embedding_dim, (1, self.embedding_dim), "Embedding")
        values = self.weight.data if eq is None else self.weight.data * eq
        if asymmetric:
            codes, scales, zero_points = asymmetric_int8(values, axis=1)
            self.load_int8(codes, scales, zero_points=zero_points, equalization=eq)
        else:
            codes, scales = symmetric_int8(values, axis=1)
            self.load_int8(codes, scales, equalization=eq)

    def load_int8(
        self,
        codes: np.ndarray,
        scales: np.ndarray,
        zero_points: np.ndarray | None = None,
        equalization: np.ndarray | None = None,
    ) -> None:
        """Install int8 ``codes`` and per-row ``scales`` as the lookup table.

        Optional ``zero_points`` (per row) and ``equalization`` (per
        dimension) reconstruct asymmetric/calibrated storage; the float64
        master is rebuilt bitwise-deterministically and frozen.
        """
        codes = np.asarray(codes)
        scales = np.asarray(scales, dtype=np.float64).reshape(self.num_embeddings, 1)
        if codes.dtype != np.int8 or codes.shape != (self.num_embeddings, self.embedding_dim):
            raise ModelConfigError(
                f"int8 embedding must be int8 with shape {(self.num_embeddings, self.embedding_dim)}, "
                f"got {codes.dtype} {codes.shape}"
            )
        if zero_points is not None:
            zero_points = np.asarray(zero_points, dtype=np.float64).reshape(self.num_embeddings, 1)
        equalization = _validate_equalization(equalization, self.embedding_dim, (1, self.embedding_dim), "Embedding")
        self.weight_q = codes
        self.weight_scale = scales
        self.weight_zero_point = zero_points
        self.weight_equalization = equalization
        master = codes.astype(np.float64)
        if zero_points is not None:
            master = master + zero_points
        master = master * scales
        if equalization is not None:
            master = master / equalization
        self.weight.data = master
        self.weight.requires_grad = False
        self.invalidate_cast_caches()

    def forward(self, ids: np.ndarray) -> Tensor:
        """Look up the vectors for ``ids`` (any integer array shape)."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise ModelConfigError(
                f"token id outside embedding range [0, {self.num_embeddings}): "
                f"min={ids.min() if ids.size else None}, max={ids.max() if ids.size else None}"
            )
        return self.weight.embedding_lookup(ids)


class RMSNorm(Module):
    """Root-mean-square layer norm, the normalisation used by T5 (no mean subtraction)."""

    def __init__(self, dim: int, eps: float = 1e-6):
        super().__init__()
        self.weight = Parameter(np.ones(dim))
        self.eps = eps
        self.dim = dim

    def forward(self, x: Tensor) -> Tensor:
        """Scale ``x`` to unit RMS along the last axis, then apply the gain."""
        variance = (x * x).mean(axis=-1, keepdims=True)
        normed = x * ((variance + self.eps) ** -0.5)
        dtype = compute_dtype()
        if dtype == np.float64:
            return normed * self.weight
        return normed * Tensor(cast_cached(self, "weight", self.weight.data, dtype))


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode or at rate 0."""

    def __init__(self, rate: float = 0.0, seed: int | np.random.Generator = 0):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ModelConfigError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = seeded_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        """Randomly zero (and rescale) entries of ``x`` while training."""
        if not self.training or self.rate == 0.0:
            return x
        keep_probability = 1.0 - self.rate
        mask = self._rng.random(x.shape) < keep_probability
        return x * Tensor(mask.astype(np.float64) / keep_probability)


class FeedForward(Module):
    """The T5 position-wise feed-forward block (Linear -> activation -> Linear)."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        activation: str = "relu",
        dropout: float = 0.0,
        seed: int | np.random.Generator = 0,
    ):
        super().__init__()
        rng = seeded_rng(seed)
        self.wi = Linear(d_model, d_ff, bias=False, seed=rng)
        self.wo = Linear(d_ff, d_model, bias=False, seed=rng)
        self.dropout = Dropout(dropout, seed=rng)
        if activation not in ("relu", "gelu"):
            raise ModelConfigError(f"unknown activation {activation!r}")
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        """Apply the expand -> activate -> (dropout) -> project block."""
        hidden = self.wi(x)
        hidden = hidden.relu() if self.activation == "relu" else hidden.gelu()
        hidden = self.dropout(hidden)
        return self.wo(hidden)
