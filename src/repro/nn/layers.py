"""Neural-network modules: parameter containers and basic layers.

Precision support lives at this level too.  Master weights are always
``float64`` (:class:`Parameter` pins them); when a forward pass runs inside
:func:`repro.nn.tensor.autocast` with a reduced compute dtype, layers cast
their masters on the fly through a per-module memo (:func:`cast_cached`).
:class:`Linear` and :class:`Embedding` additionally support symmetric
per-row **int8 weight quantization** (:meth:`Linear.quantize_int8`): the
int8 codes plus their scales become the persisted form of the weight, and
the float master is re-derived from them so compute at any dtype sees the
quantized values.  See ``docs/numerics.md``.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import ModelConfigError
from repro.nn.tensor import Tensor, compute_dtype
from repro.utils.rng import seeded_rng


def cast_cached(module: "Module", slot: str, source: np.ndarray, dtype, transform=None) -> np.ndarray:
    """``source`` cast to ``dtype`` (optionally through ``transform``), memoized.

    The memo lives on ``module`` under ``slot`` and is keyed by the *identity*
    of ``source``, so reassigning a parameter's ``data`` (``load_state_dict``,
    :meth:`Linear.load_int8`) invalidates it automatically.  In-place
    mutation (an optimizer step) does not change identity; the cache is
    therefore also dropped whenever a module transitions between train and
    eval mode — the protocol every training loop in the repo follows — and
    can be dropped explicitly via :meth:`Module.invalidate_cast_caches`.
    """
    if transform is None and source.dtype == dtype:
        return source
    cache = module.__dict__.setdefault("_cast_cache", {})
    entry = cache.get(slot)
    if entry is not None and entry[0] is source and entry[1] == dtype:
        return entry[2]
    cast = np.ascontiguousarray(transform(source) if transform is not None else source, dtype=dtype)
    cache[slot] = (source, dtype, cast)
    return cast


def symmetric_int8(values: np.ndarray, axis: int) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric int8 quantization of ``values`` with one scale per slice of ``axis``.

    Every slice along ``axis`` is mapped to ``round(values / scale)`` clipped
    to ``[-127, 127]``, where ``scale = max(|slice|) / 127`` (all-zero slices
    get scale 1.0 so dequantization is exact).  Returns ``(codes, scales)``
    with ``scales`` keeping the reduced axis as size 1, so
    ``codes * scales`` broadcasts back to the original shape.
    """
    values = np.asarray(values, dtype=np.float64)
    scales = np.max(np.abs(values), axis=axis, keepdims=True) / 127.0
    scales = np.where(scales == 0.0, 1.0, scales)
    codes = np.clip(np.rint(values / scales), -127, 127).astype(np.int8)
    return codes, scales


class Parameter(Tensor):
    """A tensor that is always trainable and discoverable by :class:`Module`.

    Master parameter storage is pinned to ``float64`` regardless of any
    active :func:`~repro.nn.tensor.autocast` scope — reduced precision is a
    property of *compute*, never of the stored weights.
    """

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)
        # Re-derive the master from the *source* data, not from ``self.data``:
        # inside an autocast scope the base constructor casts through the
        # compute dtype, which would silently round float64 initial values.
        self.data = np.asarray(data, dtype=np.float64)
        # Parameters must remain trainable even when created inside ``no_grad``.
        self.requires_grad = True


class Module:
    """Base class providing parameter discovery, train/eval mode and state dicts."""

    def __init__(self):
        self.training = True

    # -- parameter discovery ------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` for every parameter in the tree."""
        for attr_name, value in vars(self).items():
            full_name = f"{prefix}{attr_name}"
            if isinstance(value, Parameter):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{index}.")
                    elif isinstance(item, Parameter):
                        yield f"{full_name}.{index}", item

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` for this module and every submodule.

        Traversal mirrors :meth:`named_parameters`, so a submodule reachable
        through several attributes (e.g. a shared embedding) is yielded once
        per path — callers that must visit each instance once should dedupe
        by identity.
        """
        yield prefix[:-1] if prefix.endswith(".") else prefix, self
        for attr_name, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.named_modules(prefix=f"{prefix}{attr_name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(prefix=f"{prefix}{attr_name}.{index}.")

    def parameters(self) -> list[Parameter]:
        """Every :class:`Parameter` reachable from this module, in discovery order."""
        return [parameter for _, parameter in self.named_parameters()]

    def invalidate_cast_caches(self) -> None:
        """Drop every memoized reduced-precision weight cast in this tree.

        Needed only after mutating parameter data in place outside the
        train/eval protocol (mode transitions drop the memos automatically).
        """
        for _, module in self.named_modules():
            module.__dict__.pop("_cast_cache", None)

    def num_parameters(self) -> int:
        """Total scalar parameters in the tree."""
        return int(sum(parameter.size for parameter in self.parameters()))

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- train / eval --------------------------------------------------------
    def train(self) -> "Module":
        """Switch the tree to training mode; returns ``self``."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Switch the tree to inference mode; returns ``self``."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        if training != self.training:
            # A mode transition brackets any in-place weight mutation the
            # optimizer made, so it is the safe point to drop stale casts.
            self.__dict__.pop("_cast_cache", None)
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- quantization ----------------------------------------------------------
    def quantize_int8(self) -> None:
        """Int8-quantize every not-yet-quantized :class:`Linear`/:class:`Embedding` below.

        Leaf modules override this with the actual per-weight quantization;
        the generic version walks the tree once per module *instance* (a
        shared submodule is quantized once, however many attributes reach
        it).  Quantized weights are frozen, so a quantized model is
        inference-only.
        """
        seen: set[int] = set()
        for _, module in self.named_modules():
            if isinstance(module, (Linear, Embedding)) and id(module) not in seen:
                seen.add(id(module))
                if not module.quantized:
                    module.quantize_int8()

    @property
    def any_quantized(self) -> bool:
        """Whether any submodule stores int8-quantized weights."""
        return any(
            isinstance(module, (Linear, Embedding)) and module.quantized
            for _, module in self.named_modules()
        )

    # -- persistence -----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Every parameter as a ``name -> float64 array`` mapping (copies).

        Quantized weights appear in their dequantized float64 form; use
        :meth:`int8_state_dict` to persist the codes + scales instead.
        """
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def int8_state_dict(self) -> dict[str, np.ndarray]:
        """Like :meth:`state_dict`, but quantized weights stay int8.

        Each quantized weight ``<name>`` is replaced by two entries,
        ``<name>.int8`` (the int8 codes) and ``<name>.int8_scale`` (the
        per-row float scales) — roughly an 8x size reduction for the
        quantized share of the parameters.  :meth:`load_state_dict` accepts
        both formats.
        """
        state = self.state_dict()
        for name, module in self.named_modules():
            if isinstance(module, (Linear, Embedding)) and module.quantized:
                key = f"{name}.weight" if name else "weight"
                state.pop(key, None)
                state[f"{key}.int8"] = module.weight_q.copy()
                state[f"{key}.int8_scale"] = module.weight_scale.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Install ``state`` (a :meth:`state_dict` or :meth:`int8_state_dict`).

        ``<name>.int8`` / ``<name>.int8_scale`` pairs are routed to the owning
        module's ``load_int8`` (quantizing it if it was not already); a plain
        float entry arriving for a currently-quantized weight clears that
        module's int8 storage — the checkpoint defines the storage format.
        """
        state = dict(state)
        quantized: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for key in [k for k in state if k.endswith(".int8")]:
            base = key[: -len(".int8")]
            scale_key = f"{base}.int8_scale"
            if scale_key not in state:
                raise ModelConfigError(f"int8 entry {key!r} is missing its {scale_key!r} scales")
            quantized[base] = (np.asarray(state.pop(key)), np.asarray(state.pop(scale_key)))
        # Validate everything BEFORE the first mutation, so a rejected state
        # dict leaves the model untouched rather than partially overwritten.
        modules = dict(self.named_modules())
        targets: dict[str, "Linear | Embedding"] = {}
        for base in quantized:
            module_name, _, leaf = base.rpartition(".")
            module = modules.get(module_name)
            if leaf != "weight" or not isinstance(module, (Linear, Embedding)):
                raise ModelConfigError(f"int8 entry {base!r} does not name a Linear/Embedding weight")
            targets[base] = module
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state) - set(quantized))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            raise ModelConfigError(f"state dict mismatch: missing={missing} unexpected={unexpected}")
        for base, (codes, scales) in quantized.items():
            targets[base].load_int8(codes, scales)
        for name, parameter in own.items():
            if name in quantized:
                continue  # installed via load_int8 above
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ModelConfigError(
                    f"shape mismatch for {name}: expected {parameter.data.shape}, got {value.shape}"
                )
            module_name, _, leaf = name.rpartition(".")
            owner = modules.get(module_name)
            if leaf == "weight" and isinstance(owner, (Linear, Embedding)) and owner.quantized:
                owner.weight_q = None
                owner.weight_scale = None
                parameter.requires_grad = True
                owner.invalidate_cast_caches()
            parameter.data = value.copy()

    # -- call protocol ------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        """Compute the module's output (subclasses must override)."""
        raise NotImplementedError


class Linear(Module):
    """A dense layer ``y = x W + b`` with Glorot-style initialisation.

    Supports int8 weight storage (:meth:`quantize_int8`): the weight matrix
    is replaced by per-output-channel symmetric int8 codes plus float scales
    (one scale per column of ``W``, i.e. per row of the conventional
    ``(out, in)`` weight view), and the float64 master is re-derived as
    ``codes * scales`` so every compute path — float64 or an autocast
    float32 pass — sees the identical quantized values.  Quantized layers are
    frozen: their weight stops requiring gradients.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: int | np.random.Generator = 0):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ModelConfigError("Linear dimensions must be positive")
        rng = seeded_rng(seed)
        scale = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-scale, scale, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features
        self.weight_q: np.ndarray | None = None
        self.weight_scale: np.ndarray | None = None

    @property
    def quantized(self) -> bool:
        """Whether the weight is stored as int8 codes + scales."""
        return self.weight_q is not None

    def quantize_int8(self) -> None:
        """Quantize the weight to symmetric per-output-channel int8 in place."""
        if self.quantized:
            raise ModelConfigError("Linear is already int8-quantized")
        self.load_int8(*symmetric_int8(self.weight.data, axis=0))

    def load_int8(self, codes: np.ndarray, scales: np.ndarray) -> None:
        """Install int8 ``codes`` and per-column ``scales`` as the weight.

        The float64 master is rebuilt as ``codes * scales`` (bitwise
        deterministic, which is what makes quantized checkpoints round-trip
        exactly) and frozen.
        """
        codes = np.asarray(codes)
        scales = np.asarray(scales, dtype=np.float64).reshape(1, self.out_features)
        if codes.dtype != np.int8 or codes.shape != (self.in_features, self.out_features):
            raise ModelConfigError(
                f"int8 weight must be int8 with shape {(self.in_features, self.out_features)}, "
                f"got {codes.dtype} {codes.shape}"
            )
        self.weight_q = codes
        self.weight_scale = scales
        self.weight.data = codes.astype(np.float64) * scales
        self.weight.requires_grad = False
        self.invalidate_cast_caches()

    def forward(self, x: Tensor) -> Tensor:
        """Apply ``x @ W (+ b)``, casting masters to the active compute dtype."""
        dtype = compute_dtype()
        if dtype == np.float64:
            weight, bias = self.weight, self.bias
        else:
            weight = Tensor(cast_cached(self, "weight", self.weight.data, dtype))
            bias = None if self.bias is None else Tensor(cast_cached(self, "bias", self.bias.data, dtype))
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out


class Embedding(Module):
    """Token-id to vector lookup table.

    Supports int8 weight storage (:meth:`quantize_int8`) with one symmetric
    scale per vocabulary row, so frequent and rare tokens each use their own
    dynamic range.  As with :class:`Linear`, the float64 master is re-derived
    from the codes and frozen, which keeps the tied LM head consistent with
    the quantized lookup table.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int, seed: int | np.random.Generator = 0):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ModelConfigError("Embedding dimensions must be positive")
        rng = seeded_rng(seed)
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight_q: np.ndarray | None = None
        self.weight_scale: np.ndarray | None = None

    @property
    def quantized(self) -> bool:
        """Whether the table is stored as int8 codes + per-row scales."""
        return self.weight_q is not None

    def quantize_int8(self) -> None:
        """Quantize the table to symmetric per-row int8 in place."""
        if self.quantized:
            raise ModelConfigError("Embedding is already int8-quantized")
        self.load_int8(*symmetric_int8(self.weight.data, axis=1))

    def load_int8(self, codes: np.ndarray, scales: np.ndarray) -> None:
        """Install int8 ``codes`` and per-row ``scales`` as the lookup table."""
        codes = np.asarray(codes)
        scales = np.asarray(scales, dtype=np.float64).reshape(self.num_embeddings, 1)
        if codes.dtype != np.int8 or codes.shape != (self.num_embeddings, self.embedding_dim):
            raise ModelConfigError(
                f"int8 embedding must be int8 with shape {(self.num_embeddings, self.embedding_dim)}, "
                f"got {codes.dtype} {codes.shape}"
            )
        self.weight_q = codes
        self.weight_scale = scales
        self.weight.data = codes.astype(np.float64) * scales
        self.weight.requires_grad = False
        self.invalidate_cast_caches()

    def forward(self, ids: np.ndarray) -> Tensor:
        """Look up the vectors for ``ids`` (any integer array shape)."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise ModelConfigError(
                f"token id outside embedding range [0, {self.num_embeddings}): "
                f"min={ids.min() if ids.size else None}, max={ids.max() if ids.size else None}"
            )
        return self.weight.embedding_lookup(ids)


class RMSNorm(Module):
    """Root-mean-square layer norm, the normalisation used by T5 (no mean subtraction)."""

    def __init__(self, dim: int, eps: float = 1e-6):
        super().__init__()
        self.weight = Parameter(np.ones(dim))
        self.eps = eps
        self.dim = dim

    def forward(self, x: Tensor) -> Tensor:
        """Scale ``x`` to unit RMS along the last axis, then apply the gain."""
        variance = (x * x).mean(axis=-1, keepdims=True)
        normed = x * ((variance + self.eps) ** -0.5)
        dtype = compute_dtype()
        if dtype == np.float64:
            return normed * self.weight
        return normed * Tensor(cast_cached(self, "weight", self.weight.data, dtype))


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode or at rate 0."""

    def __init__(self, rate: float = 0.0, seed: int | np.random.Generator = 0):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ModelConfigError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = seeded_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        """Randomly zero (and rescale) entries of ``x`` while training."""
        if not self.training or self.rate == 0.0:
            return x
        keep_probability = 1.0 - self.rate
        mask = self._rng.random(x.shape) < keep_probability
        return x * Tensor(mask.astype(np.float64) / keep_probability)


class FeedForward(Module):
    """The T5 position-wise feed-forward block (Linear -> activation -> Linear)."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        activation: str = "relu",
        dropout: float = 0.0,
        seed: int | np.random.Generator = 0,
    ):
        super().__init__()
        rng = seeded_rng(seed)
        self.wi = Linear(d_model, d_ff, bias=False, seed=rng)
        self.wo = Linear(d_ff, d_model, bias=False, seed=rng)
        self.dropout = Dropout(dropout, seed=rng)
        if activation not in ("relu", "gelu"):
            raise ModelConfigError(f"unknown activation {activation!r}")
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        """Apply the expand -> activate -> (dropout) -> project block."""
        hidden = self.wi(x)
        hidden = hidden.relu() if self.activation == "relu" else hidden.gelu()
        hidden = self.dropout(hidden)
        return self.wo(hidden)
