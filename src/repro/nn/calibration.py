"""Activation-aware int8 calibration: statistics, equalization, mixed precision.

Weight-max quantization (:func:`repro.nn.layers.symmetric_int8` alone) spends
its 127 levels uniformly across input channels, but decode error is anything
but uniform: the logit damage of rounding ``W_ij`` is proportional to the
activation magnitude ``|x_i|`` flowing through it, and a handful of modules
(the tied LM head above all) sit directly on the argmax decisions.  This
module supplies the three tools that close the gap, in the SmoothQuant/AWQ
tradition:

* **Activation statistics** — :func:`collect_activation_stats` runs a
  held-out calibration set through the model with lightweight observers
  attached to every quantizable module (:class:`ActivationObserver` records
  per-input-channel absmax and a high percentile), including the tied LM
  head's input via :meth:`~repro.nn.transformer.T5Model.lm_logits`.
* **Outlier migration (equalization)** — :func:`equalization_scales` builds
  the per-channel scale ``s = act_max^alpha / weight_max^(1-alpha)``, rounded
  to **powers of two**, which the layer folds into the weight before rounding
  and divides back out of the dequantized master.  Power-of-two scales only
  shift float exponents, so the fold is *bitwise transparent* on the
  unrounded weight — folding and unfolding reproduces the original weight
  exactly in any float dtype (the property suite asserts it) — and every bit
  of the int8 budget the fold reallocates is pure redistribution, not added
  noise.
* **Mixed-precision policy** — :func:`sensitivity_scan` measures each
  module's solo teacher-forced argmax flip rate against the float64
  reference trajectory (a dense per-step signal; see
  :func:`calibrate_policy` for why whole-trajectory agreement is too sparse
  to search on), and :func:`calibrate_policy` pins the worst offenders to
  float32 storage (a :class:`QuantPolicy`) until the expected trajectory
  agreement meets the target, under a byte budget that preserves the
  checkpoint-compression win.  The policy is persisted in
  the checkpoint and the deployment manifest, so a registry can reconstruct
  the exact calibrated model (see ``docs/numerics.md``).

The high-level entry point is :meth:`repro.core.model.DataVisT5.calibrate`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
import json

import numpy as np

from repro.errors import ModelConfigError
from repro.nn.layers import Embedding, Linear, Module, asymmetric_int8, symmetric_int8
from repro.nn.tensor import autocast, no_grad

#: Per-module quantization modes a :class:`QuantPolicy` may assign.
QUANT_MODES = ("int8", "int8_asym", "float32")

#: Hard clip on equalization exponents: 2**+-12 keeps folded weights far from
#: float subnormal/overflow territory, where exponent shifts stop being exact.
_MAX_EQ_EXPONENT = 12


def quantizable_modules(model: Module) -> list[tuple[str, "Linear | Embedding"]]:
    """Every quantizable module of ``model``, deduplicated by identity.

    Returns ``(canonical_name, module)`` pairs where the canonical name is
    the module's *first* traversal name — a tied embedding reachable through
    several attributes appears once, under the same name
    ``Module.state_dict`` uses for its weight.  This is the naming contract
    :class:`QuantPolicy` keys its per-module decisions on.
    """
    seen: set[int] = set()
    result: list[tuple[str, Linear | Embedding]] = []
    for name, module in model.named_modules():
        if isinstance(module, (Linear, Embedding)) and id(module) not in seen:
            seen.add(id(module))
            result.append((name, module))
    return result


@dataclass
class ActivationStats:
    """Per-input-channel activation statistics of one module.

    ``absmax`` and ``percentile`` are one entry per input channel (a
    Linear's ``in_features``; the embedding dimension for the tied LM head);
    ``samples`` counts the activation rows observed.  ``percentile`` is the
    running maximum of per-update ``percentile_q`` percentiles of ``|x|`` —
    an outlier-robust range estimate that large one-off spikes cannot
    dominate the way they dominate ``absmax``.
    """

    absmax: np.ndarray
    percentile: np.ndarray
    samples: int
    percentile_q: float

    def range_per_channel(self) -> np.ndarray:
        """The per-channel activation range equalization should flatten.

        The percentile estimate where it is informative, widened to at least
        the scale where a channel's percentile collapsed to zero but its
        absmax did not (rare, dead-most-of-the-time channels).
        """
        return np.where(self.percentile > 0.0, self.percentile, self.absmax)


class ActivationObserver:
    """Accumulates per-channel absmax / percentile over forward-pass inputs.

    Attached to a module's ``_activation_observer`` slot (see
    :func:`observe_activations`); :meth:`update` is called by the module's
    forward pass with the raw input array and reduces it over all leading
    axes, so any batch/sequence shape feeds the same per-channel statistics.
    """

    def __init__(self, percentile_q: float = 99.9):
        if not 0.0 < percentile_q <= 100.0:
            raise ModelConfigError(f"percentile_q must be in (0, 100], got {percentile_q}")
        self.percentile_q = percentile_q
        self._absmax: np.ndarray | None = None
        self._percentile: np.ndarray | None = None
        self._samples = 0

    def update(self, values: np.ndarray) -> None:
        """Fold one batch of activations ``(..., channels)`` into the stats."""
        values = np.abs(np.asarray(values, dtype=np.float64)).reshape(-1, np.asarray(values).shape[-1])
        if values.size == 0:
            return
        batch_absmax = values.max(axis=0)
        batch_percentile = np.percentile(values, self.percentile_q, axis=0)
        if self._absmax is None:
            self._absmax = batch_absmax
            self._percentile = batch_percentile
        else:
            np.maximum(self._absmax, batch_absmax, out=self._absmax)
            np.maximum(self._percentile, batch_percentile, out=self._percentile)
        self._samples += values.shape[0]

    def stats(self) -> ActivationStats | None:
        """The accumulated :class:`ActivationStats`, or ``None`` if nothing was observed."""
        if self._absmax is None:
            return None
        return ActivationStats(
            absmax=self._absmax.copy(),
            percentile=self._percentile.copy(),
            samples=self._samples,
            percentile_q=self.percentile_q,
        )


@contextmanager
def observe_activations(model: Module, percentile_q: float = 99.9):
    """Attach an :class:`ActivationObserver` to every quantizable module.

    Yields ``{canonical_name: observer}``; observers record while the caller
    runs calibration data through the model, and are detached on exit no
    matter how the block ends.  :class:`~repro.nn.layers.Linear` modules
    observe their forward input; the shared embedding observes the tied LM
    head's input (:meth:`~repro.nn.transformer.T5Model.lm_logits`).
    """
    observers: dict[str, ActivationObserver] = {}
    attached: list[Linear | Embedding] = []
    try:
        for name, module in quantizable_modules(model):
            observer = ActivationObserver(percentile_q=percentile_q)
            observers[name] = observer
            module._activation_observer = observer
            attached.append(module)
        yield observers
    finally:
        for module in attached:
            module.__dict__.pop("_activation_observer", None)


def collect_activation_stats(
    model: Module,
    input_ids: np.ndarray,
    max_length: int | None = None,
    percentile_q: float = 99.9,
) -> dict[str, ActivationStats]:
    """Run a greedy float64 decode of ``input_ids`` under observation.

    Returns ``{canonical_module_name: ActivationStats}`` for every module
    that saw activations — the statistics that drive
    :func:`equalization_scales`.  The decode mirrors how the quantized model
    will actually be used (encoder pass + incremental decoding), so the
    recorded ranges cover decode-time activations, not just teacher-forced
    ones.
    """
    with observe_activations(model, percentile_q=percentile_q) as observers:
        model.generate(input_ids, max_length=max_length, dtype="float64")
    stats: dict[str, ActivationStats] = {}
    for name, observer in observers.items():
        collected = observer.stats()
        if collected is not None:
            stats[name] = collected
    return stats


def equalization_scales(
    weight_absmax: np.ndarray, activation_range: np.ndarray, alpha: float = 0.5
) -> np.ndarray:
    """The SmoothQuant-style per-channel equalization ``s``, power-of-two rounded.

    ``s_i = act_i^alpha / w_i^(1-alpha)`` balances how much of each input
    channel's dynamic range lives in the activations versus the weights;
    folding ``s`` into the weight before rounding gives channels with large
    activations finer int8 representation exactly where rounding error is
    amplified most.  The raw scales are normalized (so the vector only
    *redistributes* precision), rounded to the nearest power of two — which
    makes the fold bitwise-exact on the unrounded weight, since multiplying
    and dividing by ``2**k`` only shifts float exponents — and clipped to
    ``2**+-12``.  Channels with zero activation or weight range take scale 1.
    ``alpha`` in ``[0, 1]``: 0 ignores activations entirely (pure per-channel
    weight-range flattening — :func:`module_equalization` skips the fold
    altogether in that case), 1 ignores weights.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ModelConfigError(f"equalization alpha must be in [0, 1], got {alpha}")
    weight_absmax = np.asarray(weight_absmax, dtype=np.float64).reshape(-1)
    activation_range = np.asarray(activation_range, dtype=np.float64).reshape(-1)
    if weight_absmax.shape != activation_range.shape:
        raise ModelConfigError(
            f"weight/activation channel counts differ: {weight_absmax.shape} vs {activation_range.shape}"
        )
    valid = (weight_absmax > 0.0) & (activation_range > 0.0)
    raw = np.ones_like(weight_absmax)
    raw[valid] = activation_range[valid] ** alpha / weight_absmax[valid] ** (1.0 - alpha)
    # Normalize so the scales redistribute precision instead of globally
    # rescaling the weight (the median valid channel keeps scale ~1).
    if valid.any():
        raw /= np.median(raw[valid])
    exponents = np.clip(np.rint(np.log2(raw)), -_MAX_EQ_EXPONENT, _MAX_EQ_EXPONENT)
    return np.exp2(exponents)


def module_equalization(
    module: "Linear | Embedding", stats: ActivationStats | None, alpha: float
) -> np.ndarray | None:
    """The equalization vector for one module, or ``None`` when unavailable.

    Maps the module's weight layout onto the shared per-input-channel form:
    a Linear's channels are its ``in_features`` (weight absmax over output
    columns); an Embedding's channels are the embedding dimensions as seen
    by the tied LM head (weight absmax over vocabulary rows).  With no
    recorded stats, or ``alpha == 0``, there is nothing to migrate.
    """
    if stats is None or alpha == 0.0:
        return None
    if isinstance(module, Linear):
        weight_absmax = np.max(np.abs(module.weight.data), axis=1)
    else:
        weight_absmax = np.max(np.abs(module.weight.data), axis=0)
    if stats.absmax.size != weight_absmax.size:
        raise ModelConfigError(
            f"activation stats have {stats.absmax.size} channels, module expects {weight_absmax.size}"
        )
    return equalization_scales(weight_absmax, stats.range_per_channel(), alpha)


def token_agreement(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Fraction of token positions where two decodes of the same batch agree.

    The decodes may be **length-mismatched** (reduced precision can change
    where EOS lands, changing the padded width): positions are compared up
    to the shorter width and every position of the longer tail counts as
    disagreement — the denominator is ``batch * max(width_a, width_b)``.  A
    batch-size mismatch is a caller bug and raises.
    """
    reference = np.atleast_2d(np.asarray(reference))
    candidate = np.atleast_2d(np.asarray(candidate))
    if reference.shape[0] != candidate.shape[0]:
        raise ModelConfigError(
            f"token_agreement needs same-batch decodes, got {reference.shape[0]} vs {candidate.shape[0]} rows"
        )
    width = max(reference.shape[1], candidate.shape[1])
    if reference.shape[0] == 0 or width == 0:
        return 1.0
    overlap = min(reference.shape[1], candidate.shape[1])
    agreed = int((reference[:, :overlap] == candidate[:, :overlap]).sum())
    return agreed / float(reference.shape[0] * width)


@dataclass(frozen=True)
class QuantPolicy:
    """A calibrated mixed-precision quantization policy.

    ``modes`` maps canonical module names (:func:`quantizable_modules`) to a
    :data:`QUANT_MODES` entry — ``"int8"`` (symmetric), ``"int8_asym"``
    (zero-point), or ``"float32"`` (pinned out of int8 entirely; stored as
    float32, which still halves the float64 footprint).  ``alpha`` is the
    equalization knob the policy was calibrated with;
    ``target_agreement`` / ``calibration_samples`` record provenance.  The
    JSON round trip (:meth:`as_dict` / :meth:`from_dict`) is strict — the
    policy travels inside ``weights.npz`` and the deployment manifest, and a
    hand-edited copy must fail loudly.
    """

    modes: dict[str, str] = field(default_factory=dict)
    alpha: float = 0.5
    target_agreement: float | None = None
    calibration_samples: int = 0

    def __post_init__(self):
        if not isinstance(self.modes, dict):
            raise ModelConfigError("QuantPolicy modes must be a dict of module name -> mode")
        for name, mode in self.modes.items():
            if not isinstance(name, str) or not name:
                raise ModelConfigError(f"QuantPolicy module names must be non-empty strings, got {name!r}")
            if mode not in QUANT_MODES:
                raise ModelConfigError(
                    f"unknown quantization mode {mode!r} for {name!r}; known: {', '.join(QUANT_MODES)}"
                )
        if not 0.0 <= self.alpha <= 1.0:
            raise ModelConfigError(f"QuantPolicy alpha must be in [0, 1], got {self.alpha}")
        if self.target_agreement is not None and not 0.0 <= self.target_agreement <= 1.0:
            raise ModelConfigError(f"QuantPolicy target_agreement must be in [0, 1], got {self.target_agreement}")
        if not isinstance(self.calibration_samples, int) or self.calibration_samples < 0:
            raise ModelConfigError("QuantPolicy calibration_samples must be a non-negative integer")

    def mode_for(self, name: str) -> str:
        """The mode assigned to ``name`` (symmetric int8 when unlisted)."""
        return self.modes.get(name, "int8")

    @property
    def float32_modules(self) -> tuple[str, ...]:
        """Module names the policy pins out of int8, sorted."""
        return tuple(sorted(name for name, mode in self.modes.items() if mode == "float32"))

    # -- serialization -------------------------------------------------------
    def as_dict(self) -> dict:
        """A JSON-ready view; :meth:`from_dict` is the exact inverse."""
        return {
            "modes": dict(sorted(self.modes.items())),
            "alpha": self.alpha,
            "target_agreement": self.target_agreement,
            "calibration_samples": self.calibration_samples,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuantPolicy":
        """Rebuild (and re-validate) a policy; unknown keys raise."""
        if not isinstance(payload, dict):
            raise ModelConfigError(f"QuantPolicy payload must be a dict, got {type(payload).__name__}")
        known = {"modes", "alpha", "target_agreement", "calibration_samples"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ModelConfigError(f"unknown QuantPolicy fields: {', '.join(unknown)}")
        data = dict(payload)
        if "modes" in data and isinstance(data["modes"], dict):
            data["modes"] = dict(data["modes"])
        return cls(**data)

    def to_json(self) -> str:
        """The policy as a compact JSON document (checkpoint / artifact form)."""
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "QuantPolicy":
        """Parse :meth:`to_json` output (strict)."""
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as error:
            raise ModelConfigError(f"QuantPolicy JSON is invalid: {error}") from None
        return cls.from_dict(payload)


def _restore_float(module: "Linear | Embedding", data: np.ndarray, requires_grad: bool) -> None:
    """Put a module back into (possibly trial-quantized) float form."""
    module.weight_q = None
    module.weight_scale = None
    module.weight_zero_point = None
    module.weight_equalization = None
    module.weight.data = data
    module.weight.requires_grad = requires_grad
    module.invalidate_cast_caches()


def _quantize_module(
    module: "Linear | Embedding", mode: str, stats: ActivationStats | None, alpha: float
) -> None:
    """Quantize one module per ``mode``, folding in equalization when available."""
    if mode == "float32":
        # Pinned to float32 *storage*: snap the master through float32 so the
        # in-memory model is bitwise what a save/load cycle reconstructs.
        module.weight.data = module.weight.data.astype(np.float32).astype(np.float64)
        module.invalidate_cast_caches()
        return
    equalization = module_equalization(module, stats, alpha)
    module.quantize_int8(equalization=equalization, asymmetric=(mode == "int8_asym"))


def _embedding_mode(module: Embedding, stats: ActivationStats | None, alpha: float) -> str:
    """Pick symmetric vs zero-point storage for an embedding by reconstruction error."""
    equalization = module_equalization(module, stats, alpha)
    values = module.weight.data if equalization is None else module.weight.data * (
        equalization.reshape(1, -1)
    )
    sym_codes, sym_scales = symmetric_int8(values, axis=1)
    sym_error = np.abs(values - sym_codes.astype(np.float64) * sym_scales).max()
    asym_codes, asym_scales, asym_zp = asymmetric_int8(values, axis=1)
    asym_error = np.abs(values - (asym_codes.astype(np.float64) + asym_zp) * asym_scales).max()
    return "int8_asym" if asym_error < sym_error else "int8"


def apply_policy(
    model: Module,
    policy: QuantPolicy,
    stats: dict[str, ActivationStats] | None = None,
) -> None:
    """Quantize ``model`` in place according to ``policy``.

    Every quantizable module takes its policy mode (``"int8"`` when
    unlisted); ``stats`` supplies the activation ranges for equalization —
    without them (e.g. re-applying a persisted policy to a float checkpoint)
    the mode decisions still apply, with plain weight-max scales.  Policy
    names that match no module raise, and a policy that pins *everything* to
    float32 is rejected — an int8 model must keep at least one quantized
    module, or ``precision="int8"`` stops meaning anything.
    """
    stats = stats or {}
    modules = quantizable_modules(model)
    known = {name for name, _ in modules}
    unknown = sorted(set(policy.modes) - known)
    if unknown:
        raise ModelConfigError(f"QuantPolicy names unknown modules: {', '.join(unknown)}")
    if all(policy.mode_for(name) == "float32" for name, _ in modules):
        raise ModelConfigError("QuantPolicy pins every module to float32; nothing would be int8")
    for name, module in modules:
        if not module.quantized:
            _quantize_module(module, policy.mode_for(name), stats.get(name), policy.alpha)


class _StepReference:
    """Per-step reference decisions of the float64 model on a calibration set.

    One autoregressive float64 decode fixes the reference trajectory; one
    teacher-forced float64 forward pass over that trajectory gives each
    step's reference logits, argmax and top-1/top-2 margin.  Everything
    downstream compares against these step decisions, which turns a handful
    of calibration sequences into ``batch * length`` independent argmax
    observations — dense enough to expose a quantizer whose per-step flip
    probability is far below one flip per calibration *trajectory* (the
    regime where whole-trajectory agreement, a binary per-sequence signal,
    sees nothing at all).
    """

    def __init__(self, model: Module, input_ids: np.ndarray, max_length: int | None):
        self.input_ids = input_ids
        self.trajectory = model.generate(input_ids, max_length=max_length, dtype="float64")
        with no_grad():
            self.logits = model(input_ids, labels=self.trajectory)["logits"].data
        self.top = self.logits.argmax(axis=-1)
        top2 = np.partition(self.logits, -2, axis=-1)[..., -2:]
        self.margin = top2[..., 1] - top2[..., 0]
        pad_id = getattr(getattr(model, "config", None), "pad_id", None)
        self.mask = (
            np.ones(self.trajectory.shape, dtype=bool) if pad_id is None else self.trajectory != pad_id
        )
        self.horizon = max(int(self.trajectory.shape[1]), 1)

    def step_risk(self, model: Module) -> tuple[float, float]:
        """``(flip_rate, margin_risk_rate)`` of a quantized model on the reference.

        Teacher-forced at float32 — the compute dtype int8 serving actually
        runs — over the float64 reference trajectory, so every step is
        evaluated at the exact decoder states the reference visited.
        ``flip_rate`` counts steps whose argmax actually changed;
        ``margin_risk_rate`` counts steps where twice the worst logit
        perturbation reaches the reference top-1/top-2 margin — a
        conservative certificate that stays informative when zero flips are
        observed (an unflipped step with an eaten-up margin is one unlucky
        input away from flipping).
        """
        with no_grad(), autocast("float32"):
            logits = model(self.input_ids, labels=self.trajectory)["logits"].data.astype(np.float64)
        flips = (logits.argmax(axis=-1) != self.top) & self.mask
        perturbation = np.abs(logits - self.logits).max(axis=-1)
        risky = (2.0 * perturbation >= self.margin) & self.mask
        steps = float(max(int(self.mask.sum()), 1))
        return float(flips.sum()) / steps, float(risky.sum()) / steps


def sensitivity_scan(
    model: Module,
    input_ids: np.ndarray,
    stats: dict[str, ActivationStats] | None = None,
    alpha: float = 0.5,
    max_length: int | None = None,
) -> dict[str, float]:
    """Per-module damage of quantizing that module *alone*.

    For each quantizable module: quantize it (with equalization from
    ``stats``), measure its teacher-forced per-step flip rate plus margin
    risk against the unquantized float64 reference (see
    :func:`calibrate_policy` for why per-step risk rather than
    whole-trajectory agreement), and restore the module exactly.  Returns
    ``{canonical_name: risk_score}`` where the score is the flip rate plus
    the margin-risk rate; :func:`calibrate_policy` pins the largest
    offenders first.  The model must be unquantized.
    """
    modules = quantizable_modules(model)
    if any(module.quantized for _, module in modules):
        raise ModelConfigError("sensitivity_scan needs an unquantized model")
    stats = stats or {}
    reference = _StepReference(model, input_ids, max_length)
    damages: dict[str, float] = {}
    for name, module in modules:
        saved = (module.weight.data, module.weight.requires_grad)
        _quantize_module(module, "int8", stats.get(name), alpha)
        try:
            flip_rate, margin_risk = reference.step_risk(model)
        finally:
            _restore_float(module, *saved)
        damages[name] = flip_rate + margin_risk
    return damages


def calibrate_policy(
    model: Module,
    input_ids: np.ndarray,
    alpha: float = 0.5,
    target_agreement: float = 0.995,
    max_float_fraction: float = 0.10,
    max_length: int | None = None,
    percentile_q: float = 99.9,
    max_margin_risk: float = 0.05,
) -> tuple[QuantPolicy, dict[str, ActivationStats]]:
    """Full calibration: stats, sensitivity scan, and mixed-precision search.

    Collects activation statistics over ``input_ids``, scans per-module
    sensitivity, then greedily pins the most damaging modules to float32
    until the candidate policy passes validation or the float32 budget
    (``max_float_fraction`` of quantizable parameters; float32 storage costs
    4x int8) is spent.  At least one module always stays int8.  Returns the
    :class:`QuantPolicy` plus the statistics (needed to *apply* the policy
    with equalization); the model itself is left unquantized.

    **Validation criterion.**  A candidate is accepted when both hold on the
    calibration set, teacher-forced at float32 over the float64 reference
    trajectory (:class:`_StepReference`):

    * its per-step argmax flip rate ``r`` satisfies
      ``r * horizon <= 1 - target_agreement`` (``horizon`` = reference
      decode length) — the *expected* trajectory disagreement, assuming the
      worst case where one flipped step derails the rest of its sequence,
      stays within the target;
    * its margin-risk rate — the fraction of steps where twice the worst
      logit perturbation reaches the reference top-1/top-2 margin — is at
      most ``max_margin_risk``.

    Whole-trajectory agreement on the calibration set would be the literal
    target metric, but it is a binary per-sequence signal: a quantizer that
    flips one step in a thousand derails only a few percent of *deployed*
    trajectories, so a few dozen calibration sequences usually contain no
    diverging trajectory at all and the search would under-pin.  The flip
    rate pools every decode step into the estimate; the margin-risk
    certificate goes one further and stays informative even at zero observed
    flips, where a quantizer may be silently one unlucky input away from
    flipping on served traffic.
    """
    modules = quantizable_modules(model)
    if any(module.quantized for _, module in modules):
        raise ModelConfigError("calibrate_policy needs an unquantized model")
    if not 0.0 <= max_float_fraction <= 1.0:
        raise ModelConfigError(f"max_float_fraction must be in [0, 1], got {max_float_fraction}")
    if not 0.0 <= target_agreement <= 1.0:
        raise ModelConfigError(f"target_agreement must be in [0, 1], got {target_agreement}")
    if not 0.0 < max_margin_risk <= 1.0:
        raise ModelConfigError(f"max_margin_risk must be in (0, 1], got {max_margin_risk}")
    by_name = dict(modules)
    stats = collect_activation_stats(model, input_ids, max_length=max_length, percentile_q=percentile_q)
    damages = sensitivity_scan(model, input_ids, stats=stats, alpha=alpha, max_length=max_length)
    reference = _StepReference(model, input_ids, max_length)
    allowed_flip_rate = (1.0 - target_agreement) / reference.horizon

    modes: dict[str, str] = {}
    for name, module in modules:
        if isinstance(module, Embedding):
            modes[name] = _embedding_mode(module, stats.get(name), alpha)

    saved = {name: (module.weight.data, module.weight.requires_grad) for name, module in modules}

    def trial_risk() -> tuple[float, float]:
        policy = QuantPolicy(modes=dict(modes), alpha=alpha)
        try:
            apply_policy(model, policy, stats)
            return reference.step_risk(model)
        finally:
            for name, module in modules:
                _restore_float(module, *saved[name])

    def acceptable(risk: tuple[float, float]) -> bool:
        flip_rate, margin_risk = risk
        return flip_rate <= allowed_flip_rate and margin_risk <= max_margin_risk

    total_params = sum(module.weight.data.size for _, module in modules)
    budget = int(max_float_fraction * total_params)
    pinned_params = 0
    order = sorted(damages, key=lambda name: damages[name], reverse=True)
    achieved = trial_risk()
    for name in order:
        if acceptable(achieved):
            break
        size = by_name[name].weight.data.size
        if pinned_params + size > budget:
            continue  # over budget; try the next (smaller) offender
        if sum(1 for n, _ in modules if modes.get(n) != "float32") <= 1:
            break  # never pin the last int8 module
        modes[name] = "float32"
        pinned_params += size
        achieved = trial_risk()

    policy = QuantPolicy(
        modes=modes,
        alpha=alpha,
        target_agreement=target_agreement,
        calibration_samples=int(np.atleast_2d(np.asarray(input_ids)).shape[0]),
    )
    return policy, stats
