"""GRU sequence-to-sequence models with attention.

These implement the *Seq2Vis* baseline of the paper (an attention-equipped
encoder--decoder recurrent network, originally from Luo et al. 2021) and are
reused by the vis-to-text / table-to-text / FeVisQA baselines labelled
"Seq2Seq" in the evaluation tables.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelConfigError
from repro.nn import functional as F
from repro.nn.layers import Embedding, Linear, Module
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import derive_seed, seeded_rng


class GRUCell(Module):
    """A single gated recurrent unit cell."""

    def __init__(self, input_size: int, hidden_size: int, seed: int | np.random.Generator = 0):
        super().__init__()
        rng = seeded_rng(seed)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.reset_gate = Linear(input_size + hidden_size, hidden_size, seed=rng)
        self.update_gate = Linear(input_size + hidden_size, hidden_size, seed=rng)
        self.candidate = Linear(input_size + hidden_size, hidden_size, seed=rng)

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        """One GRU step combining input ``x`` with the previous ``hidden`` state."""
        combined = Tensor.concatenate([x, hidden], axis=-1)
        reset = self.reset_gate(combined).sigmoid()
        update = self.update_gate(combined).sigmoid()
        candidate_input = Tensor.concatenate([x, reset * hidden], axis=-1)
        candidate = self.candidate(candidate_input).tanh()
        return update * hidden + (1.0 - update) * candidate


class GRUEncoder(Module):
    """Runs a GRU over the source sequence and returns all hidden states."""

    def __init__(self, vocab_size: int, embedding_dim: int, hidden_size: int, pad_id: int = 0, seed: int = 0):
        super().__init__()
        self.embedding = Embedding(vocab_size, embedding_dim, seed=derive_seed(seed, "enc_embed"))
        self.cell = GRUCell(embedding_dim, hidden_size, seed=derive_seed(seed, "enc_cell"))
        self.hidden_size = hidden_size
        self.pad_id = pad_id

    def forward(self, input_ids: np.ndarray) -> tuple[Tensor, Tensor]:
        """Encode ``input_ids``; returns per-step states and the final state."""
        input_ids = np.asarray(input_ids, dtype=np.int64)
        batch, length = input_ids.shape
        embedded = self.embedding(input_ids)
        hidden = Tensor(np.zeros((batch, self.hidden_size)))
        states = []
        for t in range(length):
            step = embedded[:, t, :]
            new_hidden = self.cell(step, hidden)
            # Padding positions carry the previous hidden state forward.
            keep = (input_ids[:, t] != self.pad_id).astype(np.float64)[:, None]
            hidden = new_hidden * Tensor(keep) + hidden * Tensor(1.0 - keep)
            states.append(hidden)
        return Tensor.stack(states, axis=1), hidden


class AttentionGRUDecoder(Module):
    """A GRU decoder with Luong-style dot-product attention over encoder states."""

    def __init__(self, vocab_size: int, embedding_dim: int, hidden_size: int, seed: int = 0):
        super().__init__()
        self.embedding = Embedding(vocab_size, embedding_dim, seed=derive_seed(seed, "dec_embed"))
        self.cell = GRUCell(embedding_dim + hidden_size, hidden_size, seed=derive_seed(seed, "dec_cell"))
        self.attention_proj = Linear(hidden_size, hidden_size, bias=False, seed=derive_seed(seed, "dec_attn"))
        self.output_proj = Linear(hidden_size * 2, vocab_size, seed=derive_seed(seed, "dec_out"))
        self.hidden_size = hidden_size
        self.vocab_size = vocab_size

    def step(
        self,
        token_ids: np.ndarray,
        hidden: Tensor,
        encoder_states: Tensor,
        encoder_mask: np.ndarray,
    ) -> tuple[Tensor, Tensor]:
        """One decoding step; returns (logits, new_hidden)."""
        embedded = self.embedding(np.asarray(token_ids, dtype=np.int64))
        query = self.attention_proj(hidden)  # (B, H)
        scores = (encoder_states @ query.reshape(query.shape[0], self.hidden_size, 1)).reshape(
            encoder_states.shape[0], encoder_states.shape[1]
        )
        scores = scores.masked_fill(~np.asarray(encoder_mask, dtype=bool), -1e9)
        weights = F.softmax(scores, axis=-1)
        context = (weights.reshape(weights.shape[0], 1, weights.shape[1]) @ encoder_states).reshape(
            encoder_states.shape[0], self.hidden_size
        )
        cell_input = Tensor.concatenate([embedded, context], axis=-1)
        new_hidden = self.cell(cell_input, hidden)
        logits = self.output_proj(Tensor.concatenate([new_hidden, context], axis=-1))
        return logits, new_hidden


class Seq2SeqModel(Module):
    """Encoder--decoder GRU with attention (the Seq2Vis / Seq2Seq baseline)."""

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int = 48,
        hidden_size: int = 64,
        pad_id: int = 0,
        eos_id: int = 1,
        bos_id: int = 3,
        max_decode_length: int = 96,
        seed: int = 0,
    ):
        super().__init__()
        if vocab_size <= 0:
            raise ModelConfigError("vocab_size must be positive")
        self.encoder = GRUEncoder(vocab_size, embedding_dim, hidden_size, pad_id=pad_id, seed=derive_seed(seed, "encoder"))
        self.decoder = AttentionGRUDecoder(vocab_size, embedding_dim, hidden_size, seed=derive_seed(seed, "decoder"))
        self.pad_id = pad_id
        self.eos_id = eos_id
        self.bos_id = bos_id
        self.max_decode_length = max_decode_length

    def forward(self, input_ids: np.ndarray, labels: np.ndarray) -> dict:
        """Teacher-forced forward pass returning ``loss`` and ``logits``."""
        input_ids = np.asarray(input_ids, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        encoder_states, hidden = self.encoder(input_ids)
        encoder_mask = input_ids != self.pad_id
        batch, target_length = labels.shape
        previous = np.full(batch, self.bos_id, dtype=np.int64)
        step_logits = []
        for t in range(target_length):
            logits, hidden = self.decoder.step(previous, hidden, encoder_states, encoder_mask)
            step_logits.append(logits)
            previous = labels[:, t]
        logits = Tensor.stack(step_logits, axis=1)
        loss = F.sequence_cross_entropy(logits, labels, pad_id=self.pad_id)
        return {"logits": logits, "loss": loss}

    def generate(self, input_ids: np.ndarray, max_length: int | None = None) -> np.ndarray:
        """Greedy decoding."""
        input_ids = np.atleast_2d(np.asarray(input_ids, dtype=np.int64))
        max_length = max_length or self.max_decode_length
        with no_grad():
            encoder_states, hidden = self.encoder(input_ids)
            encoder_mask = input_ids != self.pad_id
            batch = input_ids.shape[0]
            previous = np.full(batch, self.bos_id, dtype=np.int64)
            finished = np.zeros(batch, dtype=bool)
            outputs = []
            for _ in range(max_length):
                logits, hidden = self.decoder.step(previous, hidden, encoder_states, encoder_mask)
                next_tokens = logits.numpy().argmax(axis=-1)
                next_tokens = np.where(finished, self.pad_id, next_tokens)
                outputs.append(next_tokens)
                finished |= next_tokens == self.eos_id
                previous = next_tokens
                if finished.all():
                    break
        if not outputs:
            return np.zeros((batch, 0), dtype=np.int64)
        return np.stack(outputs, axis=1)
