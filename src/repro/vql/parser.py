"""Recursive-descent parser turning DV query text into :class:`DVQuery` ASTs.

A DV query is the paper's visualization query language (§II): a SQL-like
``SELECT`` core prefixed with ``VISUALIZE <chart type>`` and optionally
suffixed with a ``BIN ... BY`` clause for temporal bucketing, e.g.::

    visualize bar select artist.country , count ( artist.country )
    from artist group by artist.country order by artist.country asc

The grammar implemented here covers everything the synthetic nvBench
generator emits and everything the paper's examples use: the seven chart
types (including the multi-word ``stacked bar`` / ``grouping line`` /
``grouping scatter``), aggregates, multi-way joins, ``WHERE`` conjunctions
(with scalar subqueries), ``GROUP BY``, ``ORDER BY`` and ``BIN BY``.

:func:`parse_dv_query` is the single public entry point; everything else in
this module is the ``_parse_*`` helper for one grammar production, each
consuming tokens from a shared :class:`_TokenStream` cursor.  Malformed input
raises :class:`repro.errors.VQLSyntaxError` with the offending token
position.  Parsing is pure and deterministic, which is what lets the serving
layer memoize text -> AST in an LRU cache.
"""

from __future__ import annotations

from repro.errors import VQLSyntaxError
from repro.vql.ast import (
    AGGREGATE_FUNCTIONS,
    TIME_BIN_UNITS,
    AggregateExpr,
    BinClause,
    ChartType,
    ColumnRef,
    Condition,
    DVQuery,
    JoinClause,
    OrderByClause,
    SortDirection,
    Subquery,
)
from repro.vql.lexer import Token, tokenize

_MULTI_WORD_CHARTS = {"stacked": "bar", "grouping": ("line", "scatter")}


class _TokenStream:
    """A cursor over the token list with convenience checks."""

    def __init__(self, tokens: list[Token], text: str):
        self.tokens = tokens
        self.text = text
        self.index = 0

    def peek(self, offset: int = 0) -> Token | None:
        position = self.index + offset
        if position < len(self.tokens):
            return self.tokens[position]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise VQLSyntaxError(f"unexpected end of DV query: {self.text!r}")
        self.index += 1
        return token

    def expect_word(self, *expected: str) -> Token:
        token = self.next()
        if token.kind != "word" or token.lowered() not in expected:
            raise VQLSyntaxError(
                f"expected {' or '.join(expected)!s} but found {token.value!r} at position {token.position}",
                position=token.position,
            )
        return token

    def expect_symbol(self, symbol: str) -> Token:
        token = self.next()
        if token.kind != "symbol" or token.value != symbol:
            raise VQLSyntaxError(
                f"expected {symbol!r} but found {token.value!r} at position {token.position}",
                position=token.position,
            )
        return token

    def match_word(self, *candidates: str) -> bool:
        token = self.peek()
        return token is not None and token.kind == "word" and token.lowered() in candidates

    def match_symbol(self, symbol: str) -> bool:
        token = self.peek()
        return token is not None and token.kind == "symbol" and token.value == symbol

    def exhausted(self) -> bool:
        return self.index >= len(self.tokens)


def parse_dv_query(text: str) -> DVQuery:
    """Parse DV query ``text`` into a :class:`DVQuery`.

    The parser accepts both the raw annotation style (uppercase keywords,
    table aliases introduced by ``AS``, ``count(*)``) and the standardized
    style; aliases are resolved to their table names during parsing.

    The returned AST is unstandardized — pass it through
    :func:`repro.vql.standardize.standardize_dv_query` to apply the paper's
    five normalization rules (lowercasing, alias elimination, explicit
    qualification, wildcard replacement, canonical spacing) before comparing
    queries or executing them.

    Raises :class:`repro.errors.VQLSyntaxError` when ``text`` deviates from
    the grammar, including trailing tokens after a complete query.
    """
    stream = _TokenStream(tokenize(text), text)
    stream.expect_word("visualize")
    chart_type = _parse_chart_type(stream)

    stream.expect_word("select")
    aliases: dict[str, str] = {}
    select = _parse_select_list(stream, aliases)

    stream.expect_word("from")
    from_table = _parse_table_name(stream, aliases)

    joins: list[JoinClause] = []
    while stream.match_word("join"):
        joins.append(_parse_join(stream, aliases))

    where: list[Condition] = []
    if stream.match_word("where"):
        stream.next()
        where.append(_parse_condition(stream, aliases))
        while stream.match_word("and"):
            stream.next()
            where.append(_parse_condition(stream, aliases))

    group_by: list[ColumnRef] = []
    if stream.match_word("group"):
        stream.next()
        stream.expect_word("by")
        group_by.append(_resolve_alias(_parse_column_ref(stream), aliases))
        while stream.match_symbol(","):
            stream.next()
            group_by.append(_resolve_alias(_parse_column_ref(stream), aliases))

    order_by = None
    if stream.match_word("order"):
        stream.next()
        stream.expect_word("by")
        expression = _parse_select_item(stream, aliases)
        direction = SortDirection.ASC
        if stream.match_word("asc", "desc"):
            direction = SortDirection(stream.next().lowered())
        order_by = OrderByClause(expression=expression, direction=direction)

    bin_clause = None
    if stream.match_word("bin"):
        stream.next()
        column = _resolve_alias(_parse_column_ref(stream), aliases)
        stream.expect_word("by")
        unit_token = stream.expect_word(*TIME_BIN_UNITS)
        bin_clause = BinClause(column=column, unit=unit_token.lowered())

    if not stream.exhausted():
        trailing = stream.peek()
        raise VQLSyntaxError(
            f"unexpected trailing token {trailing.value!r} at position {trailing.position}",
            position=trailing.position,
        )

    query = DVQuery(
        chart_type=chart_type,
        select=tuple(select),
        from_table=from_table,
        joins=tuple(joins),
        where=tuple(where),
        group_by=tuple(group_by),
        order_by=order_by,
        bin=bin_clause,
    )
    return _resolve_query_aliases(query, aliases)


# -- clause parsers ---------------------------------------------------------------


def _parse_chart_type(stream: _TokenStream) -> ChartType:
    token = stream.next()
    if token.kind != "word":
        raise VQLSyntaxError(f"expected a chart type, found {token.value!r}", position=token.position)
    first = token.lowered()
    if first in ("stacked", "grouping"):
        second = stream.next()
        try:
            return ChartType.from_text(f"{first} {second.lowered()}")
        except ValueError as exc:
            raise VQLSyntaxError(str(exc), position=token.position) from exc
    try:
        return ChartType.from_text(first)
    except ValueError as exc:
        raise VQLSyntaxError(str(exc), position=token.position) from exc


def _parse_select_list(stream: _TokenStream, aliases: dict[str, str]) -> list[AggregateExpr]:
    items = [_parse_select_item(stream, aliases)]
    while stream.match_symbol(","):
        stream.next()
        items.append(_parse_select_item(stream, aliases))
    return items


def _parse_select_item(stream: _TokenStream, aliases: dict[str, str]) -> AggregateExpr:
    token = stream.peek()
    if token is None:
        raise VQLSyntaxError("unexpected end of DV query while parsing a select item")
    if token.kind == "word" and token.lowered() in AGGREGATE_FUNCTIONS and _is_open_paren(stream.peek(1)):
        function = stream.next().lowered()
        stream.expect_symbol("(")
        distinct = False
        if stream.match_word("distinct"):
            stream.next()
            distinct = True
        column = _parse_column_ref(stream)
        stream.expect_symbol(")")
        return AggregateExpr(column=_resolve_alias(column, aliases), function=function, distinct=distinct)
    column = _parse_column_ref(stream)
    return AggregateExpr(column=_resolve_alias(column, aliases), function=None)


def _is_open_paren(token: Token | None) -> bool:
    return token is not None and token.kind == "symbol" and token.value == "("


def _parse_column_ref(stream: _TokenStream) -> ColumnRef:
    token = stream.next()
    if token.kind != "word":
        raise VQLSyntaxError(f"expected a column reference, found {token.value!r}", position=token.position)
    value = token.value
    if "." in value and value != "*":
        table, column = value.split(".", 1)
        return ColumnRef(column=column.lower(), table=table.lower())
    return ColumnRef(column=value.lower() if value != "*" else "*")


def _parse_table_name(stream: _TokenStream, aliases: dict[str, str]) -> str:
    token = stream.next()
    if token.kind != "word":
        raise VQLSyntaxError(f"expected a table name, found {token.value!r}", position=token.position)
    table = token.lowered()
    if stream.match_word("as"):
        stream.next()
        alias_token = stream.next()
        aliases[alias_token.lowered()] = table
    return table


def _parse_join(stream: _TokenStream, aliases: dict[str, str]) -> JoinClause:
    stream.expect_word("join")
    table = _parse_table_name(stream, aliases)
    stream.expect_word("on")
    left = _parse_column_ref(stream)
    stream.expect_symbol("=")
    right = _parse_column_ref(stream)
    return JoinClause(table=table, left=_resolve_alias(left, aliases), right=_resolve_alias(right, aliases))


def _parse_condition(stream: _TokenStream, aliases: dict[str, str]) -> Condition:
    left = _resolve_alias(_parse_column_ref(stream), aliases)
    operator = _parse_operator(stream)
    value = _parse_value(stream, aliases)
    return Condition(left=left, operator=operator, value=value)


def _parse_operator(stream: _TokenStream) -> str:
    token = stream.next()
    if token.kind == "symbol" and token.value in ("=", "!=", ">", "<", ">=", "<="):
        return token.value
    if token.kind == "word":
        word = token.lowered()
        if word == "like":
            return "like"
        if word == "in":
            return "in"
        if word == "not":
            stream.expect_word("in")
            return "not in"
    raise VQLSyntaxError(f"expected a comparison operator, found {token.value!r}", position=token.position)


def _parse_value(stream: _TokenStream, aliases: dict[str, str]):
    token = stream.peek()
    if token is None:
        raise VQLSyntaxError("unexpected end of DV query while parsing a literal")
    if token.kind == "symbol" and token.value == "(":
        return _parse_subquery(stream, aliases)
    token = stream.next()
    if token.kind == "string":
        return token.value
    if token.kind == "number":
        number = float(token.value)
        return int(number) if number.is_integer() else number
    if token.kind == "word":
        # Unquoted literals occur in hand-written queries; keep them as strings.
        return token.value
    raise VQLSyntaxError(f"expected a literal value, found {token.value!r}", position=token.position)


def _parse_subquery(stream: _TokenStream, aliases: dict[str, str]) -> Subquery:
    stream.expect_symbol("(")
    stream.expect_word("select")
    select = _parse_select_item(stream, aliases)
    stream.expect_word("from")
    from_table = _parse_table_name(stream, aliases)
    joins: list[JoinClause] = []
    while stream.match_word("join"):
        joins.append(_parse_join(stream, aliases))
    where: list[Condition] = []
    if stream.match_word("where"):
        stream.next()
        where.append(_parse_condition(stream, aliases))
        while stream.match_word("and"):
            stream.next()
            where.append(_parse_condition(stream, aliases))
    stream.expect_symbol(")")
    return Subquery(select=select, from_table=from_table, joins=tuple(joins), where=tuple(where))


# -- alias resolution ----------------------------------------------------------------


def _resolve_alias(ref: ColumnRef, aliases: dict[str, str]) -> ColumnRef:
    if ref.table and ref.table in aliases:
        return ColumnRef(column=ref.column, table=aliases[ref.table])
    return ref


def _resolve_query_aliases(query: DVQuery, aliases: dict[str, str]) -> DVQuery:
    """Re-resolve aliases recorded after some clauses were already parsed.

    ``FROM t AS T1`` registers the alias after the SELECT list has been read,
    so select items referencing ``T1.x`` need a second resolution pass.
    """
    if not aliases:
        return query

    def fix(ref: ColumnRef) -> ColumnRef:
        return _resolve_alias(ref, aliases)

    select = tuple(
        AggregateExpr(column=fix(item.column), function=item.function, distinct=item.distinct) for item in query.select
    )
    joins = tuple(JoinClause(table=j.table, left=fix(j.left), right=fix(j.right)) for j in query.joins)
    where = tuple(
        Condition(left=fix(c.left), operator=c.operator, value=c.value) for c in query.where
    )
    group_by = tuple(fix(col) for col in query.group_by)
    order_by = query.order_by
    if order_by is not None:
        expression = AggregateExpr(
            column=fix(order_by.expression.column),
            function=order_by.expression.function,
            distinct=order_by.expression.distinct,
        )
        order_by = OrderByClause(expression=expression, direction=order_by.direction)
    bin_clause = query.bin
    if bin_clause is not None:
        bin_clause = BinClause(column=fix(bin_clause.column), unit=bin_clause.unit)
    return DVQuery(
        chart_type=query.chart_type,
        select=select,
        from_table=query.from_table,
        joins=joins,
        where=where,
        group_by=group_by,
        order_by=order_by,
        bin=bin_clause,
    )
