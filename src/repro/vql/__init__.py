"""The DV query language (VQL).

A DV query is the SQL-like intermediate representation introduced by the
DeepEye / nvBench line of work: it specifies a chart type (``visualize bar``)
plus the data operations (``select ... from ... group by ... order by ...``)
needed to produce the chart's data.  DataVisT5 treats DV queries as plain
token sequences; this package gives the rest of the reproduction a *typed*
view of them — parsing, validation against a schema, standardized encoding
(the five normalisation rules of §III-D of the paper) and component-wise
comparison for the EM metric family.
"""

from repro.vql.ast import (
    AggregateExpr,
    BinClause,
    ChartType,
    ColumnRef,
    Condition,
    DVQuery,
    JoinClause,
    OrderByClause,
    SortDirection,
    Subquery,
)
from repro.vql.lexer import Token, tokenize
from repro.vql.parser import parse_dv_query
from repro.vql.standardize import standardize_dv_query, standardize_text
from repro.vql.validation import validate_dv_query

__all__ = [
    "AggregateExpr",
    "BinClause",
    "ChartType",
    "ColumnRef",
    "Condition",
    "DVQuery",
    "JoinClause",
    "OrderByClause",
    "SortDirection",
    "Subquery",
    "Token",
    "tokenize",
    "parse_dv_query",
    "standardize_dv_query",
    "standardize_text",
    "validate_dv_query",
]
