"""Standardized encoding of DV queries (§III-D of the paper).

NVBench queries were annotated by many people with different habits, so the
paper normalises them before training with five rules:

1. qualify every selected column with its table (``col`` → ``T.col``) and
   replace ``count(*)`` by ``count(T.col)``;
2. put spaces around parentheses and use single quotes for string literals;
3. append ``asc`` to ORDER BY clauses without an explicit direction;
4. drop ``AS`` aliases and substitute the real table names;
5. lowercase everything.

Rules 2-5 are properties of our canonical AST serialization and of the
parser, so this module's job is rule 1: resolving which table each
unqualified column belongs to (using the database schema when available) and
choosing the replacement column for ``count(*)``.
"""

from __future__ import annotations

from repro.errors import VQLValidationError
from repro.database.schema import DatabaseSchema
from repro.vql.ast import (
    AggregateExpr,
    BinClause,
    ColumnRef,
    Condition,
    DVQuery,
    JoinClause,
    OrderByClause,
    Subquery,
)
from repro.vql.parser import parse_dv_query


def standardize_text(text: str, schema: DatabaseSchema | None = None) -> str:
    """Parse raw DV query text and return its standardized form."""
    return standardize_dv_query(parse_dv_query(text), schema=schema).to_text()


def standardize_dv_query(query: DVQuery, schema: DatabaseSchema | None = None) -> DVQuery:
    """Return a standardized copy of ``query``.

    When ``schema`` is given, unqualified columns are attributed to the table
    of the query that actually contains them; otherwise they are attributed
    to the primary (FROM) table, matching the paper's "affix the primary
    table name" phrasing.
    """
    tables = query.tables()

    def qualify(ref: ColumnRef) -> ColumnRef:
        if ref.is_wildcard or ref.table:
            return ref
        if schema is not None:
            owner = schema.find_column_table(ref.column, candidate_tables=tables)
            if owner is not None:
                return ColumnRef(column=ref.column, table=owner)
        return ColumnRef(column=ref.column, table=query.from_table)

    wildcard_replacement = _wildcard_replacement(query, schema, qualify)

    def fix_item(item: AggregateExpr) -> AggregateExpr:
        column = item.column
        if column.is_wildcard:
            if item.function != "count":
                raise VQLValidationError("'*' is only valid inside count()")
            column = wildcard_replacement
        return AggregateExpr(column=qualify(column), function=item.function, distinct=item.distinct)

    select = tuple(fix_item(item) for item in query.select)
    joins = tuple(JoinClause(table=j.table, left=qualify(j.left), right=qualify(j.right)) for j in query.joins)
    where = tuple(_fix_condition(cond, qualify, wildcard_replacement) for cond in query.where)
    group_by = tuple(qualify(col) for col in query.group_by)
    order_by = None
    if query.order_by is not None:
        order_by = OrderByClause(expression=fix_item(query.order_by.expression), direction=query.order_by.direction)
    bin_clause = None
    if query.bin is not None:
        bin_clause = BinClause(column=qualify(query.bin.column), unit=query.bin.unit)

    return DVQuery(
        chart_type=query.chart_type,
        select=select,
        from_table=query.from_table,
        joins=joins,
        where=where,
        group_by=group_by,
        order_by=order_by,
        bin=bin_clause,
    )


def _wildcard_replacement(query: DVQuery, schema: DatabaseSchema | None, qualify) -> ColumnRef:
    """The column that replaces ``*`` inside ``count(*)``.

    Preference order, mirroring the paper's worked example (where
    ``COUNT(*)`` becomes ``count(player.years_played)``): the first grouped
    column, then the first non-aggregate selected column, then the primary
    key / first column of the FROM table, and finally a generic ``*`` left
    unchanged when nothing better is known.
    """
    if query.group_by:
        return qualify(query.group_by[0])
    for item in query.select:
        if not item.is_aggregate and not item.column.is_wildcard:
            return qualify(item.column)
    if schema is not None and schema.has_table(query.from_table):
        table = schema.table(query.from_table)
        column_name = table.primary_key or table.columns[0].name
        return ColumnRef(column=column_name, table=table.name)
    return ColumnRef(column="*")


def _fix_condition(condition: Condition, qualify, wildcard_replacement: ColumnRef) -> Condition:
    value = condition.value
    if isinstance(value, str):
        # Rule 5: the whole query, including string literals, is lowercased.
        value = value.lower()
    if isinstance(value, Subquery):
        select = value.select
        column = select.column
        if column.is_wildcard:
            column = wildcard_replacement
        fixed_select = AggregateExpr(column=qualify(column), function=select.function, distinct=select.distinct)
        value = Subquery(
            select=fixed_select,
            from_table=value.from_table,
            joins=tuple(JoinClause(table=j.table, left=qualify(j.left), right=qualify(j.right)) for j in value.joins),
            where=tuple(_fix_condition(inner, qualify, wildcard_replacement) for inner in value.where),
        )
    return Condition(left=qualify(condition.left), operator=condition.operator, value=value)
