"""Typed abstract syntax tree for DV queries."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ChartType(str, enum.Enum):
    """Chart types supported by the DV query grammar (the nvBench set)."""

    BAR = "bar"
    PIE = "pie"
    LINE = "line"
    SCATTER = "scatter"
    STACKED_BAR = "stacked bar"
    GROUPING_LINE = "grouping line"
    GROUPING_SCATTER = "grouping scatter"

    @classmethod
    def from_text(cls, text: str) -> "ChartType":
        """Parse a chart-type keyword (case-insensitive)."""
        normalized = " ".join(text.lower().split())
        for member in cls:
            if member.value == normalized:
                return member
        raise ValueError(f"unknown chart type: {text!r}")


class SortDirection(str, enum.Enum):
    """Sort order of an ORDER BY clause (``asc`` / ``desc``)."""
    ASC = "asc"
    DESC = "desc"


AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "max", "min")

TIME_BIN_UNITS = ("year", "month", "weekday", "day")


@dataclass(frozen=True)
class ColumnRef:
    """A reference to a column, optionally qualified by its table name.

    ``column`` may be ``"*"`` only inside ``count(*)`` before standardization.
    """

    column: str
    table: str | None = None

    def to_text(self) -> str:
        """Render back to DV-query text."""
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column

    @property
    def is_wildcard(self) -> bool:
        """Whether this is the ``*`` column."""
        return self.column == "*"

    def qualified(self, table: str) -> "ColumnRef":
        """Return a copy qualified with ``table`` if not already qualified."""
        if self.table or self.is_wildcard:
            return self
        return ColumnRef(column=self.column, table=table)


@dataclass(frozen=True)
class AggregateExpr:
    """A select-list item: a bare column or an aggregate over a column."""

    column: ColumnRef
    function: str | None = None
    distinct: bool = False

    def __post_init__(self):
        if self.function is not None and self.function not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown aggregate function: {self.function!r}")

    def to_text(self) -> str:
        """Render back to DV-query text."""
        if self.function is None:
            return self.column.to_text()
        inner = self.column.to_text()
        if self.distinct:
            inner = f"distinct {inner}"
        return f"{self.function} ( {inner} )"

    @property
    def is_aggregate(self) -> bool:
        """Whether an aggregate function is applied."""
        return self.function is not None


@dataclass(frozen=True)
class JoinClause:
    """An equi-join against ``table`` on ``left = right``."""

    table: str
    left: ColumnRef
    right: ColumnRef

    def to_text(self) -> str:
        """Render back to DV-query text."""
        return f"join {self.table} on {self.left.to_text()} = {self.right.to_text()}"


@dataclass(frozen=True)
class Subquery:
    """A one-level nested ``select`` used inside IN / NOT IN conditions."""

    select: AggregateExpr
    from_table: str
    joins: tuple[JoinClause, ...] = ()
    where: tuple["Condition", ...] = ()

    def to_text(self) -> str:
        """Render back to DV-query text."""
        parts = [f"select {self.select.to_text()}", f"from {self.from_table}"]
        parts.extend(join.to_text() for join in self.joins)
        if self.where:
            parts.append("where " + " and ".join(cond.to_text() for cond in self.where))
        return "( " + " ".join(parts) + " )"


COMPARISON_OPERATORS = ("=", "!=", ">", "<", ">=", "<=", "like", "in", "not in")


@dataclass(frozen=True)
class Condition:
    """A WHERE predicate ``left <operator> value``."""

    left: ColumnRef
    operator: str
    value: str | float | int | Subquery

    def __post_init__(self):
        if self.operator not in COMPARISON_OPERATORS:
            raise ValueError(f"unknown comparison operator: {self.operator!r}")

    def to_text(self) -> str:
        """Render back to DV-query text."""
        if isinstance(self.value, Subquery):
            rendered = self.value.to_text()
        elif isinstance(self.value, str):
            rendered = f"'{self.value}'"
        else:
            rendered = format_number(self.value)
        return f"{self.left.to_text()} {self.operator} {rendered}"


@dataclass(frozen=True)
class OrderByClause:
    """ORDER BY over a select-list expression with an explicit direction."""

    expression: AggregateExpr
    direction: SortDirection = SortDirection.ASC

    def to_text(self) -> str:
        """Render back to DV-query text."""
        return f"order by {self.expression.to_text()} {self.direction.value}"


@dataclass(frozen=True)
class BinClause:
    """``bin <column> by <unit>`` — temporal bucketing of an axis."""

    column: ColumnRef
    unit: str

    def __post_init__(self):
        if self.unit not in TIME_BIN_UNITS:
            raise ValueError(f"unknown bin unit: {self.unit!r}")

    def to_text(self) -> str:
        """Render back to DV-query text."""
        return f"bin {self.column.to_text()} by {self.unit}"


def format_number(value: float | int) -> str:
    """Format a numeric literal without a trailing ``.0`` for integral values."""
    if isinstance(value, bool):
        raise TypeError("boolean literals are not valid in DV queries")
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


@dataclass(frozen=True)
class DVQuery:
    """A complete DV query."""

    chart_type: ChartType
    select: tuple[AggregateExpr, ...]
    from_table: str
    joins: tuple[JoinClause, ...] = ()
    where: tuple[Condition, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    order_by: OrderByClause | None = None
    bin: BinClause | None = None

    def __post_init__(self):
        if not self.select:
            raise ValueError("a DV query must select at least one expression")

    # -- serialization -------------------------------------------------------
    def to_text(self) -> str:
        """The canonical text form used for model training and EM comparison."""
        parts = [
            f"visualize {self.chart_type.value}",
            "select " + " , ".join(item.to_text() for item in self.select),
            f"from {self.from_table}",
        ]
        parts.extend(join.to_text() for join in self.joins)
        if self.where:
            parts.append("where " + " and ".join(cond.to_text() for cond in self.where))
        if self.group_by:
            parts.append("group by " + " , ".join(col.to_text() for col in self.group_by))
        if self.order_by is not None:
            parts.append(self.order_by.to_text())
        if self.bin is not None:
            parts.append(self.bin.to_text())
        return " ".join(parts)

    def __str__(self) -> str:
        return self.to_text()

    # -- structural accessors ---------------------------------------------------
    @property
    def has_join(self) -> bool:
        """Whether the query joins tables."""
        return bool(self.joins)

    def tables(self) -> list[str]:
        """All table names touched by the query (FROM plus JOINs)."""
        names = [self.from_table]
        names.extend(join.table for join in self.joins)
        return names

    def columns(self) -> list[ColumnRef]:
        """Every column reference appearing anywhere in the query."""
        refs: list[ColumnRef] = []
        for item in self.select:
            refs.append(item.column)
        for join in self.joins:
            refs.extend([join.left, join.right])
        for cond in self.where:
            refs.append(cond.left)
            if isinstance(cond.value, Subquery):
                refs.append(cond.value.select.column)
                for join in cond.value.joins:
                    refs.extend([join.left, join.right])
                for inner in cond.value.where:
                    refs.append(inner.left)
        refs.extend(self.group_by)
        if self.order_by is not None:
            refs.append(self.order_by.expression.column)
        if self.bin is not None:
            refs.append(self.bin.column)
        return refs

    # -- EM metric components -----------------------------------------------------
    def vis_component(self) -> str:
        """The visualization-type component used by the Vis EM metric."""
        return self.chart_type.value

    def axis_component(self) -> tuple[str, ...]:
        """The axis (x/y/z) configuration used by the Axis EM metric."""
        return tuple(item.to_text() for item in self.select)

    def data_component(self) -> dict[str, object]:
        """Data selection + transformation functions, used by the Data EM metric."""
        return {
            "from": self.from_table,
            "joins": tuple(sorted(join.to_text() for join in self.joins)),
            "where": tuple(sorted(cond.to_text() for cond in self.where)),
            "group_by": tuple(col.to_text() for col in self.group_by),
            "order_by": self.order_by.to_text() if self.order_by else None,
            "bin": self.bin.to_text() if self.bin else None,
            "aggregations": tuple(sorted(item.to_text() for item in self.select if item.is_aggregate)),
        }
