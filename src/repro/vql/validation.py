"""Semantic validation of DV queries against a database schema.

Validation powers two things: the dataset generators assert that every
synthetic query they emit is well-formed, and FeVisQA Type-2 questions ("is
this DV suitable for the given dataset?") are answered by checking whether a
query validates against the schema it is paired with.
"""

from __future__ import annotations

from repro.errors import VQLValidationError
from repro.database.schema import ColumnType, DatabaseSchema
from repro.vql.ast import AggregateExpr, ChartType, ColumnRef, DVQuery, Subquery

_NUMERIC_AGGREGATES = ("sum", "avg")


def validate_dv_query(query: DVQuery, schema: DatabaseSchema, strict_types: bool = True) -> None:
    """Raise :class:`VQLValidationError` if ``query`` is inconsistent with ``schema``."""
    known_tables = set(schema.table_names())
    for table in query.tables():
        if table not in known_tables:
            raise VQLValidationError(f"unknown table {table!r} (database {schema.name!r})")

    for ref in query.columns():
        _check_column(ref, query, schema)

    for condition in query.where:
        if isinstance(condition.value, Subquery):
            _validate_subquery(condition.value, schema)

    if strict_types:
        for item in query.select:
            _check_aggregate_types(item, query, schema)
        if query.order_by is not None:
            _check_aggregate_types(query.order_by.expression, query, schema)
        if query.bin is not None:
            owner = _owning_table(query.bin.column, query, schema)
            column = schema.table(owner).column(query.bin.column.column)
            if column.ctype != ColumnType.TIME:
                raise VQLValidationError(
                    f"bin clause requires a time column, {owner}.{column.name} is {column.ctype.value}"
                )

    _check_chart_arity(query)


def is_query_compatible(query: DVQuery, schema: DatabaseSchema) -> bool:
    """Boolean wrapper used by FeVisQA Type-2 answers."""
    try:
        validate_dv_query(query, schema)
    except VQLValidationError:
        return False
    return True


def _check_column(ref: ColumnRef, query: DVQuery, schema: DatabaseSchema) -> None:
    if ref.is_wildcard:
        return
    owner = _owning_table(ref, query, schema)
    if not schema.table(owner).has_column(ref.column):
        raise VQLValidationError(f"table {owner!r} has no column {ref.column!r}")


def _owning_table(ref: ColumnRef, query: DVQuery, schema: DatabaseSchema) -> str:
    if ref.table:
        if not schema.has_table(ref.table):
            raise VQLValidationError(f"unknown table {ref.table!r} referenced by column {ref.to_text()!r}")
        return ref.table
    owner = schema.find_column_table(ref.column, candidate_tables=query.tables())
    if owner is None:
        raise VQLValidationError(f"cannot attribute column {ref.column!r} to any table of the query")
    return owner


def _check_aggregate_types(item: AggregateExpr, query: DVQuery, schema: DatabaseSchema) -> None:
    if item.function not in _NUMERIC_AGGREGATES or item.column.is_wildcard:
        return
    owner = _owning_table(item.column, query, schema)
    column = schema.table(owner).column(item.column.column)
    if column.ctype != ColumnType.NUMBER:
        raise VQLValidationError(
            f"{item.function}() requires a numeric column, {owner}.{column.name} is {column.ctype.value}"
        )


def _check_chart_arity(query: DVQuery) -> None:
    """Pie / bar / line / scatter charts need exactly an x and a y axis."""
    two_axis_charts = {
        ChartType.BAR,
        ChartType.PIE,
        ChartType.LINE,
        ChartType.SCATTER,
    }
    if query.chart_type in two_axis_charts and len(query.select) != 2:
        raise VQLValidationError(
            f"{query.chart_type.value} charts need exactly 2 selected expressions, got {len(query.select)}"
        )
    if query.chart_type not in two_axis_charts and len(query.select) < 2:
        raise VQLValidationError(
            f"{query.chart_type.value} charts need at least 2 selected expressions, got {len(query.select)}"
        )


def _validate_subquery(subquery: Subquery, schema: DatabaseSchema) -> None:
    known_tables = set(schema.table_names())
    tables = [subquery.from_table] + [join.table for join in subquery.joins]
    for table in tables:
        if table not in known_tables:
            raise VQLValidationError(f"unknown table {table!r} in subquery")
