"""Lexer for DV queries.

The lexer is deliberately permissive: it accepts both the "original" nvBench
annotation style (uppercase keywords, ``COUNT(*)``, double-quoted strings,
``AS T1`` aliases) and the standardized lowercase style, leaving the
normalisation decisions to the parser and the standardizer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import VQLSyntaxError


@dataclass(frozen=True)
class Token:
    """A single lexical token with its original surface position."""

    kind: str  # 'word' | 'number' | 'string' | 'symbol'
    value: str
    position: int

    def lowered(self) -> str:
        """The token text lower-cased (DV-query keywords are case-insensitive)."""
        return self.value.lower()


_TOKEN_RE = re.compile(
    r"""
    (?P<space>\s+)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<number>\d+\.\d+|\d+)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_*][A-Za-z0-9_]*)?|\*)
  | (?P<symbol><=|>=|!=|<>|[(),=<>.])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list of :class:`Token`.

    Raises :class:`VQLSyntaxError` on the first character that cannot start a
    token, reporting its position.
    """
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise VQLSyntaxError(f"unexpected character {text[position]!r} at position {position}", position=position)
        if match.lastgroup != "space":
            value = match.group(0)
            kind = match.lastgroup
            if kind == "string":
                value = value[1:-1]
            if kind == "symbol" and value == "<>":
                value = "!="
            tokens.append(Token(kind=kind, value=value, position=position))
        position = match.end()
    return tokens
