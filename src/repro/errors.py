"""Exception hierarchy shared by every subsystem of the reproduction.

Keeping all exceptions in one module lets downstream code catch the broad
:class:`ReproError` when it only cares about "something inside the library
failed", while tests and callers that need precision can catch the specific
subclass raised by the relevant subsystem.

These exceptions are a *library-level* contract: they propagate to callers
that invoke subsystems directly.  The serving layer deliberately does not
expose them to traffic — admission control and per-request failures surface
as structured error responses whose machine-readable codes live in one
place, :data:`repro.serving.protocol.ERROR_CODE_MEANINGS` (an exception
caught during serving becomes an ``invalid_request`` or ``backend_error``
response; the reconciliation is tested by
``tests/test_serving_protocol_codes.py``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class VQLSyntaxError(ReproError):
    """Raised when a DV query cannot be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class VQLValidationError(ReproError):
    """Raised when a syntactically valid DV query is inconsistent with a schema."""


class SchemaError(ReproError):
    """Raised for malformed database schemas (duplicate tables, unknown columns...)."""


class ExecutionError(ReproError):
    """Raised when the relational engine cannot execute a DV query."""


class TokenizationError(ReproError):
    """Raised when text cannot be encoded or decoded by the tokenizer."""


class ModelConfigError(ReproError):
    """Raised for invalid neural-network or training configuration."""


class ServingStateError(ReproError):
    """Raised when the serving layer's runtime state is used out of order.

    Distinct from :class:`ModelConfigError` (a *configuration* was invalid):
    this marks a correct configuration driven through an invalid state
    transition at runtime — reading a :class:`~repro.serving.batching.Ticket`
    before its batch flushed, a batch function returning the wrong number of
    results, a continuous-decode ticket consumed mid-flight or failed by an
    engine error.
    """


class DatasetError(ReproError):
    """Raised when a synthetic corpus cannot be generated or partitioned."""


class CorpusEmptyError(ReproError):
    """Raised when a corpus-QA request finds no retrievable documents.

    The deployment serves ``corpus_qa`` but its :class:`~repro.datasets.
    corpus.CorpusIndex` holds zero documents (or retrieval produced no
    candidates), so there is no context to ground an answer in.  The serving
    layer folds this into the structured ``corpus_empty`` error code.
    """


class IndexMismatchError(ReproError):
    """Raised when a request's corpus-index fingerprint pin does not match.

    A ``corpus_qa`` request may pin the exact retrieval index it was built
    against (``Request.index = "sha256:..."``); if the serving deployment's
    loaded :class:`~repro.datasets.corpus.CorpusIndex` hashes differently the
    answer would be grounded in a corpus the caller never saw.  The serving
    layer folds this into the structured ``index_mismatch`` error code.
    """


class EvaluationError(ReproError):
    """Raised when an evaluation harness receives inconsistent inputs."""
