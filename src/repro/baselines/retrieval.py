"""Retrieve-and-revise text-to-vis baselines.

Two of the paper's comparison systems are retrieval centric:

* **RGVisNet** retrieves the DV-query prototype most similar to the question
  and revises it with a neural module;
* **GPT-4 (5-shot, similarity prompting)** retrieves the most similar
  training examples as in-context demonstrations and imitates them.

Both are reproduced as k-nearest-neighbour retrieval over the training
questions with a schema-aware *revision* step that re-maps table and column
names of the retrieved query onto the target database.  The few-shot variant
skips revision for columns it cannot ground, mimicking the schema-mismatch
errors that in-context prompting exhibits in the paper's case study.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.baselines.base import TextToVisBaseline
from repro.database.schema import ColumnType, DatabaseSchema
from repro.datasets.nvbench import NvBenchExample
from repro.datasets.spider import SyntheticDatabasePool
from repro.utils.text import jaccard_similarity, rank_by_jaccard, tokenize_words
from repro.vql.ast import AggregateExpr, BinClause, ColumnRef, Condition, DVQuery, JoinClause, OrderByClause
from repro.vql.standardize import standardize_dv_query


@dataclass
class _IndexedExample:
    tokens: set[str]
    example: NvBenchExample


class RetrievalTextToVis(TextToVisBaseline):
    """RGVisNet-style retrieve-then-revise."""

    name = "retrieval+revise"

    def __init__(self, top_k: int = 1, revise: bool = True):
        self.top_k = top_k
        self.revise = revise
        self._index: list[_IndexedExample] = []

    def fit(self, examples: Sequence[NvBenchExample], pool: SyntheticDatabasePool) -> None:
        """Index the training examples for nearest-neighbour retrieval."""
        self._index = [
            _IndexedExample(tokens=set(tokenize_words(example.question)), example=example) for example in examples
        ]

    def retrieve(self, question: str, top_k: int | None = None) -> list[NvBenchExample]:
        """The ``top_k`` most similar training examples by question Jaccard similarity.

        Ranking goes through :func:`~repro.utils.text.rank_by_jaccard` — the
        same deterministic lexical kernel the serving-side
        :class:`~repro.datasets.corpus.CorpusIndex` uses, ties broken by
        index position (which preserves the previous stable-sort behaviour).
        """
        top_k = top_k or self.top_k
        ranked = rank_by_jaccard(tokenize_words(question), [entry.tokens for entry in self._index])
        return [self._index[index].example for index, _ in ranked[:top_k]]

    def predict(self, question: str, schema: DatabaseSchema) -> str:
        """Retrieve the closest training query (optionally schema-revised)."""
        if not self._index:
            raise RuntimeError(f"{self.name} baseline must be fit before predicting")
        prototype = self.retrieve(question, top_k=1)[0].query
        if not self.revise:
            return prototype.to_text()
        revised = self._revise(prototype, schema)
        return standardize_dv_query(revised, schema=schema).to_text()

    # -- revision ---------------------------------------------------------------
    def _revise(self, prototype: DVQuery, schema: DatabaseSchema) -> DVQuery:
        """Re-ground the prototype's tables and columns in the target schema."""
        table_map = {table: self._closest_table(table, schema) for table in prototype.tables()}

        def fix_ref(ref: ColumnRef) -> ColumnRef:
            target_table = table_map.get(ref.table or prototype.from_table, schema.tables[0].name)
            column = self._closest_column(ref.column, target_table, schema)
            return ColumnRef(column=column, table=target_table)

        def fix_item(item: AggregateExpr) -> AggregateExpr:
            return AggregateExpr(column=fix_ref(item.column), function=item.function, distinct=item.distinct)

        joins = []
        for join in prototype.joins:
            target = table_map.get(join.table, join.table)
            if not schema.has_table(target):
                continue
            joins.append(JoinClause(table=target, left=fix_ref(join.left), right=fix_ref(join.right)))
        where = tuple(
            Condition(left=fix_ref(condition.left), operator=condition.operator, value=condition.value)
            for condition in prototype.where
            if not self._condition_uses_subquery(condition)
        )
        order_by = None
        if prototype.order_by is not None:
            order_by = OrderByClause(expression=fix_item(prototype.order_by.expression), direction=prototype.order_by.direction)
        bin_clause = None
        if prototype.bin is not None:
            bin_column = fix_ref(prototype.bin.column)
            if self._column_type(bin_column, schema) == ColumnType.TIME:
                bin_clause = BinClause(column=bin_column, unit=prototype.bin.unit)
        return DVQuery(
            chart_type=prototype.chart_type,
            select=tuple(fix_item(item) for item in prototype.select),
            from_table=table_map.get(prototype.from_table, schema.tables[0].name),
            joins=tuple(joins),
            where=where,
            group_by=tuple(fix_ref(column) for column in prototype.group_by),
            order_by=order_by,
            bin=bin_clause,
        )

    def _condition_uses_subquery(self, condition: Condition) -> bool:
        return not isinstance(condition.value, (str, int, float))

    def _closest_table(self, table: str | None, schema: DatabaseSchema) -> str:
        if table and schema.has_table(table):
            return table
        candidates = schema.table_names()
        if table is None:
            return candidates[0]
        table_tokens = set(tokenize_words(table.replace("_", " ")))
        return max(
            candidates,
            key=lambda name: jaccard_similarity(table_tokens, set(tokenize_words(name.replace("_", " ")))),
        )

    def _closest_column(self, column: str, table: str, schema: DatabaseSchema) -> str:
        table_schema = schema.table(table)
        if table_schema.has_column(column):
            return column
        column_tokens = set(tokenize_words(column.replace("_", " ")))
        return max(
            table_schema.column_names(),
            key=lambda name: jaccard_similarity(column_tokens, set(tokenize_words(name.replace("_", " ")))),
        )

    def _column_type(self, ref: ColumnRef, schema: DatabaseSchema) -> ColumnType | None:
        if ref.table and schema.has_table(ref.table) and schema.table(ref.table).has_column(ref.column):
            return schema.table(ref.table).column(ref.column).ctype
        return None


class FewShotRetrievalTextToVis(RetrievalTextToVis):
    """The 5-shot similarity-prompting stand-in (no schema-aware revision of columns).

    It copies the nearest prototype and only re-grounds table names, so its
    predictions fail exactly where the paper reports GPT-4 failing: columns
    that do not exist in the target schema and missing transformation
    functions.
    """

    name = "few-shot retrieval"

    def __init__(self, top_k: int = 5):
        super().__init__(top_k=top_k, revise=False)

    def predict(self, question: str, schema: DatabaseSchema) -> str:
        """Answer from the retrieved neighbours (few-shot prompting stand-in)."""
        if not self._index:
            raise RuntimeError(f"{self.name} baseline must be fit before predicting")
        shots = self.retrieve(question, top_k=self.top_k)
        prototype = shots[0].query
        table_map = {table: self._closest_table(table, schema) for table in prototype.tables()}

        def remap_ref(ref: ColumnRef) -> ColumnRef:
            return ColumnRef(column=ref.column, table=table_map.get(ref.table, ref.table))

        def remap_item(item: AggregateExpr) -> AggregateExpr:
            return AggregateExpr(column=remap_ref(item.column), function=item.function, distinct=item.distinct)

        remapped = DVQuery(
            chart_type=prototype.chart_type,
            select=tuple(remap_item(item) for item in prototype.select),
            from_table=table_map.get(prototype.from_table, prototype.from_table),
            joins=tuple(
                JoinClause(table=table_map.get(join.table, join.table), left=remap_ref(join.left), right=remap_ref(join.right))
                for join in prototype.joins
            ),
            where=tuple(
                Condition(left=remap_ref(condition.left), operator=condition.operator, value=condition.value)
                for condition in prototype.where
                if isinstance(condition.value, (str, int, float))
            ),
            group_by=tuple(remap_ref(column) for column in prototype.group_by),
            order_by=prototype.order_by,
            bin=prototype.bin,
        )
        return remapped.to_text()
