"""Common interfaces for the baseline model families."""

from __future__ import annotations

import abc
from collections.abc import Sequence

from repro.database.schema import DatabaseSchema
from repro.datasets.corpus import Seq2SeqExample
from repro.datasets.nvbench import NvBenchExample
from repro.datasets.spider import SyntheticDatabasePool


class TextToVisBaseline(abc.ABC):
    """A model that maps (NL question, schema) to DV query text."""

    name: str = "text-to-vis baseline"

    @abc.abstractmethod
    def fit(self, examples: Sequence[NvBenchExample], pool: SyntheticDatabasePool) -> None:
        """Train / index the model on the nvBench training split."""

    @abc.abstractmethod
    def predict(self, question: str, schema: DatabaseSchema) -> str:
        """Predict the DV query text for one question."""

    def predict_many(self, questions: Sequence[str], schemas: Sequence[DatabaseSchema]) -> list[str]:
        return [self.predict(question, schema) for question, schema in zip(questions, schemas)]


class TextGenerationBaseline(abc.ABC):
    """A model that maps a source text to a target text (vis-to-text, FeVisQA, table-to-text)."""

    name: str = "text generation baseline"

    @abc.abstractmethod
    def fit(self, examples: Sequence[Seq2SeqExample]) -> None:
        """Train the model on (source, target) pairs."""

    @abc.abstractmethod
    def predict(self, source: str) -> str:
        """Generate the target text for one source text."""

    def predict_many(self, sources: Sequence[str]) -> list[str]:
        return [self.predict(source) for source in sources]
