"""Common interfaces for the baseline model families.

Every comparison system in the paper's evaluation falls into one of two
abstract shapes, depending on the task it serves:

* :class:`TextToVisBaseline` — text-to-vis systems that map an NL question
  plus a database schema to DV-query text (Seq2Vis, ncNet, RGVisNet-style
  retrieval, the rule-based parser, warm-started transformers);
* :class:`TextGenerationBaseline` — text-to-text systems for the generation
  tasks (vis-to-text, FeVisQA, table-to-text), which consume one pre-encoded
  source sequence.

Both follow the same life cycle: construct (directly or through
:mod:`repro.serving.registry`), ``fit`` on a training split, then ``predict``
— and both expose a ``predict_many`` batch hook that the serving layer's
micro-batcher calls, so a baseline that can amortize batched inference only
needs to override that one method.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

from repro.database.schema import DatabaseSchema
from repro.datasets.corpus import Seq2SeqExample
from repro.datasets.nvbench import NvBenchExample
from repro.datasets.spider import SyntheticDatabasePool


class TextToVisBaseline(abc.ABC):
    """A model that maps (NL question, schema) to DV query text.

    Implementations must be deterministic at inference time: repeated
    ``predict`` calls with the same inputs return the same text.  The serving
    layer's caching and its batch-equals-sequential guarantee both rely on
    this.
    """

    name: str = "text-to-vis baseline"

    @abc.abstractmethod
    def fit(self, examples: Sequence[NvBenchExample], pool: SyntheticDatabasePool) -> None:
        """Train / index the model on the nvBench training split.

        ``pool`` resolves each example's ``db_id`` to its database, so
        implementations can encode schemas or execute queries while fitting.
        Must be called before ``predict``; baselines with nothing to learn
        accept an empty ``examples`` sequence.
        """

    @abc.abstractmethod
    def predict(self, question: str, schema: DatabaseSchema) -> str:
        """Predict the DV query text for one question against ``schema``.

        Returns bare query text (``visualize ...``) without modality tags; it
        is not guaranteed to parse — callers that need an AST should go
        through :func:`repro.vql.parser.parse_dv_query` and handle syntax
        errors (the serving pipeline does this and marks such responses
        invalid).
        """

    def predict_many(self, questions: Sequence[str], schemas: Sequence[DatabaseSchema]) -> list[str]:
        """Predict for parallel ``questions`` / ``schemas`` lists, position-aligned.

        The default delegates to ``predict`` one item at a time; neural
        implementations override this to run one padded forward pass.
        """
        return [self.predict(question, schema) for question, schema in zip(questions, schemas)]


class TextGenerationBaseline(abc.ABC):
    """A model that maps a source text to a target text (vis-to-text, FeVisQA, table-to-text).

    Sources are the modality-tagged sequences produced by
    :mod:`repro.encoding.sequences` (e.g. ``<VQL> ... <schema> ...``), so one
    implementation serves every generation task.
    """

    name: str = "text generation baseline"

    @abc.abstractmethod
    def fit(self, examples: Sequence[Seq2SeqExample]) -> None:
        """Train the model on (source, target) pairs.

        Must be called before ``predict``; zero-shot baselines accept an
        empty sequence.
        """

    @abc.abstractmethod
    def predict(self, source: str) -> str:
        """Generate the target text for one pre-encoded source sequence."""

    def predict_many(self, sources: Sequence[str]) -> list[str]:
        """Generate for every source, position-aligned.

        The default loops over ``predict``; neural implementations override
        this with one batched forward pass.
        """
        return [self.predict(source) for source in sources]
