"""A rule/template text-to-vis baseline.

Early text-to-vis systems were rule based: keywords select the chart type and
aggregation, and fuzzy matching against the schema selects the axes.  The
baseline is useful in two roles: as the weakest comparison point in the
Table-IV benchmark family, and as a sanity check that the synthetic corpus is
solvable from surface cues.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import TextToVisBaseline
from repro.database.schema import ColumnType, DatabaseSchema
from repro.datasets.nvbench import NvBenchExample
from repro.datasets.spider import SyntheticDatabasePool
from repro.utils.text import tokenize_words
from repro.vql.ast import AggregateExpr, ChartType, ColumnRef, DVQuery, OrderByClause, SortDirection
from repro.vql.standardize import standardize_dv_query

_CHART_KEYWORDS = [
    ("pie", ChartType.PIE),
    ("proportion", ChartType.PIE),
    ("scatter", ChartType.SCATTER),
    ("relationship", ChartType.SCATTER),
    ("line", ChartType.LINE),
    ("trend", ChartType.LINE),
    ("over time", ChartType.LINE),
    ("bar", ChartType.BAR),
    ("histogram", ChartType.BAR),
]

_AGGREGATE_KEYWORDS = [
    ("how many", "count"),
    ("number of", "count"),
    ("count", "count"),
    ("average", "avg"),
    ("mean", "avg"),
    ("total", "sum"),
    ("sum", "sum"),
    ("maximum", "max"),
    ("largest", "max"),
    ("highest", "max"),
    ("minimum", "min"),
    ("smallest", "min"),
    ("lowest", "min"),
]


class RuleBasedTextToVis(TextToVisBaseline):
    """Keyword rules + schema fuzzy matching."""

    name = "rule-based"

    def fit(self, examples: Sequence[NvBenchExample], pool: SyntheticDatabasePool) -> None:
        """The rule baseline has nothing to learn; fit is a no-op."""

    def predict(self, question: str, schema: DatabaseSchema) -> str:
        """Parse the question into DV query text with rules and templates."""
        lowered = question.lower()
        chart_type = self._chart_type(lowered)
        aggregate = self._aggregate(lowered)
        table_name, x_column, y_column = self._select_axes(lowered, schema, aggregate)
        x_ref = ColumnRef(column=x_column, table=table_name)
        if aggregate == "count" or y_column is None:
            y_item = AggregateExpr(column=x_ref, function="count")
        else:
            y_item = AggregateExpr(column=ColumnRef(column=y_column, table=table_name), function=aggregate)
        order_by = self._order(lowered, x_ref, y_item)
        query = DVQuery(
            chart_type=chart_type,
            select=(AggregateExpr(column=x_ref), y_item),
            from_table=table_name,
            group_by=(x_ref,),
            order_by=order_by,
        )
        return standardize_dv_query(query, schema=schema).to_text()

    # -- rules ----------------------------------------------------------------
    def _chart_type(self, question: str) -> ChartType:
        for keyword, chart in _CHART_KEYWORDS:
            if keyword in question:
                return chart
        return ChartType.BAR

    def _aggregate(self, question: str) -> str:
        for keyword, function in _AGGREGATE_KEYWORDS:
            if keyword in question:
                return function
        return "count"

    def _select_axes(self, question: str, schema: DatabaseSchema, aggregate: str):
        """Pick the table and the x / y columns by token overlap with the question."""
        question_tokens = set(tokenize_words(question))
        best_table = schema.tables[0]
        best_score = -1
        for table in schema.tables:
            score = sum(1 for token in tokenize_words(table.name.replace("_", " ")) if token in question_tokens)
            score += sum(
                1
                for column in table.columns
                for token in tokenize_words(column.name.replace("_", " "))
                if token in question_tokens
            )
            if score > best_score:
                best_score = score
                best_table = table
        text_columns = [column.name for column in best_table.columns if column.ctype == ColumnType.TEXT]
        numeric_columns = [
            column.name
            for column in best_table.columns
            if column.ctype == ColumnType.NUMBER and column.name != best_table.primary_key
        ]
        x_column = self._best_column_match(question_tokens, text_columns) or (
            text_columns[0] if text_columns else best_table.columns[0].name
        )
        y_column = None
        if aggregate != "count":
            y_column = self._best_column_match(question_tokens, numeric_columns) or (
                numeric_columns[0] if numeric_columns else None
            )
        return best_table.name, x_column, y_column

    def _best_column_match(self, question_tokens: set[str], columns: list[str]) -> str | None:
        best = None
        best_score = 0
        for column in columns:
            score = sum(1 for token in tokenize_words(column.replace("_", " ")) if token in question_tokens)
            if score > best_score:
                best_score = score
                best = column
        return best

    def _order(self, question: str, x_ref: ColumnRef, y_item: AggregateExpr) -> OrderByClause | None:
        descending_cues = ("high to low", "descending", "from z to a")
        ascending_cues = ("low to high", "ascending", "alphabetical")
        x_cues = ("x-axis", "x axis")
        if any(cue in question for cue in descending_cues):
            direction = SortDirection.DESC
        elif any(cue in question for cue in ascending_cues):
            direction = SortDirection.ASC
        else:
            return None
        expression = AggregateExpr(column=x_ref) if any(cue in question for cue in x_cues) else y_item
        return OrderByClause(expression=expression, direction=direction)
