"""ncNet-style baseline: a transformer with grammar-constrained decoding.

ncNet augments a transformer with *attention forcing*, steering decoding
toward valid Vega-Zero tokens and schema items.  On the numpy substrate the
same inductive bias is realised as constrained greedy decoding: at every step
the next-token distribution is masked to the union of DV-query keywords,
punctuation and the identifiers of the target schema, so the model cannot
emit tokens that could never appear in a valid query for that database.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.neural import TransformerTextToVis
from repro.core.batching import pad_sequences
from repro.database.schema import DatabaseSchema
from repro.datasets.nvbench import NvBenchExample
from repro.datasets.spider import SyntheticDatabasePool
from repro.core.config import precision_compute_dtype
from repro.encoding.sequences import text_to_vis_input
from repro.nn.tensor import autocast, no_grad
from repro.tokenization.special_tokens import VQL_TAG
from repro.vql.ast import AGGREGATE_FUNCTIONS, TIME_BIN_UNITS

_KEYWORDS = (
    "visualize", "select", "from", "join", "on", "where", "and", "group", "by",
    "order", "asc", "desc", "bin", "not", "in", "like", "distinct",
    "bar", "pie", "line", "scatter", "stacked", "grouping",
    "(", ")", ",", "=", "!=", ">", "<", ">=", "<=", ".",
) + AGGREGATE_FUNCTIONS + TIME_BIN_UNITS


class NcNetTextToVis(TransformerTextToVis):
    """Transformer text-to-vis with schema-constrained decoding."""

    name = "ncnet"

    def fit(self, examples: Sequence[NvBenchExample], pool: SyntheticDatabasePool) -> None:
        """Fit the underlying transformer on text-to-vis pairs (see the base class)."""
        super().fit(examples, pool)

    def predict_many(self, questions: Sequence[str], schemas: Sequence[DatabaseSchema]) -> list[str]:
        # Grammar-constrained decoding masks logits per schema, so requests
        # cannot share one forward pass; keep the per-item loop rather than
        # inheriting the transformer's batched override.
        """Predict one item at a time; see the in-method note on why."""
        return [self.predict(question, schema) for question, schema in zip(questions, schemas)]

    def _allowed_token_ids(self, schema: DatabaseSchema) -> np.ndarray:
        tokenizer = self.model.tokenizer
        vocab = tokenizer.vocab
        allowed = np.zeros(len(vocab), dtype=bool)
        allowed[vocab.pad_id] = True
        allowed[vocab.eos_id] = True
        allowed[vocab.bos_id] = True
        candidate_tokens: set[str] = set(_KEYWORDS)
        candidate_tokens.add(VQL_TAG)
        for table in schema.tables:
            candidate_tokens.add(table.name)
            for column in table.columns:
                candidate_tokens.add(column.name)
                candidate_tokens.add(f"{table.name}.{column.name}")
        for token in candidate_tokens:
            for piece in tokenizer.text_to_tokens(token):
                if piece in vocab:
                    allowed[vocab.token_to_id(piece)] = True
        return allowed

    def predict(self, question: str, schema: DatabaseSchema) -> str:
        """Constrained greedy decode: logits are masked to schema-legal tokens."""
        if self.model is None:
            raise RuntimeError(f"{self.name} baseline must be fit before predicting")
        tokenizer = self.model.tokenizer
        source = text_to_vis_input(question, schema)
        encoded = tokenizer.encode(source, max_length=self.model.config.max_input_length)
        input_ids = pad_sequences([encoded], tokenizer.vocab.pad_id)
        allowed = self._allowed_token_ids(schema)
        transformer = self.model.model
        config = transformer.config
        dtype = precision_compute_dtype(self.model.resolve_precision(self.precision))
        with no_grad(), autocast(dtype):
            transformer.eval()
            attention_mask = input_ids != config.pad_id
            encoder_hidden = transformer.encoder(input_ids, attention_mask)
            sequence = np.full((1, 1), config.bos_id, dtype=np.int64)
            for _ in range(self.model.config.max_decode_length):
                decoder_hidden = transformer.decoder(sequence, encoder_hidden, attention_mask)
                logits = transformer.lm_logits(decoder_hidden).numpy()[0, -1, :]
                logits = np.where(allowed, logits, -np.inf)
                next_token = int(np.argmax(logits))
                sequence = np.concatenate([sequence, [[next_token]]], axis=1)
                if next_token == config.eos_id:
                    break
        text = tokenizer.decode(sequence[0, 1:])
        return text.replace(VQL_TAG.lower(), "").replace(VQL_TAG, "").strip()
