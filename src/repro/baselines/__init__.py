"""Baselines evaluated against DataVisT5 in the paper.

The comparison systems fall into three families, all reproduced here on the
offline substrate:

* non-neural systems — a rule/template text-to-vis parser and
  retrieve-and-revise models (RGVisNet-style retrieval with schema-aware
  revision; a k-nearest-neighbour few-shot model standing in for 5-shot
  GPT-4 prompting), plus zero-shot heuristic generators standing in for
  zero-shot GPT-4 on the text-generation tasks;
* recurrent models — the Seq2Vis GRU encoder--decoder with attention;
* transformer models — a vanilla transformer trained from scratch, an
  ncNet-style transformer with grammar-constrained (attention-forcing style)
  decoding, and warm-started transformers standing in for CodeT5+ and BART
  checkpoints, optionally fine-tuned with a LoRA-style parameter subset.
"""

from repro.baselines.base import TextToVisBaseline, TextGenerationBaseline
from repro.baselines.template import RuleBasedTextToVis
from repro.baselines.retrieval import RetrievalTextToVis, FewShotRetrievalTextToVis
from repro.baselines.neural import (
    Seq2VisBaseline,
    TransformerTextToVis,
    NeuralTextGeneration,
    Seq2SeqTextGeneration,
    warm_start_on_queries,
    warm_start_on_text,
    lora_style_parameters,
)
from repro.baselines.ncnet import NcNetTextToVis
from repro.baselines.heuristics import ZeroShotHeuristicGeneration

# Canonical name -> class tables for the two baseline families.  These are the
# single source of truth consumed by :mod:`repro.serving.registry`, so serving,
# the evaluation harness and the examples all construct baselines by the same
# names.
TEXT_TO_VIS_BASELINES: dict[str, type[TextToVisBaseline]] = {
    "neural": TransformerTextToVis,
    "seq2vis": Seq2VisBaseline,
    "ncnet": NcNetTextToVis,
    "template": RuleBasedTextToVis,
    "retrieval": RetrievalTextToVis,
    "few_shot_retrieval": FewShotRetrievalTextToVis,
}

GENERATION_BASELINES: dict[str, type[TextGenerationBaseline]] = {
    "neural": NeuralTextGeneration,
    "seq2seq": Seq2SeqTextGeneration,
    "heuristics": ZeroShotHeuristicGeneration,
}

__all__ = [
    "TEXT_TO_VIS_BASELINES",
    "GENERATION_BASELINES",
    "TextToVisBaseline",
    "TextGenerationBaseline",
    "RuleBasedTextToVis",
    "RetrievalTextToVis",
    "FewShotRetrievalTextToVis",
    "Seq2VisBaseline",
    "TransformerTextToVis",
    "NeuralTextGeneration",
    "Seq2SeqTextGeneration",
    "warm_start_on_queries",
    "warm_start_on_text",
    "lora_style_parameters",
    "NcNetTextToVis",
    "ZeroShotHeuristicGeneration",
]
