"""Baselines evaluated against DataVisT5 in the paper.

The comparison systems fall into three families, all reproduced here on the
offline substrate:

* non-neural systems — a rule/template text-to-vis parser and
  retrieve-and-revise models (RGVisNet-style retrieval with schema-aware
  revision; a k-nearest-neighbour few-shot model standing in for 5-shot
  GPT-4 prompting), plus zero-shot heuristic generators standing in for
  zero-shot GPT-4 on the text-generation tasks;
* recurrent models — the Seq2Vis GRU encoder--decoder with attention;
* transformer models — a vanilla transformer trained from scratch, an
  ncNet-style transformer with grammar-constrained (attention-forcing style)
  decoding, and warm-started transformers standing in for CodeT5+ and BART
  checkpoints, optionally fine-tuned with a LoRA-style parameter subset.
"""

from repro.baselines.base import TextToVisBaseline, TextGenerationBaseline
from repro.baselines.template import RuleBasedTextToVis
from repro.baselines.retrieval import RetrievalTextToVis, FewShotRetrievalTextToVis
from repro.baselines.neural import (
    Seq2VisBaseline,
    TransformerTextToVis,
    NeuralTextGeneration,
    Seq2SeqTextGeneration,
    warm_start_on_queries,
    warm_start_on_text,
    lora_style_parameters,
)
from repro.baselines.ncnet import NcNetTextToVis
from repro.baselines.heuristics import ZeroShotHeuristicGeneration

__all__ = [
    "TextToVisBaseline",
    "TextGenerationBaseline",
    "RuleBasedTextToVis",
    "RetrievalTextToVis",
    "FewShotRetrievalTextToVis",
    "Seq2VisBaseline",
    "TransformerTextToVis",
    "NeuralTextGeneration",
    "Seq2SeqTextGeneration",
    "warm_start_on_queries",
    "warm_start_on_text",
    "lora_style_parameters",
    "NcNetTextToVis",
    "ZeroShotHeuristicGeneration",
]
