"""Neural baselines: Seq2Vis, vanilla transformer, warm-started transformers
and LoRA-style parameter-efficient fine-tuning.

All neural baselines share the text-in / text-out formulation of the main
model so the only differences are architecture (GRU vs transformer), size and
what (if anything) the weights were warmed up on — which is exactly the axis
the paper varies (T5-large vs CodeT5+ vs DataVisT5 pre-training).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.base import TextGenerationBaseline, TextToVisBaseline
from repro.core.batching import iterate_minibatches, pad_sequences
from repro.core.config import DataVisT5Config, TrainingConfig
from repro.core.model import DataVisT5
from repro.core.objectives import SpanCorruptionConfig, span_corruption
from repro.database.schema import DatabaseSchema
from repro.datasets.corpus import Seq2SeqExample
from repro.datasets.nvbench import NvBenchExample
from repro.datasets.spider import SyntheticDatabasePool
from repro.encoding.sequences import text_to_vis_input, text_to_vis_target
from repro.nn.layers import Parameter
from repro.nn.optim import Adam, LinearWarmupSchedule, clip_grad_norm
from repro.nn.rnn import Seq2SeqModel
from repro.tokenization.special_tokens import VQL_TAG
from repro.utils.rng import derive_seed, seeded_rng


# -- warm starts -----------------------------------------------------------------------


def warm_start_on_queries(model: DataVisT5, query_texts: Sequence[str], steps: int = 60, seed: int = 0) -> None:
    """Warm-start ``model`` with span denoising on DV-query text.

    This plays the role of starting from the CodeT5+ checkpoint: before any
    task fine-tuning the model has already seen the token statistics of the
    programming-language-like DV queries.
    """
    _denoising_warm_start(model, query_texts, steps=steps, seed=derive_seed(seed, "code_warm_start"))


def warm_start_on_text(model: DataVisT5, texts: Sequence[str], steps: int = 60, seed: int = 0) -> None:
    """Warm-start ``model`` with span denoising on natural-language text (BART / T5 analogue)."""
    _denoising_warm_start(model, texts, steps=steps, seed=derive_seed(seed, "text_warm_start"))


def _denoising_warm_start(model: DataVisT5, texts: Sequence[str], steps: int, seed: int) -> None:
    texts = [text for text in texts if text.strip()]
    if not texts:
        return
    rng = seeded_rng(seed)
    optimizer = model.make_optimizer(total_steps=steps, learning_rate=5e-3)
    span_config = SpanCorruptionConfig()
    batch_size = 8
    pad_id = model.tokenizer.vocab.pad_id
    for _ in range(steps):
        indices = rng.integers(0, len(texts), size=batch_size)
        sources, targets = [], []
        for index in indices:
            token_ids = model.tokenizer.encode(texts[int(index)], max_length=model.config.max_input_length)
            corrupted, target = span_corruption(token_ids, model.tokenizer, config=span_config, rng=rng)
            sources.append(corrupted[: model.config.max_input_length])
            targets.append(target[: model.config.max_target_length])
        from repro.core.batching import Batch

        batch = Batch(
            input_ids=pad_sequences(sources, pad_id, model.config.max_input_length),
            labels=pad_sequences(targets, pad_id, model.config.max_target_length),
        )
        model.train_step(batch, optimizer)


def lora_style_parameters(model: DataVisT5) -> list[Parameter]:
    """The parameter subset updated by LoRA-style fine-tuning.

    True LoRA adds low-rank adapters; with the tiny numpy models the same
    effect (a small trainable fraction on top of frozen pre-trained weights)
    is obtained by updating only the attention query/value projections and
    the layer norms, which is the standard LoRA target-module set.
    """
    selected: list[Parameter] = []
    for name, parameter in model.model.named_parameters():
        if ".q_proj." in name or ".v_proj." in name or "norm" in name.lower():
            selected.append(parameter)
    return selected or model.model.parameters()


# -- text-to-vis baselines ------------------------------------------------------------------


class TransformerTextToVis(TextToVisBaseline):
    """A transformer trained from scratch (or from a warm start) on text-to-vis only.

    ``precision`` selects the inference mode the fitted model serves with
    (``"float64"`` / ``"float32"`` / ``"int8"``); ``int8`` quantizes the
    trained weights once fitting finishes, since training itself always runs
    float64.
    """

    name = "transformer"

    def __init__(
        self,
        config: DataVisT5Config | None = None,
        training: TrainingConfig | None = None,
        warm_start: str | None = None,
        lora_style: bool = False,
        model: DataVisT5 | None = None,
        use_cache: bool = True,
        precision: str | None = None,
    ):
        self.config = config or DataVisT5Config.from_preset("tiny")
        self.training = training or TrainingConfig(num_epochs=3)
        self.warm_start = warm_start
        self.lora_style = lora_style
        self.model = model
        self.use_cache = use_cache
        self.precision = precision

    def fit(self, examples: Sequence[NvBenchExample], pool: SyntheticDatabasePool) -> None:
        """Build (or reuse) the model, optionally warm-start, then fine-tune."""
        pairs = [
            Seq2SeqExample(
                source=text_to_vis_input(example.question, pool.get(example.db_id).schema),
                target=text_to_vis_target(example.query),
                task="text_to_vis",
                db_id=example.db_id,
            )
            for example in examples
        ]
        if self.model is None:
            texts = [pair.source for pair in pairs] + [pair.target for pair in pairs]
            self.model = DataVisT5.from_corpus(texts, config=self.config)
            if self.warm_start == "queries":
                warm_start_on_queries(self.model, [example.query_text for example in examples], seed=self.training.seed)
            elif self.warm_start == "text":
                warm_start_on_text(self.model, [example.question for example in examples], seed=self.training.seed)
        self._finetune(pairs)
        if self.precision == "int8" and not self.model.quantized:
            # Training always runs float64; quantization is a post-fit step.
            self.model.quantize_int8()

    def _finetune(self, pairs: list[Seq2SeqExample]) -> None:
        config = self.training
        rng = seeded_rng(derive_seed(config.seed, "transformer_baseline"))
        steps_per_epoch = max(1, (len(pairs) + config.batch_size - 1) // config.batch_size)
        parameters = lora_style_parameters(self.model) if self.lora_style else self.model.model.parameters()
        schedule = LinearWarmupSchedule(
            config.learning_rate, total_steps=steps_per_epoch * config.num_epochs, warmup_ratio=config.warmup_ratio
        )
        optimizer = Adam(parameters, learning_rate=schedule, weight_decay=config.weight_decay)
        for _ in range(config.num_epochs):
            for minibatch in iterate_minibatches(pairs, config.batch_size, rng=rng):
                batch = self.model.collate([p.source for p in minibatch], [p.target for p in minibatch])
                self.model.model.train()
                optimizer.zero_grad()
                output = self.model.model(batch.input_ids, labels=batch.labels)
                output["loss"].backward()
                clip_grad_norm(parameters, config.max_grad_norm)
                optimizer.step()

    def predict(self, question: str, schema: DatabaseSchema) -> str:
        """Generate the DV query text for one question against one schema."""
        return self.predict_many([question], [schema])[0]

    def predict_many(self, questions: Sequence[str], schemas: Sequence[DatabaseSchema]) -> list[str]:
        """One padded forward pass over the whole batch (padding is fully masked)."""
        if self.model is None:
            raise RuntimeError(f"{self.name} baseline must be fit before predicting")
        sources = [text_to_vis_input(question, schema) for question, schema in zip(questions, schemas)]
        predictions = self.model.predict_batch(sources, use_cache=self.use_cache, precision=self.precision)
        return [prediction.replace(VQL_TAG.lower(), "").replace(VQL_TAG, "").strip() for prediction in predictions]


class Seq2VisBaseline(TextToVisBaseline):
    """The Seq2Vis baseline: a GRU encoder--decoder with attention."""

    name = "seq2vis"

    def __init__(
        self,
        embedding_dim: int = 32,
        hidden_size: int = 48,
        training: TrainingConfig | None = None,
        max_vocab_size: int | None = 2000,
    ):
        self.embedding_dim = embedding_dim
        self.hidden_size = hidden_size
        self.training = training or TrainingConfig(num_epochs=3)
        self.max_vocab_size = max_vocab_size
        self.model: Seq2SeqModel | None = None
        self.tokenizer = None
        self.max_input_length = 128
        self.max_target_length = 64

    def fit(self, examples: Sequence[NvBenchExample], pool: SyntheticDatabasePool) -> None:
        """Build the tokenizer and GRU model, then train on text-to-vis pairs."""
        from repro.tokenization.tokenizer import DataVisTokenizer

        sources = [text_to_vis_input(example.question, pool.get(example.db_id).schema) for example in examples]
        targets = [text_to_vis_target(example.query) for example in examples]
        self.tokenizer = DataVisTokenizer.build_from_corpus(sources + targets, max_vocab_size=self.max_vocab_size)
        vocab = self.tokenizer.vocab
        self.model = Seq2SeqModel(
            vocab_size=len(vocab),
            embedding_dim=self.embedding_dim,
            hidden_size=self.hidden_size,
            pad_id=vocab.pad_id,
            eos_id=vocab.eos_id,
            bos_id=vocab.bos_id,
            max_decode_length=self.max_target_length,
            seed=self.training.seed,
        )
        config = self.training
        rng = seeded_rng(derive_seed(config.seed, "seq2vis"))
        pairs = list(zip(sources, targets))
        steps_per_epoch = max(1, (len(pairs) + config.batch_size - 1) // config.batch_size)
        schedule = LinearWarmupSchedule(
            config.learning_rate, total_steps=steps_per_epoch * config.num_epochs, warmup_ratio=config.warmup_ratio
        )
        optimizer = Adam(self.model.parameters(), learning_rate=schedule, weight_decay=config.weight_decay)
        for _ in range(config.num_epochs):
            for minibatch in iterate_minibatches(pairs, config.batch_size, rng=rng):
                input_ids = pad_sequences(
                    [self.tokenizer.encode(source, max_length=self.max_input_length) for source, _ in minibatch],
                    vocab.pad_id,
                )
                labels = pad_sequences(
                    [self.tokenizer.encode(target, max_length=self.max_target_length) for _, target in minibatch],
                    vocab.pad_id,
                )
                self.model.train()
                optimizer.zero_grad()
                output = self.model(input_ids, labels)
                output["loss"].backward()
                clip_grad_norm(self.model.parameters(), config.max_grad_norm)
                optimizer.step()

    def predict(self, question: str, schema: DatabaseSchema) -> str:
        """Generate the DV query text for one question against one schema."""
        return self.predict_many([question], [schema])[0]

    def predict_many(self, questions: Sequence[str], schemas: Sequence[DatabaseSchema]) -> list[str]:
        """Batched greedy decoding; the GRU carries hidden state through pads."""
        if self.model is None or self.tokenizer is None:
            raise RuntimeError(f"{self.name} baseline must be fit before predicting")
        sources = [text_to_vis_input(question, schema) for question, schema in zip(questions, schemas)]
        input_ids = pad_sequences(
            [self.tokenizer.encode(source, max_length=self.max_input_length) for source in sources],
            self.tokenizer.vocab.pad_id,
        )
        generated = self.model.generate(input_ids, max_length=self.max_target_length)
        texts = [self.tokenizer.decode(row) for row in generated]
        return [text.replace(VQL_TAG.lower(), "").replace(VQL_TAG, "").strip() for text in texts]


# -- generic text-generation baselines -----------------------------------------------------------


class NeuralTextGeneration(TextGenerationBaseline):
    """A transformer (optionally warm-started, optionally LoRA-style) for text generation tasks.

    ``precision`` mirrors :class:`TransformerTextToVis`: the inference mode
    served after fitting, with ``"int8"`` quantizing the trained weights.
    """

    name = "transformer-generation"

    def __init__(
        self,
        config: DataVisT5Config | None = None,
        training: TrainingConfig | None = None,
        warm_start: str | None = None,
        lora_style: bool = False,
        model: DataVisT5 | None = None,
        use_cache: bool = True,
        precision: str | None = None,
    ):
        self.config = config or DataVisT5Config.from_preset("tiny")
        self.training = training or TrainingConfig(num_epochs=3)
        self.warm_start = warm_start
        self.lora_style = lora_style
        self.model = model
        self.use_cache = use_cache
        self.precision = precision

    def fit(self, examples: Sequence[Seq2SeqExample]) -> None:
        """Build (or reuse) the model, optionally warm-start, then fine-tune."""
        examples = list(examples)
        if self.model is None:
            texts = [example.source for example in examples] + [example.target for example in examples]
            self.model = DataVisT5.from_corpus(texts, config=self.config)
            if self.warm_start == "text":
                warm_start_on_text(self.model, [example.target for example in examples], seed=self.training.seed)
            elif self.warm_start == "queries":
                warm_start_on_queries(self.model, [example.source for example in examples], seed=self.training.seed)
        config = self.training
        rng = seeded_rng(derive_seed(config.seed, "neural_generation"))
        parameters = lora_style_parameters(self.model) if self.lora_style else self.model.model.parameters()
        steps_per_epoch = max(1, (len(examples) + config.batch_size - 1) // config.batch_size)
        schedule = LinearWarmupSchedule(
            config.learning_rate, total_steps=steps_per_epoch * config.num_epochs, warmup_ratio=config.warmup_ratio
        )
        optimizer = Adam(parameters, learning_rate=schedule, weight_decay=config.weight_decay)
        for _ in range(config.num_epochs):
            for minibatch in iterate_minibatches(examples, config.batch_size, rng=rng):
                batch = self.model.collate([e.source for e in minibatch], [e.target for e in minibatch])
                self.model.model.train()
                optimizer.zero_grad()
                output = self.model.model(batch.input_ids, labels=batch.labels)
                output["loss"].backward()
                clip_grad_norm(parameters, config.max_grad_norm)
                optimizer.step()
        if self.precision == "int8" and not self.model.quantized:
            # Training always runs float64; quantization is a post-fit step.
            self.model.quantize_int8()

    def predict(self, source: str) -> str:
        """Generate the output text for one encoded source sequence."""
        return self.predict_many([source])[0]

    def predict_many(self, sources: Sequence[str]) -> list[str]:
        """One padded forward pass over the whole batch (padding is fully masked)."""
        if self.model is None:
            raise RuntimeError(f"{self.name} baseline must be fit before predicting")
        return self.model.predict_batch(list(sources), use_cache=self.use_cache, precision=self.precision)


class Seq2SeqTextGeneration(TextGenerationBaseline):
    """The GRU Seq2Seq baseline for the text-generation tasks."""

    name = "seq2seq-generation"

    def __init__(
        self,
        embedding_dim: int = 32,
        hidden_size: int = 48,
        training: TrainingConfig | None = None,
        max_vocab_size: int | None = 2000,
        max_input_length: int = 128,
        max_target_length: int = 48,
    ):
        self.embedding_dim = embedding_dim
        self.hidden_size = hidden_size
        self.training = training or TrainingConfig(num_epochs=3)
        self.max_vocab_size = max_vocab_size
        self.max_input_length = max_input_length
        self.max_target_length = max_target_length
        self.model: Seq2SeqModel | None = None
        self.tokenizer = None

    def fit(self, examples: Sequence[Seq2SeqExample]) -> None:
        """Build the tokenizer and GRU model, then train on the task pairs."""
        from repro.tokenization.tokenizer import DataVisTokenizer

        examples = list(examples)
        texts = [example.source for example in examples] + [example.target for example in examples]
        self.tokenizer = DataVisTokenizer.build_from_corpus(texts, max_vocab_size=self.max_vocab_size)
        vocab = self.tokenizer.vocab
        self.model = Seq2SeqModel(
            vocab_size=len(vocab),
            embedding_dim=self.embedding_dim,
            hidden_size=self.hidden_size,
            pad_id=vocab.pad_id,
            eos_id=vocab.eos_id,
            bos_id=vocab.bos_id,
            max_decode_length=self.max_target_length,
            seed=self.training.seed,
        )
        config = self.training
        rng = seeded_rng(derive_seed(config.seed, "seq2seq_generation"))
        steps_per_epoch = max(1, (len(examples) + config.batch_size - 1) // config.batch_size)
        schedule = LinearWarmupSchedule(
            config.learning_rate, total_steps=steps_per_epoch * config.num_epochs, warmup_ratio=config.warmup_ratio
        )
        optimizer = Adam(self.model.parameters(), learning_rate=schedule, weight_decay=config.weight_decay)
        for _ in range(config.num_epochs):
            for minibatch in iterate_minibatches(examples, config.batch_size, rng=rng):
                input_ids = pad_sequences(
                    [self.tokenizer.encode(e.source, max_length=self.max_input_length) for e in minibatch],
                    vocab.pad_id,
                )
                labels = pad_sequences(
                    [self.tokenizer.encode(e.target, max_length=self.max_target_length) for e in minibatch],
                    vocab.pad_id,
                )
                self.model.train()
                optimizer.zero_grad()
                output = self.model(input_ids, labels)
                output["loss"].backward()
                clip_grad_norm(self.model.parameters(), config.max_grad_norm)
                optimizer.step()

    def predict(self, source: str) -> str:
        """Generate the output text for one encoded source sequence."""
        return self.predict_many([source])[0]

    def predict_many(self, sources: Sequence[str]) -> list[str]:
        """Batched greedy decoding; the GRU carries hidden state through pads."""
        if self.model is None or self.tokenizer is None:
            raise RuntimeError(f"{self.name} baseline must be fit before predicting")
        input_ids = pad_sequences(
            [self.tokenizer.encode(source, max_length=self.max_input_length) for source in sources],
            self.tokenizer.vocab.pad_id,
        )
        generated = self.model.generate(input_ids, max_length=self.max_target_length)
        return [self.tokenizer.decode(row) for row in generated]
