"""Zero-shot heuristic generation (the stand-in for zero-shot GPT-4).

A large general-purpose LLM prompted zero-shot has broad linguistic
competence but no knowledge of the corpus-specific output conventions.  The
heuristic generator mimics that profile: it produces fluent, plausible text
derived from the structure of the input (the DV query, the table, the
question) without ever being trained on the references, so it lands — like
zero-shot GPT-4 in the paper — well below fine-tuned models on the n-gram
metrics while staying far above the failed RNN baselines.
"""

from __future__ import annotations

import re
from collections.abc import Sequence

from repro.baselines.base import TextGenerationBaseline
from repro.datasets.corpus import Seq2SeqExample
from repro.tokenization.special_tokens import ANSWER_TAG, NL_TAG, QUESTION_TAG, SCHEMA_TAG, TABLE_TAG, VQL_TAG
from repro.vql.parser import parse_dv_query


class ZeroShotHeuristicGeneration(TextGenerationBaseline):
    """Produces descriptions / answers from input structure alone (no training)."""

    name = "zero-shot heuristic"

    def fit(self, examples: Sequence[Seq2SeqExample]) -> None:
        """Zero-shot: nothing to fit."""

    # -- prediction ----------------------------------------------------------------
    def predict(self, source: str) -> str:
        """Generate the output text for one encoded source sequence."""
        segments = _split_segments(source)
        if QUESTION_TAG in segments:
            return self._answer_question(segments)
        if VQL_TAG in segments:
            return self._describe_query(segments.get(VQL_TAG, ""))
        if TABLE_TAG in segments:
            return self._describe_table(segments.get(TABLE_TAG, ""))
        return "this chart summarizes the requested data ."

    # -- heuristics ------------------------------------------------------------------
    def _describe_query(self, query_text: str) -> str:
        try:
            query = parse_dv_query(query_text.strip())
        except Exception:
            return "a chart of the selected data ."
        x_item = query.select[0]
        y_item = query.select[1] if len(query.select) > 1 else query.select[0]
        parts = [f"a {query.chart_type.value} chart showing {_phrase(y_item.to_text())} for each {_phrase(x_item.column.column)}"]
        if query.has_join:
            parts.append(f"combining {query.from_table} with {query.joins[0].table}")
        if query.where:
            parts.append(f"where {_phrase(query.where[0].left.column)} is restricted")
        if query.order_by is not None:
            direction = "descending" if query.order_by.direction.value == "desc" else "ascending"
            parts.append(f"in {direction} order")
        return " ".join(parts) + " ."

    def _describe_table(self, table_text: str) -> str:
        columns = _table_columns(table_text)
        first_row = _table_row(table_text, 1)
        if columns and first_row:
            return (
                f"this table lists {_phrase(columns[0])} together with "
                + " and ".join(_phrase(column) for column in columns[1:3])
                + f" , for example {first_row[0]} ."
            )
        return "this table summarizes the listed records ."

    def _answer_question(self, segments: dict[str, str]) -> str:
        question = segments.get(QUESTION_TAG, "").lower()
        table_text = segments.get(TABLE_TAG, "")
        values = _table_numeric_values(table_text)
        if "meaning" in question or "explain" in question:
            return self._describe_query(segments.get(VQL_TAG, ""))
        if "suitable" in question or "executed" in question:
            return "Yes"
        if "how many parts" in question:
            return str(_table_row_count(table_text)) if table_text else "0"
        if "largest" in question and values:
            return _format_number(max(values))
        if "smallest" in question and values:
            return _format_number(min(values))
        if "total" in question and values:
            return _format_number(sum(values))
        if "equal value" in question:
            return "Yes" if values and len(set(values)) < len(values) else "No"
        if values:
            return _format_number(values[0])
        return "unknown"


# -- input parsing helpers --------------------------------------------------------------

_TAGS = (NL_TAG, VQL_TAG, SCHEMA_TAG, TABLE_TAG, QUESTION_TAG, ANSWER_TAG)


def _split_segments(source: str) -> dict[str, str]:
    """Split a tagged input sequence into {tag: segment-text}."""
    pattern = "(" + "|".join(re.escape(tag) for tag in _TAGS) + ")"
    pieces = re.split(pattern, source, flags=re.IGNORECASE)
    segments: dict[str, str] = {}
    current_tag: str | None = None
    tag_lookup = {tag.lower(): tag for tag in _TAGS}
    for piece in pieces:
        lowered = piece.strip().lower()
        if lowered in tag_lookup:
            current_tag = tag_lookup[lowered]
            segments.setdefault(current_tag, "")
        elif current_tag is not None:
            segments[current_tag] = (segments[current_tag] + " " + piece).strip()
    return segments


def _phrase(identifier: str) -> str:
    return identifier.replace("_", " ").replace(".", " ").strip()


def _table_columns(table_text: str) -> list[str]:
    match = re.search(r"col\s*:\s*(.*?)(?:row 1|$)", table_text, flags=re.IGNORECASE | re.DOTALL)
    if not match:
        return []
    return [column.strip() for column in match.group(1).split("|") if column.strip()]


def _table_row(table_text: str, index: int) -> list[str]:
    match = re.search(rf"row {index} :\s*(.*?)(?:row {index + 1} :|$)", table_text, flags=re.IGNORECASE | re.DOTALL)
    if not match:
        return []
    return [cell.strip() for cell in match.group(1).split("|") if cell.strip()]


def _table_row_count(table_text: str) -> int:
    return len(re.findall(r"row \d+ :", table_text))


def _table_numeric_values(table_text: str) -> list[float]:
    values: list[float] = []
    row_index = 1
    while True:
        row = _table_row(table_text, row_index)
        if not row:
            break
        for cell in row[1:]:
            try:
                values.append(float(cell))
            except ValueError:
                continue
        row_index += 1
    return values


def _format_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.2f}"
