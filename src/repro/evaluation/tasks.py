"""Task corpora: per-task train/valid/test (source, target) pairs.

The four downstream tasks are all text-to-text once the DV knowledge has been
encoded; this module assembles their task-specific corpora from the synthetic
datasets, using the fine-tuning targets defined in §V of the paper:

* text-to-vis:   NL + Schema            -> DV query
* vis-to-text:   DV query + Schema      -> Description
* FeVisQA:       Question + DV query + Schema + Table -> Answer
* table-to-text: Table                  -> Description
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.chart2text import Chart2TextDataset, generate_chart2text
from repro.datasets.corpus import (
    Seq2SeqExample,
    fevisqa_pair,
    nvbench_to_text_to_vis_pair,
    nvbench_to_vis_to_text_pair,
    table_pair,
)
from repro.datasets.fevisqa import FeVisQADataset, generate_fevisqa
from repro.datasets.nvbench import NvBenchDataset, generate_nvbench
from repro.datasets.spider import SyntheticDatabasePool, build_database_pool
from repro.datasets.splits import DatasetSplits, cross_domain_split, instance_split
from repro.datasets.wikitabletext import WikiTableTextDataset, generate_wikitabletext
from repro.encoding.sequences import strip_modality_tags

__all__ = ["TASKS", "TaskCorpora", "build_task_corpora", "strip_modality_tags"]

TASKS = ("text_to_vis", "vis_to_text", "fevisqa", "table_to_text")


@dataclass
class TaskCorpora:
    """Everything the experiment suite needs: datasets, splits and task pairs."""

    pool: SyntheticDatabasePool
    nvbench: NvBenchDataset
    nvbench_splits: DatasetSplits
    chart2text: Chart2TextDataset
    wikitabletext: WikiTableTextDataset
    fevisqa: FeVisQADataset
    fevisqa_splits: DatasetSplits
    chart2text_splits: DatasetSplits
    wikitabletext_splits: DatasetSplits
    train_pairs: dict[str, list[Seq2SeqExample]] = field(default_factory=dict)
    test_pairs: dict[str, list[Seq2SeqExample]] = field(default_factory=dict)

    def pretraining_inputs(self):
        """The train-split pieces consumed by :func:`build_pretraining_corpus`."""
        return (
            self.nvbench_splits.train,
            self.chart2text_splits.train,
            self.wikitabletext_splits.train,
            self.fevisqa_splits.train,
            self.pool,
        )


def build_task_corpora(
    num_databases: int | None = None,
    examples_per_database: int = 20,
    num_chart2text: int = 120,
    num_wikitabletext: int = 120,
    max_fevisqa: int | None = 600,
    max_test_examples: int | None = 40,
    seed: int = 0,
) -> TaskCorpora:
    """Generate all corpora, split them and build per-task (source, target) pairs.

    ``max_fevisqa`` / ``max_test_examples`` bound corpus sizes so the numpy
    training loops stay fast; ``None`` keeps everything.
    """
    pool = build_database_pool(num_databases=num_databases, seed=seed)
    nvbench = generate_nvbench(pool, examples_per_database=examples_per_database, seed=seed)
    nvbench_splits = cross_domain_split(nvbench.examples, seed=seed)

    chart2text = generate_chart2text(num_chart2text, seed=seed).filter_by_cells(150)
    wikitabletext = generate_wikitabletext(num_wikitabletext, seed=seed)
    chart2text_splits = instance_split(chart2text.examples, seed=seed)
    wikitabletext_splits = instance_split(wikitabletext.examples, seed=seed)

    fevisqa = generate_fevisqa(nvbench, seed=seed)
    fevisqa_examples = fevisqa.examples if max_fevisqa is None else fevisqa.examples[:max_fevisqa]
    fevisqa_splits = cross_domain_split(fevisqa_examples, seed=seed)

    corpora = TaskCorpora(
        pool=pool,
        nvbench=nvbench,
        nvbench_splits=nvbench_splits,
        chart2text=chart2text,
        wikitabletext=wikitabletext,
        fevisqa=fevisqa,
        fevisqa_splits=fevisqa_splits,
        chart2text_splits=chart2text_splits,
        wikitabletext_splits=wikitabletext_splits,
    )

    def cap(examples, limit):
        return examples if limit is None else examples[:limit]

    corpora.train_pairs = {
        "text_to_vis": [nvbench_to_text_to_vis_pair(e, pool) for e in nvbench_splits.train],
        "vis_to_text": [nvbench_to_vis_to_text_pair(e, pool) for e in nvbench_splits.train],
        "fevisqa": [fevisqa_pair(e) for e in fevisqa_splits.train],
        "table_to_text": [table_pair(e) for e in chart2text_splits.train + wikitabletext_splits.train],
    }
    corpora.test_pairs = {
        "text_to_vis": [nvbench_to_text_to_vis_pair(e, pool) for e in cap(nvbench_splits.test, max_test_examples)],
        "vis_to_text": [nvbench_to_vis_to_text_pair(e, pool) for e in cap(nvbench_splits.test, max_test_examples)],
        "fevisqa": [fevisqa_pair(e) for e in cap(fevisqa_splits.test, max_test_examples)],
        "table_to_text": [
            table_pair(e) for e in cap(chart2text_splits.test + wikitabletext_splits.test, max_test_examples)
        ],
    }
    return corpora
