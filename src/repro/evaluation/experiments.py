"""Experiment registry: one entry point per table of the paper's evaluation.

The :class:`ExperimentSuite` owns the synthetic corpora and a cache of trained
models, and exposes ``table04_rows`` / ``table06_rows`` / ``table08_rows`` /
``table12_rows`` methods whose output rows mirror the corresponding paper
tables.  The dataset statistics tables (I-III) are plain functions because
they need no training.

Scale presets keep the numpy training loops tractable: the default ``smoke``
scale runs the whole suite in minutes on a CPU, while ``paper`` uses larger
corpora and models for closer-to-paper behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.neural import warm_start_on_queries
from repro.core.config import DataVisT5Config, TrainingConfig
from repro.core.finetuning import MultiTaskFineTuner, SingleTaskFineTuner
from repro.core.model import DataVisT5
from repro.core.pretraining import HybridPretrainer
from repro.datasets.chart2text import generate_chart2text
from repro.datasets.corpus import PretrainingCorpus, build_pretraining_corpus
from repro.datasets.fevisqa import generate_fevisqa
from repro.datasets.nvbench import generate_nvbench
from repro.datasets.spider import build_database_pool
from repro.datasets.wikitabletext import generate_wikitabletext
from repro.evaluation.evaluator import evaluate_generation_model, evaluate_text_to_vis_model
from repro.evaluation.tasks import TaskCorpora, build_task_corpora
from repro.serving import Pipeline, PipelineConfig, build_generation, build_text_to_vis
from repro.utils.rng import derive_seed


# -- dataset statistics (Tables I-III) ----------------------------------------------------


def table01_nvbench_statistics(
    examples_per_database: int = 20,
    num_databases: int | None = None,
    seed: int = 0,
) -> dict[str, dict]:
    """Per-split nvBench statistics (the paper's Table I)."""
    from repro.datasets.splits import cross_domain_split

    pool = build_database_pool(num_databases=num_databases, seed=seed)
    nvbench = generate_nvbench(pool, examples_per_database=examples_per_database, seed=seed)
    splits = cross_domain_split(nvbench.examples, seed=seed)
    rows: dict[str, dict] = {}
    for split_name, examples in (("train", splits.train), ("valid", splits.valid), ("test", splits.test)):
        databases = {example.db_id for example in examples}
        without_join = [example for example in examples if not example.has_join]
        rows[split_name] = {
            "instances_without_join": len(without_join),
            "instances": len(examples),
            "databases_without_join": len({example.db_id for example in without_join}),
            "databases": len(databases),
        }
    rows["total"] = {
        "instances_without_join": sum(rows[s]["instances_without_join"] for s in ("train", "valid", "test")),
        "instances": len(nvbench.examples),
        "databases_without_join": len({e.db_id for e in nvbench.examples if not e.has_join}),
        "databases": len(nvbench.database_ids()),
    }
    return rows


def table02_table_corpora_statistics(
    num_chart2text: int = 300,
    num_wikitabletext: int = 300,
    seed: int = 0,
) -> dict[str, dict]:
    """Chart2Text / WikiTableText statistics (the paper's Table II)."""
    from repro.datasets.splits import instance_split

    chart2text = generate_chart2text(num_chart2text, seed=seed)
    wikitabletext = generate_wikitabletext(num_wikitabletext, seed=seed)
    chart_splits = instance_split(chart2text.examples, seed=seed)
    wiki_splits = instance_split(wikitabletext.examples, seed=seed)
    return {
        "chart2text": {
            "train": len(chart_splits.train),
            "valid": len(chart_splits.valid),
            "test": len(chart_splits.test),
            **chart2text.cell_statistics(),
        },
        "wikitabletext": {
            "train": len(wiki_splits.train),
            "valid": len(wiki_splits.valid),
            "test": len(wiki_splits.test),
            **wikitabletext.cell_statistics(),
        },
    }


def table03_fevisqa_statistics(
    examples_per_database: int = 20,
    num_databases: int | None = None,
    seed: int = 0,
) -> dict[str, dict]:
    """FeVisQA statistics (the paper's Table III)."""
    from repro.datasets.splits import cross_domain_split

    pool = build_database_pool(num_databases=num_databases, seed=seed)
    nvbench = generate_nvbench(pool, examples_per_database=examples_per_database, seed=seed)
    fevisqa = generate_fevisqa(nvbench, seed=seed)
    splits = cross_domain_split(fevisqa.examples, seed=seed)
    rows: dict[str, dict] = {}
    for split_name, examples in (("train", splits.train), ("valid", splits.valid), ("test", splits.test)):
        rows[split_name] = {
            "databases": len({example.db_id for example in examples}),
            "qa_pairs": len(examples),
            "dv_queries": len({example.query_text for example in examples}),
            "type_1": sum(1 for e in examples if e.question_type == 1),
            "type_2": sum(1 for e in examples if e.question_type == 2),
            "type_3": sum(1 for e in examples if e.question_type == 3),
        }
    rows["total"] = fevisqa.statistics()
    return rows


# -- experiment scales -----------------------------------------------------------------------


@dataclass
class ExperimentScale:
    """Knobs bounding corpus sizes and training budgets."""

    name: str = "smoke"
    num_databases: int | None = 10
    examples_per_database: int = 12
    num_chart2text: int = 60
    num_wikitabletext: int = 60
    max_fevisqa: int | None = 400
    max_test_examples: int = 24
    max_train_examples: int | None = 160
    small_preset: str = "tiny"
    large_preset: str = "base"
    pretrain_epochs: int = 1
    finetune_epochs: int = 2
    batch_size: int = 8
    learning_rate: float = 5e-3
    include_large_models: bool = False
    max_vocab_size: int = 2500

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """The tiny default scale used by the benchmark harness."""
        return cls()

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """A larger configuration for closer-to-paper behaviour (slower)."""
        return cls(
            name="paper",
            num_databases=None,
            examples_per_database=40,
            num_chart2text=200,
            num_wikitabletext=200,
            max_fevisqa=1500,
            max_test_examples=60,
            max_train_examples=None,
            small_preset="base",
            large_preset="large",
            pretrain_epochs=3,
            finetune_epochs=4,
            include_large_models=True,
            max_vocab_size=6000,
        )


# -- the suite -------------------------------------------------------------------------------


@dataclass
class ExperimentSuite:
    """Builds corpora once and trains/evaluates every system of the evaluation section."""

    scale: ExperimentScale = field(default_factory=ExperimentScale.smoke)
    seed: int = 0

    def __post_init__(self):
        self._corpora: TaskCorpora | None = None
        self._pretraining_corpus: PretrainingCorpus | None = None
        self._model_cache: dict[str, DataVisT5] = {}

    # -- shared artefacts -------------------------------------------------------------
    @property
    def corpora(self) -> TaskCorpora:
        """The task corpora, generated once and memoized."""
        if self._corpora is None:
            self._corpora = build_task_corpora(
                num_databases=self.scale.num_databases,
                examples_per_database=self.scale.examples_per_database,
                num_chart2text=self.scale.num_chart2text,
                num_wikitabletext=self.scale.num_wikitabletext,
                max_fevisqa=self.scale.max_fevisqa,
                max_test_examples=self.scale.max_test_examples,
                seed=self.seed,
            )
            if self.scale.max_train_examples is not None:
                for task, pairs in self._corpora.train_pairs.items():
                    self._corpora.train_pairs[task] = pairs[: self.scale.max_train_examples]
        return self._corpora

    @property
    def pretraining_corpus(self) -> PretrainingCorpus:
        """The hybrid pre-training corpus, generated once and memoized."""
        if self._pretraining_corpus is None:
            nvbench_train, chart_train, wiki_train, fevisqa_train, pool = self.corpora.pretraining_inputs()
            if self.scale.max_train_examples is not None:
                nvbench_train = nvbench_train[: self.scale.max_train_examples]
                fevisqa_train = fevisqa_train[: self.scale.max_train_examples]
            self._pretraining_corpus = build_pretraining_corpus(
                nvbench_train, chart_train, wiki_train, fevisqa_train, pool
            )
        return self._pretraining_corpus

    def training_config(self, num_epochs: int | None = None, **overrides) -> TrainingConfig:
        """A :class:`TrainingConfig` at the suite's scale, with overrides."""
        return TrainingConfig(
            learning_rate=overrides.pop("learning_rate", self.scale.learning_rate),
            batch_size=overrides.pop("batch_size", self.scale.batch_size),
            num_epochs=num_epochs or self.scale.finetune_epochs,
            seed=overrides.pop("seed", self.seed),
            **overrides,
        )

    def model_config(self, preset: str | None = None) -> DataVisT5Config:
        """A :class:`DataVisT5Config` preset at the suite's scale."""
        return DataVisT5Config.from_preset(
            preset or self.scale.small_preset,
            max_input_length=128,
            max_target_length=64,
            max_decode_length=64,
            seed=self.seed,
        )

    # -- DataVisT5 variants ---------------------------------------------------------------
    def fresh_model(self, preset: str | None = None) -> DataVisT5:
        """An untrained DataVisT5 whose vocabulary covers the pre-training corpus."""
        return DataVisT5.from_corpus(
            self.pretraining_corpus.all_texts(),
            config=self.model_config(preset),
            max_vocab_size=self.scale.max_vocab_size,
        )

    def pretrained_model(self, preset: str | None = None, use_bdc: bool = True) -> DataVisT5:
        """A hybrid-pretrained DataVisT5 (cached per preset / objective choice)."""
        key = f"pretrained:{preset or self.scale.small_preset}:bdc={use_bdc}"
        if key not in self._model_cache:
            model = self.fresh_model(preset)
            corpus = self.pretraining_corpus
            if not use_bdc:
                corpus = PretrainingCorpus(bdc_pairs=[], mlm_texts=list(corpus.mlm_texts) or [""])
            config = self.training_config(num_epochs=self.scale.pretrain_epochs)
            if corpus.bdc_pairs or corpus.mlm_texts:
                HybridPretrainer(model, corpus, config).train()
            self._model_cache[key] = model
        return self._clone_with_weights(self._model_cache[key])

    def datavist5_mft(self, preset: str | None = None, use_bdc: bool = True, use_temperature: bool = True) -> DataVisT5:
        """The full DataVisT5 recipe: hybrid pre-training then multi-task fine-tuning."""
        key = f"mft:{preset or self.scale.small_preset}:bdc={use_bdc}:temp={use_temperature}"
        if key not in self._model_cache:
            model = self.pretrained_model(preset, use_bdc=use_bdc)
            tuner = MultiTaskFineTuner(
                model,
                self.corpora.train_pairs,
                self.training_config(),
                use_temperature_mixing=use_temperature,
            )
            tuner.train()
            self._model_cache[key] = model
        return self._model_cache[key]

    def datavist5_sft(self, task: str, preset: str | None = None) -> DataVisT5:
        """DataVisT5 pre-training followed by single-task fine-tuning on ``task``."""
        key = f"sft:{preset or self.scale.small_preset}:{task}"
        if key not in self._model_cache:
            model = self.pretrained_model(preset)
            SingleTaskFineTuner(model, self.corpora.train_pairs[task], self.training_config()).train()
            self._model_cache[key] = model
        return self._model_cache[key]

    def codet5_sft(self, task: str, preset: str | None = None) -> DataVisT5:
        """CodeT5+-analogue: code-style warm start then single-task fine-tuning."""
        key = f"codet5:{preset or self.scale.small_preset}:{task}"
        if key not in self._model_cache:
            model = self.fresh_model(preset)
            query_texts = [example.query_text for example in self.corpora.nvbench_splits.train]
            warm_start_on_queries(model, query_texts, seed=derive_seed(self.seed, "codet5"))
            SingleTaskFineTuner(model, self.corpora.train_pairs[task], self.training_config()).train()
            self._model_cache[key] = model
        return self._model_cache[key]

    def t5_sft(self, task: str, preset: str | None = None) -> DataVisT5:
        """Plain T5 analogue: no warm start, single-task fine-tuning only."""
        key = f"t5:{preset or self.scale.small_preset}:{task}"
        if key not in self._model_cache:
            model = self.fresh_model(preset)
            SingleTaskFineTuner(model, self.corpora.train_pairs[task], self.training_config()).train()
            self._model_cache[key] = model
        return self._model_cache[key]

    def _clone_with_weights(self, model: DataVisT5) -> DataVisT5:
        clone = model.clone_architecture()
        clone.copy_weights_from(model)
        return clone

    # -- serving ----------------------------------------------------------------------------
    def pipeline(self, config: PipelineConfig | None = None) -> Pipeline:
        """A serving :class:`Pipeline` over the fully-trained multi-task DataVisT5.

        The model is trained (or fetched from the suite's cache) on first call;
        the returned pipeline serves all three interactive tasks from it.
        """
        return Pipeline.from_model(self.datavist5_mft(), config=config)

    # -- Table IV: text-to-vis ---------------------------------------------------------------
    def table04_rows(self, include_llm_analogues: bool = True) -> list[dict]:
        """Text-to-vis comparison on the non-join and join subsets of the test split."""
        corpora = self.corpora
        test_without_join = [e for e in corpora.nvbench_splits.test if not e.has_join][: self.scale.max_test_examples]
        test_with_join = [e for e in corpora.nvbench_splits.test if e.has_join][: self.scale.max_test_examples]
        train = corpora.nvbench_splits.train
        if self.scale.max_train_examples is not None:
            train = train[: self.scale.max_train_examples]
        pool = corpora.pool

        # Every comparison system is constructed through the serving registry,
        # from the same specs a Pipeline.from_config() call would use.
        neural = {"config": self.model_config(), "training": self.training_config()}
        systems: list[tuple[str, str, dict]] = [
            ("Seq2Vis", "-", {"type": "seq2vis", "training": self.training_config()}),
            ("Transformer", "-", {"type": "neural", **neural}),
            ("ncNet", "-", {"type": "ncnet", **neural}),
            ("RGVisNet", "-", {"type": "retrieval", "revise": True}),
            ("CodeT5+ (small)", "+SFT", {"type": "neural", **neural, "warm_start": "queries"}),
        ]
        if include_llm_analogues:
            systems.extend(
                [
                    ("GPT-4 (5-shot)", "+Similarity", {"type": "few_shot_retrieval"}),
                    (
                        "Llama2 analogue",
                        "+LoRA",
                        {"type": "neural", **neural, "warm_start": "text", "lora_style": True},
                    ),
                    (
                        "Mistral analogue",
                        "+LoRA",
                        {
                            "type": "neural",
                            "config": self.model_config(),
                            "training": self.training_config(seed=derive_seed(self.seed, "mistral")),
                            "warm_start": "text",
                            "lora_style": True,
                        },
                    ),
                ]
            )
        if self.scale.include_large_models:
            systems.append(
                (
                    "CodeT5+ (large)",
                    "+SFT",
                    {
                        "type": "neural",
                        "config": self.model_config(self.scale.large_preset),
                        "training": self.training_config(),
                        "warm_start": "queries",
                    },
                )
            )

        rows: list[dict] = []
        for name, setting, spec in systems:
            system = build_text_to_vis(spec)
            system.fit(train, pool)
            rows.append(self._text_to_vis_row(name, setting, system, test_without_join, test_with_join, pool))

        rows.append(
            self._text_to_vis_row(
                "DataVisT5 (small)",
                "+MFT",
                self.datavist5_mft(),
                test_without_join,
                test_with_join,
                pool,
            )
        )
        if self.scale.include_large_models:
            rows.append(
                self._text_to_vis_row(
                    "DataVisT5 (large)",
                    "+MFT",
                    self.datavist5_mft(self.scale.large_preset),
                    test_without_join,
                    test_with_join,
                    pool,
                )
            )
        return rows

    def _text_to_vis_row(self, name, setting, system, test_without_join, test_with_join, pool) -> dict:
        row = {"model": name, "setting": setting}
        if test_without_join:
            result = evaluate_text_to_vis_model(system, test_without_join, pool)
            row["without_join"] = result.as_dict()
        if test_with_join:
            result = evaluate_text_to_vis_model(system, test_with_join, pool)
            row["with_join"] = result.as_dict()
        return row

    # -- Tables VI and VIII: generation tasks ------------------------------------------------------
    def generation_rows(self, task: str, include_llm_analogues: bool = True) -> list[dict]:
        """Comparison rows for one generation task (vis_to_text / fevisqa / table_to_text)."""
        train = self.corpora.train_pairs[task]
        test = self.corpora.test_pairs[task]
        neural = {"config": self.model_config(), "training": self.training_config()}
        systems: list[tuple[str, str, dict]] = [
            ("Seq2Seq", "-", {"type": "seq2seq", "training": self.training_config()}),
            ("Transformer", "-", {"type": "neural", **neural}),
            ("BART analogue", "+SFT", {"type": "neural", **neural, "warm_start": "text"}),
            ("CodeT5+ (small)", "+SFT", {"type": "neural", **neural, "warm_start": "queries"}),
        ]
        if include_llm_analogues:
            systems.extend(
                [
                    ("GPT-4 (0-shot)", "-", {"type": "heuristics"}),
                    (
                        "Llama2 analogue",
                        "+LoRA",
                        {"type": "neural", **neural, "warm_start": "text", "lora_style": True},
                    ),
                    (
                        "Mistral analogue",
                        "+LoRA",
                        {
                            "type": "neural",
                            "config": self.model_config(),
                            "training": self.training_config(seed=derive_seed(self.seed, "mistral_gen")),
                            "warm_start": "text",
                            "lora_style": True,
                        },
                    ),
                ]
            )
        rows: list[dict] = []
        for name, setting, spec in systems:
            system = build_generation(spec)
            system.fit(train)
            metrics = evaluate_generation_model(system, test)
            rows.append({"model": name, "setting": setting, "metrics": metrics.as_dict()})
        mft_model = self.datavist5_mft()
        rows.append(
            {
                "model": "DataVisT5 (small)",
                "setting": "+MFT",
                "metrics": evaluate_generation_model(mft_model, test).as_dict(),
            }
        )
        if self.scale.include_large_models:
            rows.append(
                {
                    "model": "DataVisT5 (large)",
                    "setting": "+MFT",
                    "metrics": evaluate_generation_model(self.datavist5_mft(self.scale.large_preset), test).as_dict(),
                }
            )
        return rows

    def table06_rows(self, include_llm_analogues: bool = True) -> list[dict]:
        """Vis-to-text comparison (the paper's Table VI)."""
        return self.generation_rows("vis_to_text", include_llm_analogues)

    def table08_rows(self, include_llm_analogues: bool = True) -> dict[str, list[dict]]:
        """FeVisQA and table-to-text comparison (the paper's Table VIII)."""
        return {
            "fevisqa": self.generation_rows("fevisqa", include_llm_analogues),
            "table_to_text": self.generation_rows("table_to_text", include_llm_analogues),
        }

    # -- Table XII: ablations -------------------------------------------------------------------------
    def table12_rows(self) -> list[dict]:
        """Ablation study over the critical design components."""
        corpora = self.corpora
        pool = corpora.pool
        test_t2v = corpora.nvbench_splits.test[: self.scale.max_test_examples]

        def evaluate_all(model: DataVisT5) -> dict[str, float]:
            scores = {
                "text_to_vis": evaluate_text_to_vis_model(model, test_t2v, pool).mean_of_components(),
                "vis_to_text": evaluate_generation_model(model, corpora.test_pairs["vis_to_text"]).mean_of_components(),
                "fevisqa": evaluate_generation_model(model, corpora.test_pairs["fevisqa"]).mean_of_components(),
                "table_to_text": evaluate_generation_model(model, corpora.test_pairs["table_to_text"]).mean_of_components(),
            }
            scores["mean"] = sum(scores.values()) / len(scores)
            return scores

        rows: list[dict] = []
        rows.append({"model": "DataVisT5", "method": "MFT", "scores": evaluate_all(self.datavist5_mft())})
        rows.append({"model": "w/o BDC", "method": "MFT", "scores": evaluate_all(self.datavist5_mft(use_bdc=False))})
        rows.append(
            {
                "model": "w/o up-sampling",
                "method": "MFT",
                "scores": evaluate_all(self.datavist5_mft(use_temperature=False)),
            }
        )
        rows.append({"model": "w/o MFT", "method": "zero-shot", "scores": evaluate_all(self.pretrained_model())})

        # Single-task variants need one model per task; report each task's own model.
        def sft_scores(builder) -> dict[str, float]:
            scores = {
                "text_to_vis": evaluate_text_to_vis_model(builder("text_to_vis"), test_t2v, pool).mean_of_components(),
                "vis_to_text": evaluate_generation_model(builder("vis_to_text"), corpora.test_pairs["vis_to_text"]).mean_of_components(),
                "fevisqa": evaluate_generation_model(builder("fevisqa"), corpora.test_pairs["fevisqa"]).mean_of_components(),
                "table_to_text": evaluate_generation_model(builder("table_to_text"), corpora.test_pairs["table_to_text"]).mean_of_components(),
            }
            scores["mean"] = sum(scores.values()) / len(scores)
            return scores

        rows.append({"model": "DataVisT5", "method": "SFT", "scores": sft_scores(self.datavist5_sft)})
        rows.append({"model": "CodeT5+ analogue", "method": "SFT", "scores": sft_scores(self.codet5_sft)})
        rows.append({"model": "T5 analogue", "method": "SFT", "scores": sft_scores(self.t5_sft)})
        return rows
