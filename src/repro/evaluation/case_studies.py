"""Case studies: the qualitative examples of Tables V, VII, IX, X, XI and Figures 6-9.

Each case study builds the same *kind* of scenario the paper shows — same
database domain, same query structure, same question types — over the
synthetic databases, renders the charts/tables as ASCII and (optionally)
collects predictions from a dictionary of systems.  When no systems are
passed, lightweight no-training baselines are used so the case studies run in
milliseconds.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.charts.chart import build_chart
from repro.charts.properties import chart_properties
from repro.charts.render import render_ascii_chart, render_table
from repro.charts.vegalite import to_vega_lite
from repro.database.executor import execute_query
from repro.datasets.spider import SyntheticDatabasePool, build_database_pool
from repro.encoding.schema_encoder import encode_schema
from repro.encoding.sequences import fevisqa_input, table_to_text_input, vis_to_text_input
from repro.encoding.table_encoder import encode_result_table, encode_table
from repro.evaluation.tasks import strip_modality_tags
from repro.vql.parser import parse_dv_query
from repro.vql.standardize import standardize_dv_query


def _default_pool() -> SyntheticDatabasePool:
    return build_database_pool(seed=0)


def _database_for(pool: SyntheticDatabasePool | None, name: str):
    """Fetch ``name`` from ``pool``, falling back to the full default pool.

    Case studies need specific domains (inn, allergy, film_rank); a caller may
    pass a truncated pool that lacks them, in which case the canonical
    database is generated on the fly.
    """
    if pool is not None and name in pool.names():
        return pool.get(name)
    return _default_pool().get(name)


def _predict_all(systems: Mapping[str, Callable[[str], str]] | None, source: str) -> dict[str, str]:
    predictions: dict[str, str] = {}
    if not systems:
        return predictions
    for name, system in systems.items():
        predict = getattr(system, "predict", system)
        predictions[name] = strip_modality_tags(str(predict(source)))
    return predictions


# -- Table V / Figure 6: text-to-vis ------------------------------------------------------------


def text_to_vis_case_study(pool: SyntheticDatabasePool | None = None, systems: Mapping | None = None) -> dict:
    """The inn/rooms scenario: average and minimum room price per decor as a scatter.

    Mirrors the paper's Table V question "Just show the average and minimum
    price of the rooms in different decor using a scatter." and Figure 6.
    """
    database = _database_for(pool, "inn")
    question = "Just show the average and minimum price of the rooms in different decor using a scatter ."
    gold = standardize_dv_query(
        parse_dv_query(
            "visualize scatter select avg(rooms.baseprice), min(rooms.baseprice) from rooms group by rooms.decor"
        ),
        schema=database.schema,
    )
    result = execute_query(gold, database)
    chart = build_chart(gold, result=result)
    study = {
        "question": question,
        "db_id": database.name,
        "schema": encode_schema(database.schema),
        "ground_truth": gold.to_text(),
        "result_table": render_table(result, title="execution result"),
        "chart": render_ascii_chart(chart),
        "vega_lite": to_vega_lite(gold),
        "predictions": {},
    }
    if systems:
        for name, system in systems.items():
            predicted = system.predict(question, database.schema)
            entry = {"query": predicted}
            try:
                predicted_query = parse_dv_query(predicted)
                predicted_result = execute_query(predicted_query, database)
                entry["chart"] = render_ascii_chart(build_chart(predicted_query, result=predicted_result))
                entry["matches_ground_truth"] = predicted_query.to_text() == gold.to_text()
            except Exception as error:
                entry["chart"] = f"[not executable: {type(error).__name__}]"
                entry["matches_ground_truth"] = False
            study["predictions"][name] = entry
    return study


# -- Table VII / Figure 7: vis-to-text ------------------------------------------------------------


def vis_to_text_case_study(pool: SyntheticDatabasePool | None = None, systems: Mapping | None = None) -> dict:
    """The allergy scenario: counting students without a food allergy, bar chart.

    Mirrors Table VII's DV query (with a NOT IN subquery) and Figure 7.
    """
    database = _database_for(pool, "allergy")
    query_text = (
        "visualize bar select student.lname, count(student.lname) from student "
        "where student.stuid not in (select has_allergy.stuid from has_allergy "
        "join allergy_type on has_allergy.allergy = allergy_type.allergy "
        "where allergy_type.allergytype = 'food') "
        "group by student.lname order by count(student.lname) asc"
    )
    query = standardize_dv_query(parse_dv_query(query_text), schema=database.schema)
    result = execute_query(query, database)
    chart = build_chart(query, result=result)
    ground_truth = (
        "List the last name of the students who do not have any food type allergy and count them "
        "in a bar chart , show y-axis from low to high order ."
    )
    source = vis_to_text_input(query, database.schema)
    return {
        "db_id": database.name,
        "query": query.to_text(),
        "schema": encode_schema(database.schema),
        "ground_truth": ground_truth,
        "chart": render_ascii_chart(chart),
        "source": source,
        "predictions": _predict_all(systems, source),
    }


# -- Table IX / X / Figure 8: FeVisQA ----------------------------------------------------------------


def fevisqa_case_study(pool: SyntheticDatabasePool | None = None, systems: Mapping | None = None) -> dict:
    """The film_rank scenario: film types joined with market estimations, four DV questions.

    Mirrors Table IX's input formats, Figure 8's chart/table and Table X's QA.
    """
    database = _database_for(pool, "film_rank")
    query_text = (
        "visualize bar select film_market_estimation.type, count(film_market_estimation.type) "
        "from film_market_estimation join film on film_market_estimation.film_id = film.film_id "
        "group by film_market_estimation.type order by film_market_estimation.type asc"
    )
    query = standardize_dv_query(parse_dv_query(query_text), schema=database.schema)
    result = execute_query(query, database)
    chart = build_chart(query, result=result)
    properties = chart_properties(chart)
    table_text = encode_result_table(result)
    questions = [
        ("Is any equal value of y-axis in the chart ?", "Yes" if properties.has_duplicate_values else "No"),
        ("How many parts are there in the chart ?", str(properties.num_parts)),
        ("What is the value of the smallest part in the chart ?", _number(properties.min_value)),
        (f"What is the total number of {chart.y_label} ?", _number(properties.total)),
    ]
    qa_rows = []
    for question, answer in questions:
        source = fevisqa_input(question, query=query, schema=database.schema, table=table_text)
        qa_rows.append(
            {
                "question": question,
                "ground_truth": answer,
                "source": source,
                "predictions": _predict_all(systems, source),
            }
        )
    return {
        "db_id": database.name,
        "query": query.to_text(),
        "schema": encode_schema(database.schema),
        "table": table_text,
        "result_table": render_table(result, title="execution result"),
        "chart": render_ascii_chart(chart),
        "qa": qa_rows,
    }


# -- Table XI / Figure 9: table-to-text ----------------------------------------------------------------


def table_to_text_case_study(systems: Mapping | None = None) -> dict:
    """The so ji-sub book-table scenario of Table XI / Figure 9."""
    columns = ["subjtitle", "subjsubtitle", "year", "english title", "publisher", "notes"]
    rows = [["so ji-sub", "books", 2010, "so ji-sub's journey", "sallim", "photo-essays"]]
    ground_truth = "Sallim was the publisher of so ji-sub's journey in 2010 ."
    table_text = encode_table(columns, rows)
    source = table_to_text_input(table_text)
    return {
        "columns": columns,
        "rows": rows,
        "table": table_text,
        "rendered_table": render_table(type("R", (), {"columns": columns, "rows": [tuple(rows[0])]})()),
        "ground_truth": ground_truth,
        "source": source,
        "predictions": _predict_all(systems, source),
    }


def _number(value) -> str:
    if value is None:
        return "unknown"
    if float(value).is_integer():
        return str(int(value))
    return f"{float(value):.2f}"
