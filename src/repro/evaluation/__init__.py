"""Evaluation harness: task runners, the experiment registry keyed by paper
table/figure, case studies and report formatting."""

from repro.evaluation.tasks import TaskCorpora, build_task_corpora, strip_modality_tags
from repro.evaluation.evaluator import (
    evaluate_text_to_vis_model,
    evaluate_generation_model,
    evaluate_predictions,
)
from repro.evaluation.experiments import (
    ExperimentScale,
    ExperimentSuite,
    table01_nvbench_statistics,
    table02_table_corpora_statistics,
    table03_fevisqa_statistics,
)
from repro.evaluation.reports import format_table, format_metric_row
from repro.evaluation import case_studies

__all__ = [
    "TaskCorpora",
    "build_task_corpora",
    "strip_modality_tags",
    "evaluate_text_to_vis_model",
    "evaluate_generation_model",
    "evaluate_predictions",
    "ExperimentScale",
    "ExperimentSuite",
    "table01_nvbench_statistics",
    "table02_table_corpora_statistics",
    "table03_fevisqa_statistics",
    "format_table",
    "format_metric_row",
    "case_studies",
]
