"""Report formatting: print experiment rows the way the paper's tables read."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_metric_row(label: str, metrics: Mapping[str, object], keys: Sequence[str] | None = None, width: int = 26) -> str:
    """One table row: a left-aligned label followed by fixed-width metric cells."""
    keys = list(keys) if keys is not None else [key for key in metrics if key not in ("examples", "unparseable")]
    cells = []
    for key in keys:
        value = metrics.get(key)
        if isinstance(value, float):
            cells.append(f"{value:8.4f}")
        else:
            cells.append(f"{value!s:>8}")
    return f"{label:<{width}} " + " ".join(cells)


def format_table(
    title: str,
    rows: Sequence[Mapping[str, object]],
    metric_keys: Sequence[str],
    label_key: str = "model",
    metrics_key: str | None = "metrics",
    width: int = 26,
) -> str:
    """Format a list of row dicts into an aligned text table."""
    lines = [title, "=" * len(title)]
    header = f"{'model':<{width}} " + " ".join(f"{key:>8}" for key in metric_keys)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        label = str(row.get(label_key, "?"))
        setting = row.get("setting")
        if setting and setting != "-":
            label = f"{label} {setting}"
        metrics = row.get(metrics_key) if metrics_key else row
        if metrics is None:
            metrics = row
        lines.append(format_metric_row(label, metrics, metric_keys, width=width))
    return "\n".join(lines)


def format_text_to_vis_table(title: str, rows: Sequence[Mapping[str, object]], subset: str = "without_join") -> str:
    """Format Table-IV style rows for one of the two nvBench subsets."""
    metric_keys = ("Vis EM", "Axis EM", "Data EM", "EM")
    printable = []
    for row in rows:
        metrics = row.get(subset)
        if metrics is None:
            continue
        printable.append({"model": row["model"], "setting": row.get("setting", "-"), "metrics": metrics})
    return format_table(title, printable, metric_keys)


def format_ablation_table(title: str, rows: Sequence[Mapping[str, object]]) -> str:
    """Format Table-XII style rows (per-task mean scores, scaled by 100)."""
    metric_keys = ("text_to_vis", "vis_to_text", "fevisqa", "table_to_text", "mean")
    printable = []
    for row in rows:
        scores = {key: 100.0 * value for key, value in row["scores"].items()}
        printable.append({"model": f"{row['model']} [{row['method']}]", "metrics": scores})
    return format_table(title, printable, metric_keys, width=32)
