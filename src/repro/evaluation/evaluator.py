"""Task evaluators: run a model over a test split and compute the paper's metrics."""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.baselines.base import TextGenerationBaseline, TextToVisBaseline
from repro.core.model import DataVisT5
from repro.datasets.corpus import Seq2SeqExample
from repro.datasets.nvbench import NvBenchExample
from repro.datasets.spider import SyntheticDatabasePool
from repro.encoding.sequences import text_to_vis_input
from repro.evaluation.tasks import strip_modality_tags
from repro.metrics.aggregate import GenerationMetrics, evaluate_generation
from repro.metrics.exact_match import ExactMatchResult, corpus_exact_match


def evaluate_text_to_vis_model(
    model: TextToVisBaseline | DataVisT5 | Callable[[str], str],
    examples: Sequence[NvBenchExample],
    pool: SyntheticDatabasePool,
) -> ExactMatchResult:
    """Evaluate a text-to-vis system with the EM metric family.

    ``model`` may be a :class:`TextToVisBaseline`, a :class:`DataVisT5`
    (fed the standard ``<NL> ... <schema> ...`` input) or any callable from
    source text to predicted query text.
    """
    predictions: list[str] = []
    references: list[str] = []
    for example in examples:
        schema = pool.get(example.db_id).schema
        if isinstance(model, TextToVisBaseline):
            predicted = model.predict(example.question, schema)
        elif isinstance(model, DataVisT5):
            predicted = model.predict(text_to_vis_input(example.question, schema))
        else:
            predicted = model(text_to_vis_input(example.question, schema))
        predictions.append(strip_modality_tags(predicted))
        references.append(example.query_text)
    return corpus_exact_match(predictions, references)


def evaluate_generation_model(
    model: TextGenerationBaseline | DataVisT5 | Callable[[str], str],
    examples: Sequence[Seq2SeqExample],
) -> GenerationMetrics:
    """Evaluate a generation system (vis-to-text / FeVisQA / table-to-text)."""
    predictions: list[str] = []
    references: list[str] = []
    for example in examples:
        if isinstance(model, TextGenerationBaseline):
            predicted = model.predict(example.source)
        elif isinstance(model, DataVisT5):
            predicted = model.predict(example.source)
        else:
            predicted = model(example.source)
        predictions.append(strip_modality_tags(predicted))
        references.append(strip_modality_tags(example.target))
    return evaluate_generation(predictions, references)


def evaluate_predictions(predictions: Sequence[str], references: Sequence[str]) -> GenerationMetrics:
    """Metric bundle for pre-computed predictions (tags stripped on both sides)."""
    return evaluate_generation(
        [strip_modality_tags(p) for p in predictions],
        [strip_modality_tags(r) for r in references],
    )
