"""Deterministic random-number helpers.

Every stochastic component in the library (dataset synthesis, weight
initialisation, span corruption, temperature sampling) accepts either an
integer seed or a ``numpy.random.Generator``.  Centralising the conversion
here keeps experiments reproducible end to end: the benchmark harness passes
a single top-level seed and each subsystem derives its own stream from it.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seeded_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``None`` yields a default, fixed-seed generator so that forgetting to pass
    a seed never produces non-reproducible results.  An existing generator is
    returned unchanged, which lets callers thread one stream through several
    helpers.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0
    return np.random.default_rng(int(seed))


def derive_seed(base_seed: int, *labels: str | int) -> int:
    """Derive a stable child seed from ``base_seed`` and a label path.

    The derivation hashes the labels so that adding a new consumer of the
    base seed does not shift the streams of existing consumers (which a
    simple ``base_seed + i`` scheme would).
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") % (2**63 - 1)
