"""Plain-text helpers used by schema filtration, metrics and tokenization."""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence

_WORD_RE = re.compile(r"[a-z0-9_.]+|[^\sa-z0-9_.]", re.IGNORECASE)


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace into single spaces and strip the ends."""
    return " ".join(text.split())


def tokenize_words(text: str, lowercase: bool = True) -> list[str]:
    """Split ``text`` into word-level tokens.

    Identifiers such as ``artist.country`` or ``year_join`` are kept as single
    tokens because DV queries and linearized schemas use them as atomic units;
    punctuation characters become their own tokens.
    """
    if lowercase:
        text = text.lower()
    return _WORD_RE.findall(text)


def ngrams(tokens: Sequence[str], n: int) -> list[tuple[str, ...]]:
    """Return the list of ``n``-grams over ``tokens`` (empty if too short)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if len(tokens) < n:
        return []
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def jaccard_similarity(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity of two token collections (1.0 when both are empty)."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def rank_by_jaccard(query_tokens: Iterable[str], candidates: Sequence[Iterable[str]]) -> list[tuple[int, float]]:
    """Rank ``candidates`` (token collections) against a query by Jaccard overlap.

    Returns every candidate as ``(index, score)`` sorted by descending score,
    ties broken by ascending index — a total, deterministic order, so two
    rankings over the same inputs are identical element-for-element.  This is
    the single lexical-scoring kernel shared by the retrieval baselines
    (:mod:`repro.baselines.retrieval`) and the serving-side
    :class:`~repro.datasets.corpus.CorpusIndex`.
    """
    query = set(query_tokens)
    scored = [(index, jaccard_similarity(query, tokens)) for index, tokens in enumerate(candidates)]
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored


def levenshtein_distance(a: Sequence, b: Sequence) -> int:
    """Edit distance between two sequences (used by retrieval baselines)."""
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i]
        for j, item_b in enumerate(b, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (item_a != item_b)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]
