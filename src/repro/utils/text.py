"""Plain-text helpers used by schema filtration, metrics and tokenization."""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence

_WORD_RE = re.compile(r"[a-z0-9_.]+|[^\sa-z0-9_.]", re.IGNORECASE)


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace into single spaces and strip the ends."""
    return " ".join(text.split())


def tokenize_words(text: str, lowercase: bool = True) -> list[str]:
    """Split ``text`` into word-level tokens.

    Identifiers such as ``artist.country`` or ``year_join`` are kept as single
    tokens because DV queries and linearized schemas use them as atomic units;
    punctuation characters become their own tokens.
    """
    if lowercase:
        text = text.lower()
    return _WORD_RE.findall(text)


def ngrams(tokens: Sequence[str], n: int) -> list[tuple[str, ...]]:
    """Return the list of ``n``-grams over ``tokens`` (empty if too short)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if len(tokens) < n:
        return []
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def jaccard_similarity(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity of two token collections (1.0 when both are empty)."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def levenshtein_distance(a: Sequence, b: Sequence) -> int:
    """Edit distance between two sequences (used by retrieval baselines)."""
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i]
        for j, item_b in enumerate(b, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (item_a != item_b)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]
