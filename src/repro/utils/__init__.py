"""Small shared utilities: deterministic RNG helpers and text processing."""

from repro.utils.rng import seeded_rng, derive_seed
from repro.utils.text import (
    ngrams,
    normalize_whitespace,
    tokenize_words,
    jaccard_similarity,
    levenshtein_distance,
)

__all__ = [
    "seeded_rng",
    "derive_seed",
    "ngrams",
    "normalize_whitespace",
    "tokenize_words",
    "jaccard_similarity",
    "levenshtein_distance",
]
