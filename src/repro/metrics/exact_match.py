"""Exact-match metrics for text-to-vis (Table IV of the paper).

A DV query has three components: the visualization type, the axis
configuration (the selected expressions) and the data part (tables, joins,
filters, grouping, binning, ordering and aggregation functions).  The four
metrics are the fraction of test examples whose predicted query matches the
reference on, respectively, the visualization type (Vis EM), the axis
configuration (Axis EM), the data part (Data EM) and all of them (EM).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.errors import EvaluationError
from repro.vql.ast import DVQuery
from repro.vql.parser import parse_dv_query
from repro.vql.standardize import standardize_dv_query


@dataclass
class ExactMatchResult:
    """Corpus-level EM metrics."""

    vis_em: float
    axis_em: float
    data_em: float
    em: float
    num_examples: int
    num_unparseable: int = 0

    def as_dict(self) -> dict:
        """A JSON-friendly view of the component scores."""
        return {
            "Vis EM": self.vis_em,
            "Axis EM": self.axis_em,
            "Data EM": self.data_em,
            "EM": self.em,
            "examples": self.num_examples,
            "unparseable": self.num_unparseable,
        }

    def mean_of_components(self) -> float:
        """The per-task average used in the paper's ablation table."""
        return (self.vis_em + self.axis_em + self.data_em + self.em) / 4.0


def _coerce_query(query: DVQuery | str) -> DVQuery | None:
    if isinstance(query, DVQuery):
        return query
    try:
        return standardize_dv_query(parse_dv_query(query))
    except Exception:
        return None


def dv_query_exact_match(predicted: DVQuery | str, reference: DVQuery | str) -> dict[str, bool]:
    """Component-wise match between one predicted and one reference DV query.

    An unparseable prediction counts as a miss on every component; an
    unparseable *reference* is an error in the evaluation corpus.
    """
    reference_query = _coerce_query(reference)
    if reference_query is None:
        raise EvaluationError(f"reference DV query does not parse: {reference!r}")
    predicted_query = _coerce_query(predicted)
    if predicted_query is None:
        return {"vis": False, "axis": False, "data": False, "exact": False, "parseable": False}
    vis = predicted_query.vis_component() == reference_query.vis_component()
    axis = _axis_match(predicted_query, reference_query)
    data = predicted_query.data_component() == reference_query.data_component()
    return {"vis": vis, "axis": axis, "data": data, "exact": vis and axis and data, "parseable": True}


def _axis_match(predicted: DVQuery, reference: DVQuery) -> bool:
    """Axis components compared as unordered sets (x/y swap is tolerated)."""
    return sorted(predicted.axis_component()) == sorted(reference.axis_component())


def corpus_exact_match(
    predictions: Sequence[DVQuery | str],
    references: Sequence[DVQuery | str],
) -> ExactMatchResult:
    """Aggregate :func:`dv_query_exact_match` over a corpus."""
    if len(predictions) != len(references):
        raise EvaluationError("predictions and references must have the same length")
    if not references:
        raise EvaluationError("cannot compute exact match over an empty corpus")
    counts = {"vis": 0, "axis": 0, "data": 0, "exact": 0}
    unparseable = 0
    for predicted, reference in zip(predictions, references):
        outcome = dv_query_exact_match(predicted, reference)
        if not outcome["parseable"]:
            unparseable += 1
        for key in counts:
            counts[key] += int(outcome[key])
    total = len(references)
    return ExactMatchResult(
        vis_em=counts["vis"] / total,
        axis_em=counts["axis"] / total,
        data_em=counts["data"] / total,
        em=counts["exact"] / total,
        num_examples=total,
        num_unparseable=unparseable,
    )
