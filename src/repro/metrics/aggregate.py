"""Aggregate text-generation metrics (the columns of Tables VI and VIII)."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.metrics.bleu import corpus_bleu
from repro.metrics.meteor import corpus_meteor
from repro.metrics.rouge import corpus_rouge


@dataclass
class GenerationMetrics:
    """The BLEU / ROUGE / METEOR bundle reported for the generation tasks."""

    bleu1: float
    bleu2: float
    bleu4: float
    rouge1: float
    rouge2: float
    rougeL: float
    meteor: float
    num_examples: int

    def as_dict(self) -> dict:
        """A JSON-friendly view of the metric values."""
        return {
            "BLEU-1": self.bleu1,
            "BLEU-2": self.bleu2,
            "BLEU-4": self.bleu4,
            "ROUGE-1": self.rouge1,
            "ROUGE-2": self.rouge2,
            "ROUGE-L": self.rougeL,
            "METEOR": self.meteor,
            "examples": self.num_examples,
        }

    def mean_of_components(self, keys: Sequence[str] = ("BLEU-1", "ROUGE-1", "ROUGE-L", "METEOR")) -> float:
        """The per-task average used in the ablation table (Table XII)."""
        values = self.as_dict()
        return sum(values[key] for key in keys) / len(keys)


def evaluate_generation(predictions: Sequence[str], references: Sequence[str]) -> GenerationMetrics:
    """Compute the full metric bundle for a prediction/reference corpus."""
    rouge = corpus_rouge(predictions, references)
    return GenerationMetrics(
        bleu1=corpus_bleu(predictions, references, max_n=1),
        bleu2=corpus_bleu(predictions, references, max_n=2),
        bleu4=corpus_bleu(predictions, references, max_n=4),
        rouge1=rouge["rouge1"],
        rouge2=rouge["rouge2"],
        rougeL=rouge["rougeL"],
        meteor=corpus_meteor(predictions, references),
        num_examples=len(predictions),
    )
