"""BLEU: n-gram precision with a brevity penalty (Papineni et al., 2002)."""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

from repro.errors import EvaluationError
from repro.utils.text import ngrams, tokenize_words


def _modified_precision(candidate: list[str], reference: list[str], n: int) -> tuple[int, int]:
    """Clipped n-gram matches and total candidate n-grams."""
    candidate_counts = Counter(ngrams(candidate, n))
    reference_counts = Counter(ngrams(reference, n))
    matches = sum(min(count, reference_counts[gram]) for gram, count in candidate_counts.items())
    total = max(sum(candidate_counts.values()), 0)
    return matches, total


def bleu_score(
    candidate: str,
    reference: str,
    max_n: int = 4,
    smoothing: float = 1e-9,
) -> float:
    """Sentence-level BLEU-``max_n`` with add-epsilon smoothing."""
    return corpus_bleu([candidate], [reference], max_n=max_n, smoothing=smoothing)


def corpus_bleu(
    candidates: Sequence[str],
    references: Sequence[str],
    max_n: int = 4,
    smoothing: float = 1e-9,
) -> float:
    """Corpus-level BLEU-``max_n``.

    Matches and totals are accumulated over the corpus before taking the
    geometric mean, as in the original definition.
    """
    if len(candidates) != len(references):
        raise EvaluationError("candidates and references must have the same length")
    if not candidates:
        raise EvaluationError("cannot compute BLEU over an empty corpus")
    if max_n < 1:
        raise EvaluationError("max_n must be at least 1")
    matches_by_n = [0] * max_n
    totals_by_n = [0] * max_n
    candidate_length = 0
    reference_length = 0
    for candidate, reference in zip(candidates, references):
        candidate_tokens = tokenize_words(candidate)
        reference_tokens = tokenize_words(reference)
        candidate_length += len(candidate_tokens)
        reference_length += len(reference_tokens)
        for n in range(1, max_n + 1):
            matches, total = _modified_precision(candidate_tokens, reference_tokens, n)
            matches_by_n[n - 1] += matches
            totals_by_n[n - 1] += total
    log_precision_sum = 0.0
    for matches, total in zip(matches_by_n, totals_by_n):
        precision = (matches + smoothing) / (total + smoothing) if total > 0 else smoothing
        log_precision_sum += math.log(precision)
    geometric_mean = math.exp(log_precision_sum / max_n)
    if candidate_length == 0:
        return 0.0
    if candidate_length > reference_length:
        brevity_penalty = 1.0
    else:
        brevity_penalty = math.exp(1.0 - reference_length / max(candidate_length, 1))
    return brevity_penalty * geometric_mean
