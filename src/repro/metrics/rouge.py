"""ROUGE: recall-oriented n-gram and longest-common-subsequence overlap (Lin, 2004).

ROUGE-1 / ROUGE-2 are reported as n-gram F1 scores and ROUGE-L as the
LCS-based F1, matching the evaluation protocol of the paper.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.errors import EvaluationError
from repro.utils.text import ngrams, tokenize_words


def _f1(matches: float, candidate_total: float, reference_total: float) -> float:
    if candidate_total == 0 or reference_total == 0:
        return 0.0
    precision = matches / candidate_total
    recall = matches / reference_total
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def rouge_n(candidate: str, reference: str, n: int = 1) -> float:
    """ROUGE-N F1 between one candidate and one reference."""
    candidate_grams = Counter(ngrams(tokenize_words(candidate), n))
    reference_grams = Counter(ngrams(tokenize_words(reference), n))
    matches = sum(min(count, reference_grams[gram]) for gram, count in candidate_grams.items())
    return _f1(matches, sum(candidate_grams.values()), sum(reference_grams.values()))


def _lcs_length(a: list[str], b: list[str]) -> int:
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    for token_a in a:
        current = [0]
        for j, token_b in enumerate(b, start=1):
            if token_a == token_b:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[j - 1]))
        previous = current
    return previous[-1]


def rouge_l(candidate: str, reference: str) -> float:
    """ROUGE-L F1 (longest common subsequence)."""
    candidate_tokens = tokenize_words(candidate)
    reference_tokens = tokenize_words(reference)
    lcs = _lcs_length(candidate_tokens, reference_tokens)
    return _f1(lcs, len(candidate_tokens), len(reference_tokens))


def corpus_rouge(candidates: Sequence[str], references: Sequence[str]) -> dict[str, float]:
    """Average ROUGE-1, ROUGE-2 and ROUGE-L F1 over a corpus."""
    if len(candidates) != len(references):
        raise EvaluationError("candidates and references must have the same length")
    if not candidates:
        raise EvaluationError("cannot compute ROUGE over an empty corpus")
    totals = {"rouge1": 0.0, "rouge2": 0.0, "rougeL": 0.0}
    for candidate, reference in zip(candidates, references):
        totals["rouge1"] += rouge_n(candidate, reference, 1)
        totals["rouge2"] += rouge_n(candidate, reference, 2)
        totals["rougeL"] += rouge_l(candidate, reference)
    count = len(candidates)
    return {key: value / count for key, value in totals.items()}
