"""Evaluation metrics.

* the Exact-Match family used for text-to-vis (overall EM plus the Vis /
  Axis / Data component matches of Luo et al.);
* BLEU, ROUGE-1/2/L and METEOR for the three text-generation tasks.
"""

from repro.metrics.exact_match import (
    ExactMatchResult,
    dv_query_exact_match,
    corpus_exact_match,
)
from repro.metrics.bleu import bleu_score, corpus_bleu
from repro.metrics.rouge import rouge_n, rouge_l, corpus_rouge
from repro.metrics.meteor import meteor_score, corpus_meteor
from repro.metrics.aggregate import GenerationMetrics, evaluate_generation

__all__ = [
    "ExactMatchResult",
    "dv_query_exact_match",
    "corpus_exact_match",
    "bleu_score",
    "corpus_bleu",
    "rouge_n",
    "rouge_l",
    "corpus_rouge",
    "meteor_score",
    "corpus_meteor",
    "GenerationMetrics",
    "evaluate_generation",
]
