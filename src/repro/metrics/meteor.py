"""METEOR: unigram matching with stemming, synonymy and a fragmentation penalty.

This is a self-contained approximation of METEOR (Banerjee & Lavie, 2005):
exact matches are found first, then matches between lightly stemmed forms,
then matches through a small synonym table.  The score is the harmonic mean
of precision and recall (recall-weighted 9:1) multiplied by the standard
fragmentation penalty computed from the number of contiguous match chunks.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import EvaluationError
from repro.utils.text import tokenize_words

_SUFFIXES = ("ings", "ing", "ies", "ied", "ers", "er", "ed", "es", "s", "ly")

_SYNONYMS = {
    "chart": {"graph", "plot", "diagram"},
    "graph": {"chart", "plot", "diagram"},
    "plot": {"chart", "graph", "diagram"},
    "number": {"count", "total", "amount"},
    "count": {"number", "total"},
    "total": {"number", "count", "sum"},
    "average": {"mean"},
    "mean": {"average"},
    "largest": {"biggest", "maximum", "highest"},
    "smallest": {"minimum", "lowest"},
    "show": {"display", "present", "give"},
    "display": {"show", "present"},
    "descending": {"decreasing"},
    "ascending": {"increasing"},
    "each": {"every"},
}


def _stem(token: str) -> str:
    for suffix in _SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= 3:
            return token[: -len(suffix)]
    return token


def _are_synonyms(a: str, b: str) -> bool:
    return b in _SYNONYMS.get(a, ()) or a in _SYNONYMS.get(b, ())


def _align(candidate: list[str], reference: list[str]) -> list[tuple[int, int]]:
    """Greedy one-to-one alignment: exact, then stem, then synonym matches."""
    matched_candidate: set[int] = set()
    matched_reference: set[int] = set()
    alignment: list[tuple[int, int]] = []

    def run_stage(predicate) -> None:
        for i, candidate_token in enumerate(candidate):
            if i in matched_candidate:
                continue
            for j, reference_token in enumerate(reference):
                if j in matched_reference:
                    continue
                if predicate(candidate_token, reference_token):
                    matched_candidate.add(i)
                    matched_reference.add(j)
                    alignment.append((i, j))
                    break

    run_stage(lambda a, b: a == b)
    run_stage(lambda a, b: _stem(a) == _stem(b))
    run_stage(_are_synonyms)
    return sorted(alignment)


def _count_chunks(alignment: list[tuple[int, int]]) -> int:
    if not alignment:
        return 0
    chunks = 1
    for (prev_i, prev_j), (cur_i, cur_j) in zip(alignment, alignment[1:]):
        if cur_i != prev_i + 1 or cur_j != prev_j + 1:
            chunks += 1
    return chunks


def meteor_score(candidate: str, reference: str, alpha: float = 0.9, beta: float = 3.0, gamma: float = 0.5) -> float:
    """Sentence-level METEOR between one candidate and one reference."""
    candidate_tokens = tokenize_words(candidate)
    reference_tokens = tokenize_words(reference)
    if not candidate_tokens or not reference_tokens:
        return 0.0
    alignment = _align(candidate_tokens, reference_tokens)
    matches = len(alignment)
    if matches == 0:
        return 0.0
    precision = matches / len(candidate_tokens)
    recall = matches / len(reference_tokens)
    fmean = precision * recall / (alpha * recall + (1 - alpha) * precision)
    chunks = _count_chunks(alignment)
    penalty = gamma * (chunks / matches) ** beta
    return fmean * (1.0 - penalty)


def corpus_meteor(candidates: Sequence[str], references: Sequence[str]) -> float:
    """Average sentence-level METEOR over a corpus."""
    if len(candidates) != len(references):
        raise EvaluationError("candidates and references must have the same length")
    if not candidates:
        raise EvaluationError("cannot compute METEOR over an empty corpus")
    return sum(meteor_score(candidate, reference) for candidate, reference in zip(candidates, references)) / len(candidates)
