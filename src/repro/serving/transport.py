"""The wire layer of the process-sharded serving tier.

Shard worker processes (:mod:`repro.serving.sharded`) and their gateway talk
over plain OS pipes with a **length-prefixed JSON frame** protocol: every
message is a UTF-8 JSON document preceded by a 4-byte big-endian byte count.
The framing survives the failure modes the sharded tier is built around — a
``kill -9``'d peer yields a clean end-of-stream on the next read, a torn
frame (peer died mid-write) is detected by the length prefix rather than
corrupting the stream, and a frame above :data:`MAX_FRAME_BYTES` is rejected
before a malformed peer can balloon the reader's memory.

On top of the framing sit the **wire codecs** that let the protocol's
payloads cross the process boundary as plain JSON:

* :class:`~repro.serving.protocol.Response` already round-trips through
  ``Response.as_dict`` / ``Response.from_dict`` — result frames reuse it
  verbatim;
* :func:`request_to_wire` / :func:`request_from_wire` do the same for
  :class:`~repro.serving.protocol.Request`, collapsing a
  :class:`~repro.vql.ast.DVQuery` chart to its text form (re-parsed on the
  receiving side) and serializing a :class:`~repro.database.schema.
  DatabaseSchema` structurally via :func:`schema_to_wire` /
  :func:`schema_from_wire`, so the shard reconstructs an *equal* request —
  non-ASCII payloads included (property-tested in
  ``tests/test_serving_protocol_roundtrip.py``).

Nothing in this module imports multiprocessing or asyncio: it is the pure,
synchronously-testable bottom of the stack.  The gateway drives the same
frame functions through non-blocking file descriptors; the shard main loop
drives them blocking.
"""

from __future__ import annotations

import json
import os
import struct

from repro.database.schema import Column, ColumnType, DatabaseSchema, ForeignKey, TableSchema
from repro.errors import ReproError
from repro.serving.protocol import Request, ResponseChunk
from repro.vql.ast import DVQuery

#: Upper bound on one frame's JSON payload.  Far above any real serving
#: message (a batch of requests with inlined schemas is a few hundred KB at
#: the extreme) while still catching a desynchronized or hostile stream
#: before it turns into an unbounded allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class TransportError(ReproError):
    """A violation of the shard wire protocol (torn frame, oversized frame,
    non-JSON payload, or a malformed wire-encoded request/schema)."""


class EndOfStream(TransportError):
    """The peer closed its end of the pipe (normal shutdown or a dead process)."""


# -- framing ---------------------------------------------------------------------------
def encode_frame(message: dict) -> bytes:
    """Serialize ``message`` to one length-prefixed wire frame.

    The JSON body is compact (no whitespace) with sorted keys, so a frame is
    a deterministic function of its message — which keeps transport-level
    tests and on-the-wire debugging sane.
    """
    body = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise TransportError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})")
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse one frame body back into its message dict."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(f"frame body is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise TransportError(f"frame body must be a JSON object, got {type(message).__name__}")
    return message


def write_frame(fd: int, message: dict) -> None:
    """Write one frame to ``fd``, handling short writes (blocking descriptors)."""
    data = encode_frame(message)
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exactly(fd: int, count: int) -> bytes:
    """Read exactly ``count`` bytes from ``fd`` or raise :class:`EndOfStream`."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = os.read(fd, remaining)
        if not chunk:
            raise EndOfStream(
                f"peer closed the pipe with {remaining} of {count} frame bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(fd: int) -> dict:
    """Read one complete frame from a blocking ``fd``.

    Raises :class:`EndOfStream` on a clean close *between* frames, and
    :class:`TransportError` (its subclass included) when the stream dies
    mid-frame or the prefix announces an impossible length.
    """
    prefix = _read_exactly(fd, _LENGTH.size)
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame prefix announces {length} bytes (> {MAX_FRAME_BYTES}); stream desynchronized")
    return decode_body(_read_exactly(fd, length))


class FrameDecoder:
    """Incremental frame parser for non-blocking readers.

    The gateway feeds whatever bytes the pipe had (:meth:`feed`) and drains
    complete messages; partial frames stay buffered across feeds.  One
    decoder per stream — it owns the stream position.
    """

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        """Absorb ``data`` and return every message it completed."""
        self._buffer.extend(data)
        messages: list[dict] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                return messages
            (length,) = _LENGTH.unpack(self._buffer[: _LENGTH.size])
            if length > MAX_FRAME_BYTES:
                raise TransportError(
                    f"frame prefix announces {length} bytes (> {MAX_FRAME_BYTES}); stream desynchronized"
                )
            if len(self._buffer) < _LENGTH.size + length:
                return messages
            body = bytes(self._buffer[_LENGTH.size : _LENGTH.size + length])
            del self._buffer[: _LENGTH.size + length]
            messages.append(decode_body(body))

    def pending_bytes(self) -> int:
        """How many buffered bytes are waiting for the rest of their frame."""
        return len(self._buffer)


# -- schema wire codec -----------------------------------------------------------------
def schema_to_wire(schema: DatabaseSchema | str | None) -> dict | str | None:
    """A JSON-friendly view of a request's ``schema`` field.

    A :class:`DatabaseSchema` serializes structurally (tables, columns with
    their types, primary and foreign keys); encoded schema *text* — already a
    plain string — passes through, as does ``None``.  The inverse is
    :func:`schema_from_wire`, and the round trip reconstructs an equal
    schema object.
    """
    if schema is None or isinstance(schema, str):
        return schema
    return {
        "name": schema.name,
        "tables": [
            {
                "name": table.name,
                "columns": [{"name": column.name, "ctype": column.ctype.value} for column in table.columns],
                "primary_key": table.primary_key,
            }
            for table in schema.tables
        ],
        "foreign_keys": [
            {
                "source_table": fk.source_table,
                "source_column": fk.source_column,
                "target_table": fk.target_table,
                "target_column": fk.target_column,
            }
            for fk in schema.foreign_keys
        ],
    }


def schema_from_wire(payload: dict | str | None) -> DatabaseSchema | str | None:
    """Rebuild the ``schema`` field from its :func:`schema_to_wire` form."""
    if payload is None or isinstance(payload, str):
        return payload
    if not isinstance(payload, dict):
        raise TransportError(f"wire schema must be a dict, string or null, got {type(payload).__name__}")
    try:
        return DatabaseSchema(
            name=payload["name"],
            tables=[
                TableSchema(
                    name=table["name"],
                    columns=[Column(column["name"], ColumnType(column["ctype"])) for column in table["columns"]],
                    primary_key=table.get("primary_key"),
                )
                for table in payload["tables"]
            ],
            foreign_keys=[
                ForeignKey(
                    source_table=fk["source_table"],
                    source_column=fk["source_column"],
                    target_table=fk["target_table"],
                    target_column=fk["target_column"],
                )
                for fk in payload.get("foreign_keys", [])
            ],
        )
    except (KeyError, TypeError, ValueError, ReproError) as error:
        raise TransportError(f"malformed wire schema: {error!r}") from None


# -- request wire codec ----------------------------------------------------------------
#: Every key a wire-encoded request may carry; unknown keys are rejected so
#: schema drift between a gateway and its shards is loud, mirroring
#: ``Response.from_dict``.  ``trace`` (distributed-tracing context, see
#: ``docs/observability.md``) is *optional* in both directions: encoders only
#: emit it when set, and decoders accept payloads without it, so traced
#: gateways interoperate with pre-tracing shards and vice versa.
REQUEST_WIRE_FIELDS = (
    "task", "question", "chart", "schema", "table", "request_id", "deployment", "index", "trace",
)


def request_to_wire(request: Request) -> dict:
    """A JSON-friendly view of one :class:`~repro.serving.protocol.Request`.

    The chart collapses to DV-query text exactly as ``Response.as_dict``
    collapses the response's query AST; :func:`request_from_wire` re-parses
    it, and because text and AST chart forms share one cache identity in the
    pipeline, the shard's outputs are unaffected by the collapse.
    """
    chart = request.chart
    payload = {
        "task": request.task,
        "question": request.question,
        "chart": chart.to_text() if isinstance(chart, DVQuery) else chart,
        "schema": schema_to_wire(request.schema),
        "table": request.table,
        "request_id": request.request_id,
        "deployment": request.deployment,
        "index": request.index,
    }
    if request.trace is not None:
        payload["trace"] = request.trace
    return payload


def request_from_wire(payload: dict) -> Request:
    """Rebuild a :class:`~repro.serving.protocol.Request` from its wire form.

    The inverse of :func:`request_to_wire` up to the chart's AST-to-text
    collapse: a request whose chart was already text (or ``None``) round
    trips to an equal request; an AST chart comes back as its exact text
    form.  Unknown keys and invalid field combinations raise
    :class:`TransportError`.
    """
    if not isinstance(payload, dict):
        raise TransportError(f"wire request must be a dict, got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(REQUEST_WIRE_FIELDS))
    if unknown:
        raise TransportError(f"unknown Request wire fields: {', '.join(unknown)}")
    if "task" not in payload:
        raise TransportError("a Request wire payload needs at least 'task'")
    try:
        return Request(
            task=payload["task"],
            question=payload.get("question"),
            chart=payload.get("chart"),
            schema=schema_from_wire(payload.get("schema")),
            table=payload.get("table"),
            request_id=payload.get("request_id"),
            deployment=payload.get("deployment"),
            index=payload.get("index"),
            trace=payload.get("trace"),
        )
    except ReproError as error:
        raise TransportError(f"invalid wire request: {error}") from None


# -- response-chunk wire codec ---------------------------------------------------------
#: Every key a wire-encoded stream chunk may carry; unknown keys are rejected
#: like :data:`REQUEST_WIRE_FIELDS`.  ``trace`` is optional in both
#: directions (emitted only when set, absent accepted), matching the request
#: codec's forward/backward wire compatibility.
RESPONSE_CHUNK_WIRE_FIELDS = ("task", "seq", "text", "final", "response", "request_id", "trace")


def chunk_to_wire(chunk: ResponseChunk) -> dict:
    """A JSON-friendly view of one :class:`~repro.serving.protocol.ResponseChunk`.

    The embedded final :class:`~repro.serving.protocol.Response` crosses as
    its ``as_dict`` form (the chart query collapsing to text, exactly like
    the shard result frames); :func:`chunk_from_wire` is the inverse.
    """
    return chunk.as_dict()


def chunk_from_wire(payload: dict) -> ResponseChunk:
    """Rebuild a :class:`~repro.serving.protocol.ResponseChunk` from its wire form.

    Unknown keys, missing required fields and contract violations (a final
    chunk without its response, a negative ``seq``) raise
    :class:`TransportError`.
    """
    if not isinstance(payload, dict):
        raise TransportError(f"wire chunk must be a dict, got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(RESPONSE_CHUNK_WIRE_FIELDS))
    if unknown:
        raise TransportError(f"unknown ResponseChunk wire fields: {', '.join(unknown)}")
    try:
        return ResponseChunk.from_dict(payload)
    except ReproError as error:
        raise TransportError(f"invalid wire chunk: {error}") from None
