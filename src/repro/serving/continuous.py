"""Token-level continuous batching for neural decode traffic.

The micro-batcher (:mod:`repro.serving.batching`) amortizes at *request*
granularity: a batch decodes in lock-step until its longest member finishes,
so short requests pay for long ones and arrivals wait for the next window.
This module schedules at *token* granularity instead, vLLM-style: one
persistent :class:`~repro.nn.transformer.PagedDecodeBatch` per backend model
admits new sequences into free slots at every decode step and evicts
finished ones immediately, with K/V memory recycled through the shared
:class:`~repro.nn.decode_cache.PagedKVArena`.

**Cooperative driving, no background threads.**  A dedicated decode thread
would have to own the model forever (pinning its lifetime and leaking on
teardown), so the loop is driven by the request threads themselves: every
:meth:`ContinuousDecodeLoop.run` caller submits its sequences and then
competes for the *driver lock*.  Whoever holds it advances the whole batch —
its own sequences and everyone else's — one step at a time; the rest sleep
on a condition that pulses after each step.  Concurrent server workers
therefore merge into one live batch automatically, which is exactly how
lock-step request batches turn into token-level sharing.

**Admission rules.**  Pending sequences are admitted strictly FIFO, one per
free slot, at the top of each step; a sequence joins mid-flight without
disturbing batch-mates because every admitted row decodes bitwise-identically
to its solo ``use_cache=False`` oracle (the :class:`PagedDecodeBatch`
equivalence contract).  Greedy only — beam search keeps the static path.

Loops are memoized per ``(model, dtype, slots, page size)`` via
:func:`continuous_loop_for`, keyed weakly so a loop dies with its model.
:func:`continuous_predict_batch` is the text-level entry the serving
engines call in place of ``DataVisT5.predict_batch``.

**Token taps.**  A sequence may be submitted with an ``on_token`` callback,
invoked once per emitted token id from whichever thread happens to be
driving the loop at that step.  Taps are how the serving tier streams
partial responses (:meth:`repro.serving.server.Server.stream`): after every
batch step the driver reads :attr:`~repro.nn.transformer.PagedDecodeBatch.
last_step_tokens` and fires the taps *outside* the scheduler's state lock,
so a slow consumer can delay decoding but never deadlock it.  A tap that
raises is swallowed and counted (``stats()["tap_errors"]``) — observers must
not poison decode correctness.  :func:`continuous_predict_batch` layers
``on_text`` on top: per-source callbacks that receive clean *text deltas*
whose concatenation is bitwise-equal to the final output text.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque

import numpy as np

from repro import obs
from repro.core.batching import pad_sequences
from repro.core.config import precision_compute_dtype
from repro.core.model import DataVisT5
from repro.encoding.sequences import strip_modality_tags
from repro.errors import ServingStateError
from repro.nn.transformer import T5Model
from repro.obs.names import (
    METRIC_CONTINUOUS_ADMISSION_WAIT_MS,
    METRIC_CONTINUOUS_STEP_MS,
    METRIC_CONTINUOUS_TOKENS_TOTAL,
    SPAN_DECODE_STEP,
)
from repro.obs.trace import SpanContext

_WAIT_SLICE_S = 0.02  # how long a non-driving thread naps between progress checks

# Decode-loop instruments, fetched once: recording is the hot path of every
# step, so the registry lock is never touched after import.
_STEP_MS = obs.METRICS.histogram(METRIC_CONTINUOUS_STEP_MS)
_ADMISSION_WAIT_MS = obs.METRICS.histogram(METRIC_CONTINUOUS_ADMISSION_WAIT_MS)
_TOKENS_TOTAL = obs.METRICS.counter(METRIC_CONTINUOUS_TOKENS_TOTAL)


class DecodeTicket:
    """One submitted sequence's placeholder inside a :class:`ContinuousDecodeLoop`.

    ``done`` flips once the sequence finished (or failed); :attr:`result`
    raises :class:`~repro.errors.ServingStateError` when read mid-flight, and
    re-raises the stored failure if the decode loop's engine broke while the
    sequence was in it.
    """

    __slots__ = ("row", "max_length", "on_token", "trace", "submitted_at", "done", "_result", "_error")

    def __init__(self, row: np.ndarray, max_length: int | None, on_token=None, trace: SpanContext | None = None):
        self.row = row
        self.max_length = max_length
        self.on_token = on_token
        self.trace = trace
        self.submitted_at = time.perf_counter()
        self.done = False
        self._result: np.ndarray | None = None
        self._error: ServingStateError | None = None

    @property
    def result(self) -> np.ndarray:
        """The finished sequence's output token ids (EOS included, BOS excluded)."""
        if not self.done:
            raise ServingStateError("sequence is still decoding; drive the loop until the ticket is done")
        if self._error is not None:
            raise self._error
        return self._result

    def _resolve(self, tokens: np.ndarray) -> None:
        self._result = tokens
        self.done = True

    def _fail(self, error: ServingStateError) -> None:
        self._error = error
        self.done = True


class ContinuousDecodeLoop:
    """A persistent, cooperatively-driven continuous-batching scheduler.

    Wraps one :class:`~repro.nn.transformer.PagedDecodeBatch` (fixed model,
    dtype, slot count, page size) behind a thread-safe submit/drive API:

    * :meth:`submit` queues a source row and returns its :class:`DecodeTicket`;
    * :meth:`run` submits a burst and drives the loop until every ticket of
      the burst is done, returning outputs in submission order;
    * any number of threads may ``run`` concurrently — their sequences share
      the live batch, and whichever thread holds the driver lock steps for
      everyone.

    An exception out of the model mid-step poisons every in-flight sequence
    (their tickets fail with :class:`~repro.errors.ServingStateError`), the
    batch is rebuilt fresh, and queued-but-unadmitted sequences proceed —
    one bad step never wedges the loop.
    """

    def __init__(self, model: T5Model, max_slots: int = 8, page_size: int = 16, dtype: str = "float64"):
        self._model = model
        self._max_slots = max_slots
        self._page_size = page_size
        self._dtype = dtype
        self._batch = model.paged_decode_batch(max_slots=max_slots, page_size=page_size, dtype=dtype)
        self._state = threading.Lock()
        self._progress = threading.Condition(self._state)
        self._driver = threading.Lock()
        self._pending: deque[DecodeTicket] = deque()
        self._active: dict[int, DecodeTicket] = {}
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._steps = 0
        self._peak_active = 0
        self._tap_errors = 0

    @property
    def max_slots(self) -> int:
        """The batch's slot bound (sequences decoding concurrently)."""
        return self._max_slots

    def submit(
        self, row: np.ndarray, max_length: int | None = None, on_token=None, trace: SpanContext | None = None
    ) -> DecodeTicket:
        """Queue one unbatched source row for decoding; returns its ticket.

        The ticket resolves only while some thread drives the loop
        (:meth:`run` / :meth:`drive`); submitting never blocks.  ``on_token``,
        when given, is called with each emitted token id (an ``int``) from the
        driving thread *before* the ticket resolves; exceptions it raises are
        swallowed and counted under ``stats()["tap_errors"]``.  ``trace``,
        when given and sampled, parents a ``decode.step`` span per batch step
        the sequence participates in (``docs/observability.md``).
        """
        ticket = DecodeTicket(np.asarray(row, dtype=np.int64), max_length, on_token=on_token, trace=trace)
        with self._state:
            self._pending.append(ticket)
            self._submitted += 1
        return ticket

    def run(
        self,
        rows: list[np.ndarray],
        max_length: int | None = None,
        taps=None,
        trace_parents=None,
    ) -> list[np.ndarray]:
        """Decode ``rows`` to completion, driving the loop cooperatively.

        Returns each row's output token ids in input order, every one
        bitwise-equal to that row's solo ``generate(..., use_cache=False)``
        decode.  While this call waits for its own sequences it also steps
        everyone else's — that is what merges concurrent callers into one
        token-level batch.  ``taps``, when given, must be one per-row
        ``on_token`` callback (or ``None``) per row, in row order;
        ``trace_parents`` likewise is one optional
        :class:`~repro.obs.SpanContext` per row.
        """
        if taps is not None and len(taps) != len(rows):
            raise ServingStateError(f"expected one tap per row, got {len(taps)} taps for {len(rows)} rows")
        if trace_parents is not None and len(trace_parents) != len(rows):
            raise ServingStateError(
                f"expected one trace parent per row, got {len(trace_parents)} for {len(rows)} rows"
            )
        tickets = [
            self.submit(
                row,
                max_length,
                on_token=taps[index] if taps is not None else None,
                trace=trace_parents[index] if trace_parents is not None else None,
            )
            for index, row in enumerate(rows)
        ]
        self.drive(tickets)
        return [ticket.result for ticket in tickets]

    def drive(self, tickets: list[DecodeTicket]) -> None:
        """Advance the loop until every ticket in ``tickets`` is done.

        At most one thread steps the model at a time (the driver lock); the
        others sleep on the progress condition and re-check their tickets
        after every step.  Safe to call with tickets submitted by any thread.
        """
        while True:
            with self._state:
                if all(ticket.done for ticket in tickets):
                    return
            if self._driver.acquire(blocking=False):
                try:
                    self._step_once()
                finally:
                    self._driver.release()
                with self._progress:
                    self._progress.notify_all()
            else:
                with self._progress:
                    if not all(ticket.done for ticket in tickets):
                        self._progress.wait(timeout=_WAIT_SLICE_S)

    def stats(self) -> dict:
        """Scheduler and arena counters (see ``docs/serving.md``)."""
        with self._state:
            return {
                "max_slots": self._max_slots,
                "dtype": self._dtype,
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "steps": self._steps,
                "pending": len(self._pending),
                "active": len(self._active),
                "peak_active": self._peak_active,
                "tap_errors": self._tap_errors,
                "arena": self._batch.arena.stats(),
            }

    # -- the single-driver step --------------------------------------------------------
    def _step_once(self) -> None:
        """Admit from the queue into free slots, then advance the batch one token.

        Runs with the driver lock held; the state lock is only taken for
        queue/ticket bookkeeping so submitters never wait on model compute.
        """
        while True:
            with self._state:
                if not self._pending or self._batch.free_slots == 0:
                    break
                ticket = self._pending.popleft()
            try:
                handle = self._batch.admit(ticket.row, ticket.max_length)
            except Exception as error:  # noqa: BLE001 - a bad row must not wedge the loop
                with self._state:
                    ticket._fail(ServingStateError(f"admission failed: {error}"))
                    self._failed += 1
                continue
            _ADMISSION_WAIT_MS.record((time.perf_counter() - ticket.submitted_at) * 1000.0)
            with self._state:
                self._active[handle] = ticket
                self._peak_active = max(self._peak_active, len(self._active))
        if self._batch.active_count == 0:
            return
        step_started = time.perf_counter()
        try:
            finished = self._batch.step()
        except Exception as error:  # noqa: BLE001 - poison in-flight work, keep the loop alive
            failure = ServingStateError(f"continuous decode step failed: {error}")
            with self._state:
                for ticket in self._active.values():
                    ticket._fail(failure)
                self._failed += len(self._active)
                self._active.clear()
                self._batch = self._model.paged_decode_batch(
                    max_slots=self._max_slots, page_size=self._page_size, dtype=self._dtype
                )
            return
        step_seconds = time.perf_counter() - step_started
        _STEP_MS.record(step_seconds * 1000.0)
        _TOKENS_TOTAL.inc(len(self._batch.last_step_tokens))
        self._batch.arena.observe()
        taps: list[tuple] = []
        with self._state:
            step_number = self._steps
            for handle, ticket in self._active.items():
                if ticket.trace is not None:
                    obs.TRACES.record(
                        SPAN_DECODE_STEP,
                        ticket.trace,
                        step_seconds,
                        start=step_started,
                        attrs={"step": step_number, "active": len(self._active)},
                    )
            for handle, token in self._batch.last_step_tokens.items():
                ticket = self._active.get(handle)
                if ticket is not None and ticket.on_token is not None:
                    taps.append((ticket.on_token, int(token)))
        # Fire taps outside the state lock (a slow consumer must not block
        # submitters) but before resolving finished tickets, so every token of
        # a sequence is observed before its ticket's result becomes readable.
        tap_failures = 0
        for callback, token in taps:
            try:
                callback(token)
            except Exception:  # noqa: BLE001 - observers must not poison decode
                tap_failures += 1
        with self._state:
            self._tap_errors += tap_failures
            self._steps += 1
            for handle, tokens in finished.items():
                self._active.pop(handle)._resolve(np.asarray(tokens, dtype=np.int64))
                self._completed += 1


# -- per-model loop registry ---------------------------------------------------------
_REGISTRY_LOCK = threading.Lock()
_LOOPS: "weakref.WeakKeyDictionary[T5Model, dict[tuple, ContinuousDecodeLoop]]" = weakref.WeakKeyDictionary()


def continuous_loop_for(
    model: T5Model, dtype: str = "float64", max_slots: int = 8, page_size: int = 16
) -> ContinuousDecodeLoop:
    """The shared :class:`ContinuousDecodeLoop` for ``model`` at these knobs.

    Memoized per ``(model, dtype, max_slots, page_size)`` so every server
    worker thread serving the same backend converges on one live batch; the
    registry holds the model weakly, so loops die with their model rather
    than pinning weights in memory.
    """
    key = (dtype, max_slots, page_size)
    with _REGISTRY_LOCK:
        loops = _LOOPS.setdefault(model, {})
        loop = loops.get(key)
        if loop is None:
            loop = ContinuousDecodeLoop(model, max_slots=max_slots, page_size=page_size, dtype=dtype)
            loops[key] = loop
        return loop


def continuous_loop_stats(model: T5Model) -> dict[str, dict]:
    """Stats of every live loop registered for ``model`` (may be empty)."""
    with _REGISTRY_LOCK:
        loops = dict(_LOOPS.get(model, {}))
    return {f"dtype={dtype},slots={slots},page={page}": loop.stats() for (dtype, slots, page), loop in loops.items()}


def _delta_tap(backend: DataVisT5, index: int, on_text):
    """An ``on_token`` callback that re-decodes and emits clean text deltas.

    The tokenizer's decode is a space-join of whole tokens and modality tags
    are whole tokens, so ``strip_modality_tags(decode(tokens[:k]))`` is a
    string prefix of the final stripped output; each new token therefore
    yields an exact string delta, and the concatenation of every delta is
    bitwise-equal to the final stripped text.  The ``startswith`` guard makes
    that an invariant rather than an assumption: a non-monotone decode (none
    is known) would suppress the delta and leave reconciliation to the
    stream's final chunk instead of emitting wrong text.
    """
    tokens: list[int] = []
    emitted = ""

    def tap(token: int) -> None:
        nonlocal emitted
        tokens.append(int(token))
        text = strip_modality_tags(backend.tokenizer.decode(tokens))
        if not text.startswith(emitted):
            return
        delta = text[len(emitted):]
        if delta:
            emitted = text
            on_text(index, delta)

    return tap


def continuous_predict_batch(
    backend: DataVisT5,
    sources: list[str],
    precision: str | None = None,
    max_length: int | None = None,
    max_slots: int = 8,
    page_size: int = 16,
    on_text=None,
    trace_parents=None,
) -> list[str]:
    """Generate output texts for ``sources`` through the continuous scheduler.

    The drop-in continuous counterpart of ``DataVisT5.predict_batch`` for
    greedy decoding: same tokenization, same padding, same precision
    resolution, and — because every admitted sequence decodes
    bitwise-identically to its solo oracle — the same output texts, whether
    the call had the loop to itself or shared it with other threads.

    ``on_text``, when given, is called as ``on_text(index, delta)`` from the
    driving thread with incremental *tag-stripped* text deltas per source;
    concatenating a source's deltas reproduces ``strip_modality_tags`` of its
    returned text exactly (the streaming invariant the serving tier gates on).
    ``trace_parents`` is one optional :class:`~repro.obs.SpanContext` per
    source; sampled sources get a ``decode.step`` span per step they decode.
    """
    if not sources:
        return []
    resolved = backend.resolve_precision(precision)
    backend.model.eval()
    encoded = backend.tokenizer.batch_encode(list(sources), max_length=backend.config.max_input_length)
    input_ids = pad_sequences(encoded, backend.tokenizer.vocab.pad_id, backend.config.max_input_length)
    loop = continuous_loop_for(
        backend.model,
        dtype=precision_compute_dtype(resolved),
        max_slots=max_slots,
        page_size=page_size,
    )
    taps = None
    if on_text is not None:
        taps = [_delta_tap(backend, index, on_text) for index in range(input_ids.shape[0])]
    rows = loop.run(
        [input_ids[index] for index in range(input_ids.shape[0])],
        max_length=max_length or backend.config.max_decode_length,
        taps=taps,
        trace_parents=trace_parents,
    )
    return [backend.tokenizer.decode(row) for row in rows]
