"""LRU caching for the serving layer.

The pipeline keeps several independent :class:`LRUCache` instances — parsed
VQL ASTs, rendered Vega-Lite specs, encoder outputs and full responses — so a
hot query costs one dictionary lookup instead of a parse + standardize +
render round trip.  Every cache tracks hit / miss / eviction counters, which
the tests and the ``Pipeline.stats()`` report read back.

Keys are plain strings.  :func:`normalize_key` collapses whitespace and case
so that requests differing only in formatting share one cache entry.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator
from typing import Any, TypeVar

from repro.errors import ModelConfigError

T = TypeVar("T")

_MISSING = object()


def normalize_key(*parts: str) -> str:
    """Build a cache key from ``parts``: lowercased, whitespace-collapsed.

    Multiple parts are joined with a separator that cannot appear in the
    normalized parts themselves, so ``("a b", "c")`` and ``("a", "b c")``
    produce distinct keys.
    """
    return "\x1f".join(" ".join(str(part).split()).lower() for part in parts)


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``put`` inserts or updates and evicts the
    stalest entry once ``capacity`` is exceeded.  A ``capacity`` of zero
    disables the cache (every lookup misses, nothing is stored) — useful for
    switching caching off without touching call sites.
    """

    def __init__(self, capacity: int = 128, name: str = "cache"):
        if capacity < 0:
            raise ModelConfigError("cache capacity must be non-negative")
        self.capacity = capacity
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[str, Any] = OrderedDict()

    # -- core mapping operations ---------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Return the cached value for ``key`` (refreshing recency) or ``default``."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def put(self, key: str, value: Any) -> None:
        """Insert or update ``key``; evict the least-recently-used overflow."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_compute(self, key: str, compute: Callable[[], T]) -> T:
        """Return the cached value for ``key``, computing and storing it on a miss."""
        value = self._entries.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._entries.move_to_end(key)
            return value
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()

    # -- introspection --------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)``, 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters for monitoring: size, capacity, hits, misses, evictions."""
        return {
            "name": self.name,
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LRUCache({self.name!r}, size={len(self)}/{self.capacity}, hits={self.hits}, misses={self.misses})"
