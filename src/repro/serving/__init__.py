"""Request-oriented serving for the DataVisT5 reproduction.

This subsystem turns the library's task modules into one production-shaped
entry point: a :class:`Pipeline` facade serving text-to-vis, vis-to-text and
FeVisQA behind a uniform :class:`Request`/:class:`Response` protocol, with a
:class:`MicroBatcher` amortizing neural forward passes over concurrent
requests and :class:`LRUCache` layers for parsed VQL ASTs, Vega-Lite specs,
encoder outputs and full responses.  Greedy neural decoding goes one level
deeper: the per-model :class:`ContinuousDecodeLoop`
(:mod:`~repro.serving.continuous`) batches at *token* granularity, admitting
sequences into free slots of a live paged-KV decode batch at every step and
evicting them the moment their own EOS lands.  The :mod:`~repro.serving.registry`
constructs any baseline family from a plain config dict, so serving, the
evaluation harness and the examples share one factory.

On top of the synchronous facade sits the asyncio front-end
(:mod:`~repro.serving.server`): a :class:`Server` that absorbs concurrent
``submit`` calls into per-task bounded queues, batches them under a
time/size :class:`BatchWindow` flush policy, and dispatches to a pool of
thread-backed worker shards — with structured admission control (queue-full
and past-deadline rejections are error :class:`Response`\\ s, never
exceptions) and per-request telemetry aggregated in ``Server.stats()``.

Beyond threads, the **process-sharded tier** (:mod:`~repro.serving.sharded`)
escapes the GIL entirely: a :class:`ShardedServer` forks worker processes
that each build their own fingerprint-verified pipelines, routes request
keys across them with a consistent-hash ring composed with the
:class:`~repro.deploy.router.Router`, and treats shard death (crash, wedge)
as a first-class event — heartbeat detection, respawn, requeue, at-most-once
delivery.  The wire layer (:mod:`~repro.serving.transport`) is a
length-prefixed JSON frame protocol over plain pipes.

Both front-ends also serve **token-streaming** responses: ``Server.stream``
and ``ShardedServer.stream`` yield :class:`ResponseChunk` sequences whose
joined text reproduces the non-streaming ``Response.output`` bitwise
(:func:`assemble_stream` recovers the response), and the retrieval-grounded
``corpus_qa`` task answers questions over a fingerprint-verified
:class:`~repro.datasets.corpus.CorpusIndex` — see ``docs/corpus_qa.md``.

See ``docs/architecture.md`` for the data-flow diagram and the knob
reference, and ``docs/sharding.md`` for the process model.
"""

from repro.serving.batching import BatchWindow, MicroBatcher, Ticket
from repro.serving.continuous import (
    ContinuousDecodeLoop,
    DecodeTicket,
    continuous_loop_for,
    continuous_loop_stats,
    continuous_predict_batch,
)
from repro.serving.cache import LRUCache, normalize_key
from repro.serving.pipeline import Pipeline, PipelineConfig, error_code_for
from repro.serving.protocol import (
    ERROR_BACKEND,
    ERROR_CODE_MEANINGS,
    ERROR_CODES,
    ERROR_CORPUS_EMPTY,
    ERROR_DEADLINE,
    ERROR_INDEX_MISMATCH,
    ERROR_INVALID_REQUEST,
    ERROR_QUEUE_FULL,
    ERROR_SHARD_FAILED,
    ERROR_SHUTDOWN,
    MODEL_TASKS,
    SERVABLE_TASKS,
    Request,
    Response,
    ResponseChunk,
    assemble_stream,
    error_response,
)
from repro.serving.registry import (
    available_baselines,
    build_generation,
    build_text_to_vis,
    register_generation,
    register_text_to_vis,
)
from repro.serving.server import DEFAULT_DEPLOYMENT, Server, ServerConfig, serve_requests
from repro.serving.sharded import FAULT_MODES, ShardConfig, ShardedServer, serve_sharded
from repro.serving.transport import (
    FrameDecoder,
    TransportError,
    chunk_from_wire,
    chunk_to_wire,
    request_from_wire,
    request_to_wire,
    schema_from_wire,
    schema_to_wire,
)

__all__ = [
    "Pipeline",
    "PipelineConfig",
    "Server",
    "ServerConfig",
    "DEFAULT_DEPLOYMENT",
    "serve_requests",
    "ShardedServer",
    "ShardConfig",
    "serve_sharded",
    "FAULT_MODES",
    "FrameDecoder",
    "TransportError",
    "request_to_wire",
    "request_from_wire",
    "chunk_to_wire",
    "chunk_from_wire",
    "schema_to_wire",
    "schema_from_wire",
    "Request",
    "Response",
    "ResponseChunk",
    "assemble_stream",
    "error_response",
    "error_code_for",
    "MODEL_TASKS",
    "SERVABLE_TASKS",
    "ERROR_CODES",
    "ERROR_CODE_MEANINGS",
    "ERROR_INVALID_REQUEST",
    "ERROR_BACKEND",
    "ERROR_QUEUE_FULL",
    "ERROR_DEADLINE",
    "ERROR_SHUTDOWN",
    "ERROR_SHARD_FAILED",
    "ERROR_CORPUS_EMPTY",
    "ERROR_INDEX_MISMATCH",
    "MicroBatcher",
    "BatchWindow",
    "Ticket",
    "ContinuousDecodeLoop",
    "DecodeTicket",
    "continuous_loop_for",
    "continuous_loop_stats",
    "continuous_predict_batch",
    "LRUCache",
    "normalize_key",
    "available_baselines",
    "build_text_to_vis",
    "build_generation",
    "register_text_to_vis",
    "register_generation",
]
