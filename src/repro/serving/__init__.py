"""Request-oriented serving for the DataVisT5 reproduction.

This subsystem turns the library's task modules into one production-shaped
entry point: a :class:`Pipeline` facade serving text-to-vis, vis-to-text and
FeVisQA behind a uniform :class:`Request`/:class:`Response` protocol, with a
:class:`MicroBatcher` amortizing neural forward passes over concurrent
requests and :class:`LRUCache` layers for parsed VQL ASTs, Vega-Lite specs,
encoder outputs and full responses.  The :mod:`~repro.serving.registry`
constructs any baseline family from a plain config dict, so serving, the
evaluation harness and the examples share one factory.

On top of the synchronous facade sits the asyncio front-end
(:mod:`~repro.serving.server`): a :class:`Server` that absorbs concurrent
``submit`` calls into per-task bounded queues, batches them under a
time/size :class:`BatchWindow` flush policy, and dispatches to a pool of
thread-backed worker shards — with structured admission control (queue-full
and past-deadline rejections are error :class:`Response`\\ s, never
exceptions) and per-request telemetry aggregated in ``Server.stats()``.

See ``docs/architecture.md`` for the data-flow diagram and the knob
reference.
"""

from repro.serving.batching import BatchWindow, MicroBatcher, Ticket
from repro.serving.cache import LRUCache, normalize_key
from repro.serving.pipeline import Pipeline, PipelineConfig
from repro.serving.protocol import (
    ERROR_BACKEND,
    ERROR_CODE_MEANINGS,
    ERROR_CODES,
    ERROR_DEADLINE,
    ERROR_INVALID_REQUEST,
    ERROR_QUEUE_FULL,
    ERROR_SHUTDOWN,
    SERVABLE_TASKS,
    Request,
    Response,
    error_response,
)
from repro.serving.registry import (
    available_baselines,
    build_generation,
    build_text_to_vis,
    register_generation,
    register_text_to_vis,
)
from repro.serving.server import DEFAULT_DEPLOYMENT, Server, ServerConfig, serve_requests

__all__ = [
    "Pipeline",
    "PipelineConfig",
    "Server",
    "ServerConfig",
    "DEFAULT_DEPLOYMENT",
    "serve_requests",
    "Request",
    "Response",
    "error_response",
    "SERVABLE_TASKS",
    "ERROR_CODES",
    "ERROR_CODE_MEANINGS",
    "ERROR_INVALID_REQUEST",
    "ERROR_BACKEND",
    "ERROR_QUEUE_FULL",
    "ERROR_DEADLINE",
    "ERROR_SHUTDOWN",
    "MicroBatcher",
    "BatchWindow",
    "Ticket",
    "LRUCache",
    "normalize_key",
    "available_baselines",
    "build_text_to_vis",
    "build_generation",
    "register_text_to_vis",
    "register_generation",
]
