"""Request-oriented serving for the DataVisT5 reproduction.

This subsystem turns the library's task modules into one production-shaped
entry point: a :class:`Pipeline` facade serving text-to-vis, vis-to-text and
FeVisQA behind a uniform :class:`Request`/:class:`Response` protocol, with a
:class:`MicroBatcher` amortizing neural forward passes over concurrent
requests and :class:`LRUCache` layers for parsed VQL ASTs, Vega-Lite specs,
encoder outputs and full responses.  The :mod:`~repro.serving.registry`
constructs any baseline family from a plain config dict, so serving, the
evaluation harness and the examples share one factory.

See ``docs/architecture.md`` for the data-flow diagram and the knob
reference.
"""

from repro.serving.batching import MicroBatcher, Ticket
from repro.serving.cache import LRUCache, normalize_key
from repro.serving.pipeline import Pipeline, PipelineConfig
from repro.serving.protocol import SERVABLE_TASKS, Request, Response
from repro.serving.registry import (
    available_baselines,
    build_generation,
    build_text_to_vis,
    register_generation,
    register_text_to_vis,
)

__all__ = [
    "Pipeline",
    "PipelineConfig",
    "Request",
    "Response",
    "SERVABLE_TASKS",
    "MicroBatcher",
    "Ticket",
    "LRUCache",
    "normalize_key",
    "available_baselines",
    "build_text_to_vis",
    "build_generation",
    "register_text_to_vis",
    "register_generation",
]
