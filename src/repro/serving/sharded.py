"""The process-sharded serving tier: N worker processes, one gateway.

``BENCH_serving.json`` showed the thread-backed :class:`~repro.serving.
server.Server` buys only ~1.1-1.4x over synchronous serving because the
pure-python hot loops are GIL-bound.  This module breaks out of the process:
a :class:`ShardedServer` forks ``num_shards`` **worker-shard processes**,
each of which builds its *own* :class:`~repro.serving.pipeline.Pipeline`
clones from fingerprint-verified checkpoint paths through
:class:`~repro.deploy.registry.ModelRegistry` — model weights are never
pickled across the process boundary; every shard loads and verifies the
bytes itself.

Process model
-------------

* The **gateway** (the forking process) is model-free.  It owns admission
  control, an exact-match response cache, duplicate coalescing, per-shard
  batching queues, and the routing stack: a
  :class:`~repro.deploy.router.HashRing` maps each request's cache key to a
  stable shard slot, and a :class:`~repro.deploy.router.Router` picks which
  *deployment* (model version) answers — so canary splits and shadow
  sampling compose with sharding unchanged.
* Each **shard** runs a blocking frame loop over two OS pipes (the
  length-prefixed JSON protocol of :mod:`repro.serving.transport`), serving
  ``serve`` frames through ``Pipeline.serve(strict=False)`` and answering
  ``load`` / ``unload`` frames for rolling deployments.  A daemon thread
  emits heartbeat frames so the gateway can tell a *wedged* shard (alive but
  stopped — e.g. ``SIGSTOP``) from a busy one.

Failure semantics
-----------------

Shard death is first-class, not exceptional.  The gateway detects it three
ways — pipe EOF (crash / ``kill -9``), write failure, and missed heartbeats
(wedge) — then kills and reaps the process, respawns the slot under the same
name (so the hash ring re-routes *nothing* once it is back), and **requeues**
every in-flight request.  Delivery is **at-most-once**: each request's
future resolves exactly once, results a dying shard managed to flush are
still delivered (pipe buffers survive the writer), and a request whose
requeue budget (``max_requeues``) is exhausted fails with the structured
``shard_failed`` error code rather than hanging.  Reprocessing a batch the
dead shard had already computed is safe because serving is deterministic and
side-effect free.

Rolling hot-swap (:meth:`ShardedServer.rolling_swap`) loads the new version
shard-by-shard — surviving shard crashes mid-swap, because respawned shards
load every active deployment — and only then flips the primary reference.
The old primary stays loaded (never drained) until an explicit
:meth:`~ShardedServer.undeploy`, which drains its in-flight work first.

Fault injection (``enable_fault_injection=True``) lets the chaos suite ask a
shard to ``exit`` mid-batch, ``wedge`` (stop heartbeating, simulating
``SIGSTOP`` deterministically) or ``drop_batch`` on the Nth serve frame —
see ``tests/test_serving_sharded_chaos.py`` and ``docs/sharding.md``.

Streaming
---------

:meth:`ShardedServer.stream` serves one request as an ordered sequence of
:class:`~repro.serving.protocol.ResponseChunk` (see ``docs/corpus_qa.md``).
A streaming job is dispatched as its own ``stream`` frame (never batched —
its ``chunk`` frames interleave with other traffic on the reply pipe); the
shard runs ``Pipeline.serve_streaming(strict=False)`` and emits each text
delta as a ``chunk`` frame before the ordinary ``result`` frame, so chunk
and result ordering is the pipe's FIFO ordering.  Old shards ignore the
``stream`` frame type (unknown frames are skipped), keeping the protocol
backward-safe.  If the shard dies mid-stream the job requeues like any
other: the restarted stream re-emits from ``chunk_seq`` 0 and the gateway
turns that into a ``seq`` 0 reset chunk, so
:func:`~repro.serving.protocol.assemble_stream` still reproduces the final
``Response.output`` bitwise; a requeue budget exhausted mid-stream yields a
terminal ``shard_failed`` error chunk — a stream never hangs and never ends
without a final chunk.
"""

from __future__ import annotations

import asyncio
import contextlib
import copy
import hashlib
import json
import os
import queue as queue_module
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace

from repro import __version__, obs

# NOTE: repro.deploy.registry is imported lazily inside the functions that
# need it.  Importing it here would close an import cycle (serving.__init__
# -> sharded -> deploy.registry -> deploy.manifest -> serving.protocol) the
# moment repro.deploy initializes; deploy.router is a leaf and safe.
from repro.deploy.router import HashRing, Router
from repro.errors import ModelConfigError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import (
    METRIC_GATEWAY_DISPATCH_MS,
    METRIC_GATEWAY_HEARTBEAT_GAP_MS,
    METRIC_GATEWAY_REQUEUES_TOTAL,
    METRIC_GATEWAY_RESPAWNS_TOTAL,
    SPAN_GATEWAY_DISPATCH,
    SPAN_GATEWAY_REQUEST,
    SPAN_SHARD_SERVE,
)
from repro.obs.trace import SpanContext
from repro.serving.batching import BatchWindow
from repro.serving.cache import LRUCache
from repro.serving.protocol import (
    ERROR_CORPUS_EMPTY,
    ERROR_INDEX_MISMATCH,
    ERROR_INVALID_REQUEST,
    ERROR_QUEUE_FULL,
    ERROR_SHARD_FAILED,
    ERROR_SHUTDOWN,
    ERROR_CODES,
    Request,
    Response,
    ResponseChunk,
    error_response,
)
from repro.serving.transport import (
    EndOfStream,
    FrameDecoder,
    TransportError,
    encode_frame,
    read_frame,
    request_from_wire,
    request_to_wire,
    write_frame,
)

#: Fault-injection modes a shard understands (``ShardConfig.
#: enable_fault_injection`` must be on): ``exit`` calls ``os._exit`` before
#: answering the triggering batch (a crash with work in flight), ``wedge``
#: silences the heartbeat thread and stops consuming frames (a ``SIGSTOP``
#: -shaped hang, detectable only by heartbeat timeout), ``drop_batch``
#: swallows one batch's reply and keeps going (a lost-result bug).
FAULT_MODES = ("exit", "wedge", "drop_batch")

# Gateway-side observability instruments, fetched once at import (both the
# gateway process and — via fork — the shard children share the names; each
# process records into its own registry).
_DISPATCH_MS = obs.METRICS.histogram(METRIC_GATEWAY_DISPATCH_MS)
_HEARTBEAT_GAP_MS = obs.METRICS.histogram(METRIC_GATEWAY_HEARTBEAT_GAP_MS)
_REQUEUES_TOTAL = obs.METRICS.counter(METRIC_GATEWAY_REQUEUES_TOTAL)
_RESPAWNS_TOTAL = obs.METRICS.counter(METRIC_GATEWAY_RESPAWNS_TOTAL)


@dataclass(frozen=True)
class ShardConfig:
    """Tuning knobs for a :class:`ShardedServer`.

    ``num_shards`` worker processes are forked at :meth:`~ShardedServer.
    start`; each slot has a bounded request queue (``queue_size``, overflow
    is rejected with ``queue_full``) drained by a collector that flushes
    batches under a :class:`~repro.serving.batching.BatchWindow`
    (``max_batch`` / ``max_wait_ms``) with at most ``max_inflight_batches``
    un-answered frames per shard.

    Liveness: shards emit a heartbeat every ``heartbeat_interval_ms``; a
    shard silent for ``heartbeat_timeout_ms`` is declared wedged, killed and
    respawned (up to ``respawn_attempts`` consecutive failures before the
    slot is marked broken).  A requeued request may move shards at most
    ``max_requeues`` times before failing with ``shard_failed``.

    ``drain_timeout_s`` bounds how long :meth:`~ShardedServer.undeploy` waits
    for the version's queued and in-flight work to finish before giving up
    (the version then stays deployed and the call raises, retryably).

    ``batch_deadline_ms`` (optional) bounds how long a dispatched batch may
    stay unanswered while the shard keeps heartbeating.  A healthy heartbeat
    cannot distinguish "still computing" from "computed but the reply was
    lost", so this is the only detector for swallowed results; set it well
    above the worst-case batch service time.  ``None`` disables the check —
    a heartbeat-silent shard is still caught by the wedge detector.

    ``calibrated_service_ms`` (``None`` | float | ``{task: ms}`` dict) makes
    each shard sleep that long per *non-cached, successful* response after
    computing it — a deterministic, machine-independent stand-in for heavy
    backend compute that the scale benchmark uses to measure the serving
    fabric itself (the sleep releases the GIL and parallelizes perfectly
    across processes, which real numpy inference on a multi-core host also
    does).  Leave it ``None`` for production use.

    ``enable_fault_injection`` arms the ``fault`` control frame for the
    chaos tests; it must stay off outside tests.
    """

    num_shards: int = 2
    max_batch: int = 8
    max_wait_ms: float = 2.0
    queue_size: int = 256
    max_inflight_batches: int = 2
    heartbeat_interval_ms: float = 50.0
    heartbeat_timeout_ms: float = 2000.0
    max_requeues: int = 2
    batch_deadline_ms: float | None = None
    drain_timeout_s: float = 30.0
    start_timeout_s: float = 60.0
    respawn_attempts: int = 3
    ring_replicas: int = 64
    response_cache_size: int = 2048
    calibrated_service_ms: float | dict | None = None
    enable_fault_injection: bool = False

    def __post_init__(self):
        if self.num_shards < 1:
            raise ModelConfigError("num_shards must be at least 1")
        if self.queue_size < 1:
            raise ModelConfigError("queue_size must be at least 1")
        if self.max_inflight_batches < 1:
            raise ModelConfigError("max_inflight_batches must be at least 1")
        if self.heartbeat_interval_ms <= 0 or self.heartbeat_timeout_ms <= 0:
            raise ModelConfigError("heartbeat interval and timeout must be positive")
        if self.heartbeat_timeout_ms <= self.heartbeat_interval_ms:
            raise ModelConfigError("heartbeat_timeout_ms must exceed heartbeat_interval_ms")
        if self.max_requeues < 0:
            raise ModelConfigError("max_requeues must be non-negative")
        if self.batch_deadline_ms is not None and self.batch_deadline_ms <= 0:
            raise ModelConfigError("batch_deadline_ms must be positive when set")
        if self.drain_timeout_s <= 0:
            raise ModelConfigError("drain_timeout_s must be positive")
        if self.start_timeout_s <= 0:
            raise ModelConfigError("start_timeout_s must be positive")
        if self.respawn_attempts < 1:
            raise ModelConfigError("respawn_attempts must be at least 1")
        if self.calibrated_service_ms is not None and not isinstance(
            self.calibrated_service_ms, (int, float, dict)
        ):
            raise ModelConfigError(
                "calibrated_service_ms must be None, a number, or a {task: ms} dict"
            )
        BatchWindow(self.max_batch, self.max_wait_ms)  # validates both

    def window(self) -> BatchWindow:
        """The flush policy the per-shard collectors run under."""
        return BatchWindow(max_batch=self.max_batch, max_wait_ms=self.max_wait_ms)


def _service_sleep_s(config: ShardConfig, task: str) -> float:
    """Calibrated per-response service time for ``task``, in seconds."""
    spec = config.calibrated_service_ms
    if spec is None:
        return 0.0
    if isinstance(spec, dict):
        return float(spec.get(task, spec.get("default", 0.0))) / 1000.0
    return float(spec) / 1000.0


# -- shard (child process) side --------------------------------------------------------
def _shard_run(
    slot: str,
    generation: int,
    registry_path: str,
    refs: list[str],
    in_fd: int,
    out_fd: int,
    config: ShardConfig,
) -> None:
    """The worker-shard main loop.  Runs in the forked child; never returns.

    Builds one :class:`~repro.serving.pipeline.Pipeline` per deployment ref
    through the (fingerprint-verifying) registry, reports ``ready``, then
    serves frames until EOF or a ``stop`` frame.  All exits go through
    ``os._exit`` so the child never runs the parent's atexit machinery.
    """
    from repro.deploy.registry import ModelRegistry

    write_lock = threading.Lock()
    state = {"wedged": False}

    def emit(frame: dict) -> None:
        with write_lock:
            write_frame(out_fd, frame)

    def heartbeat_loop() -> None:
        # Started before model loading so a slow checkpoint load never looks
        # like a wedge.  A write failure means the gateway is gone: exit.
        while True:
            time.sleep(config.heartbeat_interval_ms / 1000.0)
            if state["wedged"]:
                return
            try:
                # Heartbeats double as the metrics uplink: each frame carries
                # the shard's cumulative registry snapshot so the gateway can
                # merge cross-process metrics without a separate channel.
                emit(
                    {
                        "type": "heartbeat",
                        "slot": slot,
                        "generation": generation,
                        "metrics": obs.METRICS.snapshot(),
                    }
                )
            except OSError:
                os._exit(0)

    threading.Thread(target=heartbeat_loop, name="shard-heartbeat", daemon=True).start()

    try:
        registry = ModelRegistry(registry_path)
        pipelines = {}
        for ref in refs:
            manifest = registry.get(ref)
            if manifest.id not in pipelines:
                pipelines[manifest.id] = registry.build_pipeline(ref)
        emit(
            {
                "type": "ready",
                "slot": slot,
                "generation": generation,
                "pid": os.getpid(),
                "deployments": sorted(pipelines),
            }
        )
    except Exception as error:  # noqa: BLE001 - report any startup failure, then die
        with contextlib.suppress(OSError):
            emit({"type": "fatal", "slot": slot, "detail": f"shard startup failed: {error}"})
        os._exit(1)

    fault = {"mode": None, "after": 0}

    def begin_serve_spans(requests: list[Request]) -> tuple[list, list[Request]]:
        # One shard.serve span per traced request; the request is re-pointed
        # at the span's context so pipeline stage spans parent under it.
        spans = [
            obs.TRACES.begin(
                SPAN_SHARD_SERVE,
                SpanContext.from_wire(request.trace),
                attrs={"slot": slot, "task": request.task},
            )
            for request in requests
        ]
        traced = [
            replace(request, trace=span.context.to_wire()) if span is not None else request
            for request, span in zip(requests, spans)
        ]
        return spans, traced

    def attach_spans(spans: list, responses: list[Response]) -> None:
        # Ship each trace's finished spans back embedded in the response
        # telemetry; take() empties the local store so a span crosses the
        # pipe exactly once and the gateway's ingest is the only copy.
        for span, response in zip(spans, responses):
            if span is None:
                continue
            obs.TRACES.finish(span, status="ok" if response.error is None else "error")
            telemetry = dict(response.telemetry or {})
            telemetry["spans"] = [item.as_dict() for item in obs.TRACES.take(span.trace_id)]
            response.telemetry = telemetry

    def maybe_trigger_fault() -> str | None:
        if fault["mode"] is None:
            return None
        fault["after"] -= 1
        if fault["after"] > 0:
            return None
        mode, fault["mode"] = fault["mode"], None
        if mode == "exit":
            os._exit(13)
        if mode == "wedge":
            state["wedged"] = True
            while True:  # pragma: no cover - killed by the gateway
                time.sleep(60.0)
        return mode  # "drop_batch": the caller skips its reply

    while True:
        try:
            frame = read_frame(in_fd)
        except EndOfStream:
            os._exit(0)
        except TransportError as error:
            with contextlib.suppress(OSError):
                emit({"type": "fatal", "slot": slot, "detail": f"bad frame: {error}"})
            os._exit(1)
        try:
            ftype = frame.get("type")
            if ftype == "serve":
                dropped = maybe_trigger_fault() == "drop_batch"
                requests = [request_from_wire(payload) for payload in frame["requests"]]
                serve_spans, requests = begin_serve_spans(requests)
                pipeline = pipelines.get(frame["deployment"])
                if pipeline is None:
                    responses = [
                        error_response(
                            request,
                            ERROR_INVALID_REQUEST,
                            f"deployment {frame['deployment']!r} is not loaded on shard {slot}",
                        )
                        for request in requests
                    ]
                else:
                    responses = pipeline.serve(requests, strict=False)
                attach_spans(serve_spans, responses)
                pause = sum(
                    _service_sleep_s(config, response.task)
                    for response in responses
                    if response.error is None and not response.cached
                )
                if pause > 0:
                    time.sleep(pause)
                if not dropped:
                    emit(
                        {
                            "type": "result",
                            "seq": frame["seq"],
                            "slot": slot,
                            "generation": generation,
                            "responses": [response.as_dict() for response in responses],
                        }
                    )
            elif ftype == "stream":
                dropped = maybe_trigger_fault() == "drop_batch"
                request = request_from_wire(frame["request"])
                serve_spans, traced = begin_serve_spans([request])
                request = traced[0]
                seq = frame["seq"]
                pipeline = pipelines.get(frame["deployment"])
                if pipeline is None:
                    response = error_response(
                        request,
                        ERROR_INVALID_REQUEST,
                        f"deployment {frame['deployment']!r} is not loaded on shard {slot}",
                    )
                else:
                    chunk_state = {"next": 0}

                    def on_text(delta: str, _seq=seq, _state=chunk_state, _trace=request.trace) -> None:
                        emit(
                            {
                                "type": "chunk",
                                "seq": _seq,
                                "chunk_seq": _state["next"],
                                "text": delta,
                                "slot": slot,
                                "generation": generation,
                                **({"trace": _trace} if _trace is not None else {}),
                            }
                        )
                        _state["next"] += 1

                    response = pipeline.serve_streaming(request, on_text, strict=False)
                    if response.error is None and not response.cached:
                        pause = _service_sleep_s(config, response.task)
                        if pause > 0:
                            time.sleep(pause)
                attach_spans(serve_spans, [response])
                if not dropped:
                    emit(
                        {
                            "type": "result",
                            "seq": seq,
                            "slot": slot,
                            "generation": generation,
                            "responses": [response.as_dict()],
                        }
                    )
            elif ftype == "load":
                ref = frame["ref"]
                try:
                    # Re-read the registry file: the version being deployed
                    # was registered after this shard forked.
                    fresh = ModelRegistry(registry_path)
                    manifest = fresh.get(ref)
                    if manifest.id not in pipelines:
                        pipelines[manifest.id] = fresh.build_pipeline(ref)
                    emit({"type": "loaded", "slot": slot, "ref": ref, "deployment": manifest.id})
                except Exception as error:  # noqa: BLE001 - any load failure is reported
                    emit({"type": "load_failed", "slot": slot, "ref": ref, "detail": str(error)})
            elif ftype == "unload":
                pipelines.pop(frame["deployment"], None)
                emit({"type": "unloaded", "slot": slot, "deployment": frame["deployment"]})
            elif ftype == "fault":
                if config.enable_fault_injection and frame.get("mode") in FAULT_MODES:
                    fault["mode"] = frame["mode"]
                    fault["after"] = max(1, int(frame.get("after", 1)))
                    emit({"type": "fault_armed", "slot": slot, "mode": frame["mode"]})
                else:
                    emit({"type": "fault_rejected", "slot": slot, "mode": frame.get("mode")})
            elif ftype == "stop":
                os._exit(0)
            # unknown frame types are ignored: a newer gateway may speak more
        except OSError:
            os._exit(0)
        except Exception as error:  # noqa: BLE001 - one bad frame must not loop forever
            with contextlib.suppress(OSError):
                emit({"type": "fatal", "slot": slot, "detail": f"shard loop failed: {error}"})
            os._exit(1)


# -- gateway side ----------------------------------------------------------------------
class _Job:
    """One admitted request on its way to (or back from) a shard.

    ``on_text`` (``None`` for ordinary jobs) marks a streaming job: the
    gateway dispatches it as a solo ``stream`` frame and calls
    ``on_text(chunk_seq, text)`` for every ``chunk`` frame the shard emits.
    It survives requeues with the job, so a respawned stream keeps flowing
    to the same consumer.
    """

    __slots__ = (
        "request", "wire", "key", "cache_key", "deployment", "future", "shadow", "requeues", "on_text",
    )

    def __init__(self, request, wire, key, cache_key, deployment, future, shadow=False, on_text=None):
        self.request = request
        self.wire = wire
        self.key = key
        self.cache_key = cache_key
        self.deployment = deployment
        self.future = future
        self.shadow = shadow
        self.requeues = 0
        self.on_text = on_text


class _PendingBatch:
    """A serve frame in flight: its jobs, deployment and dispatch metadata.

    ``spans`` holds the per-job ``gateway.dispatch`` spans (``None`` for
    untraced jobs), finished when the result frame lands or the shard dies.
    """

    __slots__ = ("deployment", "jobs", "dispatched_at", "spans")

    def __init__(self, deployment, jobs, dispatched_at=0.0, spans=None):
        self.deployment = deployment
        self.jobs = jobs
        self.dispatched_at = dispatched_at
        self.spans = spans if spans is not None else [None] * len(jobs)


@dataclass
class _Slot:
    """The gateway's persistent view of one shard slot across respawns."""

    name: str
    generation: int = 0
    pid: int = -1
    to_fd: int = -1
    from_fd: int = -1
    alive: bool = False
    broken: bool = False
    restarts: int = 0
    dispatched: int = 0
    completed: int = 0
    requeued: int = 0
    last_heartbeat: float = 0.0
    # The newest metrics snapshot piggybacked on a heartbeat frame.  Kept
    # whole (snapshots are cumulative) and merged on demand by
    # observability(); folding each arriving heartbeat into a live registry
    # would double-count every interval.
    metrics: dict | None = None
    decoder: FrameDecoder = field(default_factory=FrameDecoder)
    outbuf: bytearray = field(default_factory=bytearray)
    writing: bool = False
    deployments: set = field(default_factory=set)
    pending: dict = field(default_factory=dict)
    waiters: dict = field(default_factory=dict)
    queue: asyncio.Queue | None = None
    inflight: asyncio.Semaphore | None = None
    ready: asyncio.Event | None = None
    ready_waiter: asyncio.Future | None = None


class ShardedServer:
    """A multiprocessing serving front-end over fingerprint-verified shards.

    Construction names the :class:`~repro.deploy.registry.ModelRegistry`
    file and the primary deployment ref; :meth:`start` forks the shards
    (each builds its own verified pipeline — nothing model-shaped crosses
    the process boundary) and :meth:`stop` tears everything down.  Use as a
    context manager for the start/stop pairing::

        with ShardedServer(registry_path, "captioner@1", config) as server:
            responses = server.serve(requests)

    Thread-safe public API (every call marshals onto the gateway's private
    event loop): :meth:`submit` / :meth:`serve` / :meth:`stream` /
    :meth:`run_trace` for traffic; :meth:`deploy` / :meth:`rolling_swap` / :meth:`undeploy` /
    :meth:`set_routes` / :meth:`set_canary` / :meth:`set_shadow` for the
    deployment lifecycle; :meth:`inject_fault` (tests only) and
    :meth:`stats` for observability.
    """

    def __init__(self, registry_path, primary_ref: str, config: ShardConfig | None = None):
        from repro.deploy.registry import ModelRegistry

        self.config = config or ShardConfig()
        self._registry_path = str(registry_path)
        self._registry = ModelRegistry(self._registry_path)
        self._primary = self._registry.get(primary_ref).id
        self._deployments: set[str] = {self._primary}
        self._router = Router()
        self._slots = [_Slot(name=f"shard-{i}") for i in range(self.config.num_shards)]
        self._ring = HashRing([s.name for s in self._slots], replicas=self.config.ring_replicas)
        self._cache = LRUCache(self.config.response_cache_size, name="gateway_response")
        self._counts: dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "cache_hits": 0,
            "coalesced": 0,
            **{code: 0 for code in ERROR_CODES},
        }
        self._totals = {"requeues": 0, "restarts": 0, "swaps": 0}
        self._dep_outstanding: dict[str, int] = {}
        self._dep_queued: dict[str, int] = {}
        self._inflight_keys: dict[str, asyncio.Future] = {}
        self._shadow = {"sampled": 0, "completed": 0, "mismatched": 0, "dropped": 0}
        self._fatal_log: deque[str] = deque(maxlen=20)
        self._gateway_fds: set[int] = set()
        self._seq = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._monitor_task: asyncio.Task | None = None
        self._collector_tasks: list[asyncio.Task] = []
        self._respawn_tasks: set[asyncio.Task] = set()
        self._started = False
        self._stopping = False
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------------
    def start(self) -> "ShardedServer":
        """Fork and warm every shard; returns ``self`` once all are ready."""
        if self._started:
            raise ModelConfigError("ShardedServer is already started")
        if self._closed:
            raise ModelConfigError("ShardedServer cannot be restarted after stop()")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run_loop, name="sharded-gateway", daemon=True)
        self._thread.start()
        try:
            self._call(self._start_async())
        except BaseException:
            self._started = True  # let stop() tear down whatever came up
            self.stop()
            raise
        self._started = True
        return self

    def stop(self) -> None:
        """Stop shards (best-effort graceful, then ``SIGKILL``) and the gateway loop."""
        if not self._started or self._closed:
            self._closed = True
            return
        with contextlib.suppress(Exception):
            self._call(self._stop_async(), timeout=30.0)
        loop, thread = self._loop, self._thread
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10.0)
        self._closed = True

    def __enter__(self) -> "ShardedServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- traffic ------------------------------------------------------------------------
    def submit(self, request: Request) -> Response:
        """Serve one request (blocking); errors come back as structured responses."""
        return self._call(self._submit(request))

    def serve(self, requests: list[Request]) -> list[Response]:
        """Serve a burst concurrently; responses are position-aligned with ``requests``."""
        return self._call(self._serve_async(list(requests)))

    def stream(self, request: Request):
        """Serve one request as a stream of :class:`ResponseChunk` (sync generator).

        The passthrough twin of :meth:`repro.serving.server.Server.stream`
        for the process-sharded tier: the owning shard emits token-level text
        deltas as ``chunk`` frames, and this generator relays them as
        non-final chunks before one final chunk carrying the authoritative
        :class:`Response`.  Joining the non-final texts reproduces
        ``Response.output`` **bitwise** (reconciled against the final
        response exactly like the thread server's stream: a remainder chunk
        tops up any tail the taps missed, and a ``seq`` 0 chunk resets
        assembly when the draft diverged or the stream restarted on a
        respawned shard).  Failures — including a shard killed mid-stream
        with the requeue budget exhausted — terminate the stream with a
        final chunk whose response carries the structured error code; the
        stream never hangs and never ends without a final chunk.  Feed the
        chunks to :func:`~repro.serving.protocol.assemble_stream` to
        recover the response.
        """
        if not isinstance(request, Request):
            raise ModelConfigError(f"stream() needs a Request, got {type(request).__name__}")
        if self._loop is None or self._thread is None or not self._thread.is_alive():
            raise ModelConfigError("ShardedServer is not started")
        # The generator owns the root span (not _submit) so every relayed
        # chunk can echo the trace context of the request it belongs to.
        span = None
        if request.trace is None:
            span = obs.TRACES.root(SPAN_GATEWAY_REQUEST, attrs={"task": request.task, "stream": True})
            if span is not None:
                request = replace(request, trace=span.context.to_wire())
        trace = request.trace
        events: queue_module.Queue = queue_module.Queue()
        asyncio.run_coroutine_threadsafe(self._stream_submit(request, events.put), self._loop)
        emitted = ""
        seq = 0
        while True:
            kind, value = events.get()
            if kind == "done":
                response = value
                break
            chunk_seq, text = value
            if chunk_seq == 0 and seq > 0:
                # The stream restarted from scratch (its shard died and the
                # job requeued): reset assembly with a fresh seq-0 chunk.
                emitted = ""
                seq = 0
            emitted += text
            yield ResponseChunk(
                task=request.task, seq=seq, text=text, request_id=request.request_id, trace=trace
            )
            seq += 1
        if span is not None:
            obs.TRACES.finish(span, status="ok" if response.error is None else "error")
        if response.error is None:
            if response.output.startswith(emitted):
                remainder = response.output[len(emitted):]
                if remainder:
                    yield ResponseChunk(
                        task=request.task, seq=seq, text=remainder, request_id=request.request_id, trace=trace
                    )
                    seq += 1
            else:
                # The stream drafted text the final answer replaced: reset
                # assembly with one authoritative seq-0 chunk.
                yield ResponseChunk(
                    task=request.task, seq=0, text=response.output, request_id=request.request_id, trace=trace
                )
                seq = 1
        yield ResponseChunk(
            task=request.task, seq=seq, final=True, response=response, request_id=request.request_id, trace=trace
        )

    def run_trace(self, requests: list[Request], arrivals_s: list[float]) -> list[Response]:
        """Open-loop replay: submit ``requests[i]`` at offset ``arrivals_s[i]`` seconds.

        The arrival schedule is honored regardless of completion times (the
        generator never waits for responses), which is what makes the scale
        benchmark's throughput numbers honest under overload.  Returns the
        responses position-aligned with ``requests``.
        """
        if len(requests) != len(arrivals_s):
            raise ModelConfigError("run_trace needs one arrival offset per request")
        return self._call(self._run_trace(list(requests), list(arrivals_s)))

    # -- deployment lifecycle -----------------------------------------------------------
    def deploy(self, ref: str) -> str:
        """Verify ``ref`` and load it on every shard; returns its deployment id."""
        return self._call(self._deploy_async(ref))

    def rolling_swap(self, ref: str) -> str:
        """Make ``ref`` the primary, loading it shard-by-shard first.

        The swap is rolling and lossless: each shard loads the new version
        while the others keep serving, a shard that crashes mid-swap is
        respawned with the new version included, and the primary reference
        flips only after *every* shard holds the new pipeline — so no request
        ever lands on a shard that cannot answer it.  The old primary stays
        loaded (never drained) until an explicit :meth:`undeploy`.
        """
        return self._call(self._rolling_swap_async(ref))

    def undeploy(self, ref: str) -> None:
        """Drain and unload a non-primary deployment from every shard."""
        self._call(self._undeploy_async(ref))

    def set_routes(self, task: str, weights: dict[str, float]) -> None:
        """Route ``task`` by explicit deployment weights (canary splits, A/B)."""
        self._call(self._set_routes_async(task, weights))

    def set_canary(self, task: str, ref: str, fraction: float) -> None:
        """Send ``fraction`` of ``task`` traffic to ``ref``, the rest to the primary."""
        self._call(self._set_canary_async(task, ref, fraction))

    def set_shadow(self, task: str, ref: str, fraction: float) -> None:
        """Duplicate ``fraction`` of ``task`` traffic to ``ref`` for comparison only."""
        self._call(self._set_shadow_async(task, ref, fraction))

    # -- observability / chaos ----------------------------------------------------------
    def shard_pids(self) -> dict[str, int]:
        """Live mapping of slot name -> current shard process id."""
        return {slot.name: slot.pid for slot in self._slots}

    def inject_fault(self, slot_name: str, mode: str, after: int = 1) -> None:
        """Arm a fault on one shard (``enable_fault_injection`` must be on).

        ``mode`` is one of :data:`FAULT_MODES`; the fault triggers on the
        ``after``-th serve frame the shard receives next.  Blocks until the
        shard acknowledges arming, so tests can sequence faults precisely.
        """
        if not self.config.enable_fault_injection:
            raise ModelConfigError("fault injection is disabled; set ShardConfig.enable_fault_injection")
        if mode not in FAULT_MODES:
            raise ModelConfigError(f"unknown fault mode {mode!r}; known: {', '.join(FAULT_MODES)}")
        self._call(self._inject_fault_async(slot_name, mode, after))

    def stats(self) -> dict:
        """A deep-copied snapshot of gateway and per-shard counters.

        ``requests`` mirrors the thread server's accounting (submitted /
        completed / cache_hits / coalesced plus per-error-code rejected and
        failed groups, ``shard_failed`` included); ``shards`` reports each
        slot's pid, liveness, generation, restart/dispatch/requeue counters
        and heartbeat age; ``deployments`` / ``primary`` / ``routes`` /
        ``shadow`` describe the routing stack.

        Like every other public call, the snapshot is taken *on* the gateway
        loop, so it is internally consistent — never torn by concurrent
        mutation from in-flight traffic.
        """
        if self._loop is not None and self._thread is not None and self._thread.is_alive():
            return self._call(self._stats_async())
        # Before start() / after stop() nothing mutates concurrently; a
        # direct snapshot is safe and lets callers inspect a stopped server.
        return self._snapshot_stats(now=None)

    def observability(self) -> dict:
        """Cluster-wide metrics and the gateway's trace store.

        ``metrics`` merges the gateway's own registry snapshot with the
        newest per-shard snapshot each shard piggybacked on its heartbeat
        frames — counters add, histograms merge bucket-exact (the fixed
        :data:`~repro.obs.metrics.BUCKET_SCHEME` makes cross-process merge
        lossless), gauges adopt the last writer.  ``shards`` keeps the raw
        per-slot snapshots; ``spans`` lists every span the gateway recorded
        or ingested from shard responses (render with
        :func:`repro.obs.export.render_trace`).  A respawned shard restarts
        its counters from zero; the merge reflects the live processes, not
        lifetime totals across generations.
        """
        if self._loop is not None and self._thread is not None and self._thread.is_alive():
            return self._call(self._observability_async())
        return self._merged_observability()

    async def _observability_async(self) -> dict:
        return self._merged_observability()

    def _merged_observability(self) -> dict:
        scratch = MetricsRegistry()
        scratch.merge(obs.METRICS.snapshot())
        shards = {}
        for slot in self._slots:
            if slot.metrics is not None:
                shards[slot.name] = copy.deepcopy(slot.metrics)
                scratch.merge(slot.metrics)
        return {
            "metrics": scratch.snapshot(),
            "shards": shards,
            "spans": [span.as_dict() for span in obs.TRACES.spans()],
        }

    async def _stats_async(self) -> dict:
        return self._snapshot_stats(now=self._loop.time())

    def _snapshot_stats(self, now: float | None) -> dict:
        snapshot = {
            "version": __version__,
            "requests": {
                "submitted": self._counts["submitted"],
                "completed": self._counts["completed"],
                "cache_hits": self._counts["cache_hits"],
                "coalesced": self._counts["coalesced"],
                "rejected": {
                    "queue_full": self._counts["queue_full"],
                    "deadline_exceeded": self._counts["deadline_exceeded"],
                    "server_stopped": self._counts["server_stopped"],
                },
                "failed": {
                    "invalid_request": self._counts["invalid_request"],
                    "backend_error": self._counts["backend_error"],
                    "shard_failed": self._counts["shard_failed"],
                    "corpus_empty": self._counts[ERROR_CORPUS_EMPTY],
                    "index_mismatch": self._counts[ERROR_INDEX_MISMATCH],
                },
            },
            "shards": {
                slot.name: {
                    "pid": slot.pid,
                    "alive": slot.alive,
                    "broken": slot.broken,
                    "generation": slot.generation,
                    "restarts": slot.restarts,
                    "dispatched": slot.dispatched,
                    "completed": slot.completed,
                    "requeued": slot.requeued,
                    "queued": slot.queue.qsize() if slot.queue is not None else 0,
                    "pending_batches": len(slot.pending),
                    "heartbeat_age_s": round(max(0.0, now - slot.last_heartbeat), 3)
                    if slot.alive and now is not None
                    else None,
                    "deployments": sorted(slot.deployments),
                }
                for slot in self._slots
            },
            "restarts": self._totals["restarts"],
            "requeues": self._totals["requeues"],
            "swaps": self._totals["swaps"],
            "deployments": sorted(self._deployments),
            "primary": self._primary,
            "routes": self._router.describe(),
            "shadow": dict(self._shadow),
            "gateway_cache": self._cache.stats(),
            "fatal": list(self._fatal_log),
        }
        return copy.deepcopy(snapshot)

    # -- event-loop plumbing ------------------------------------------------------------
    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            with contextlib.suppress(Exception):
                self._loop.close()

    def _call(self, coro, timeout: float | None = None):
        """Run ``coro`` on the gateway loop from any thread and wait for it."""
        if self._loop is None or not self._thread or not self._thread.is_alive():
            coro.close()
            raise ModelConfigError("ShardedServer is not started")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    async def _start_async(self) -> None:
        window = self.config.window()
        for slot in self._slots:
            slot.queue = asyncio.Queue(maxsize=self.config.queue_size)
            slot.inflight = asyncio.Semaphore(self.config.max_inflight_batches)
            slot.ready = asyncio.Event()
            await self._respawn(slot, initial=True)
            self._collector_tasks.append(asyncio.create_task(self._collect(slot, window)))
        self._monitor_task = asyncio.create_task(self._monitor())

    async def _stop_async(self) -> None:
        self._stopping = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        for task in list(self._respawn_tasks):
            task.cancel()
        for task in self._collector_tasks:
            task.cancel()
        for slot in self._slots:
            for batch in slot.pending.values():
                for job in batch.jobs:
                    self._fail_job(job, ERROR_SHUTDOWN, "server stopped with the request in flight")
            slot.pending.clear()
            if slot.queue is not None:
                while not slot.queue.empty():
                    job = slot.queue.get_nowait()
                    self._note_dequeued(job)
                    self._fail_job(job, ERROR_SHUTDOWN, "server stopped with the request queued")
            if slot.alive:
                with contextlib.suppress(OSError, TransportError):
                    os.set_blocking(slot.to_fd, True)
                    write_frame(slot.to_fd, {"type": "stop"})
            self._destroy_shard_process(slot)
        await asyncio.sleep(0)

    # -- forking and respawn ------------------------------------------------------------
    def _fork_shard(self, slot: _Slot) -> None:
        """Fork one shard for ``slot``; gateway-side fds become non-blocking."""
        in_read, in_write = os.pipe()
        out_read, out_write = os.pipe()
        generation = slot.generation + 1
        refs = sorted(self._deployments)
        inherited = sorted(self._gateway_fds)
        pid = os.fork()
        if pid == 0:
            # Child: keep only our two shard-side ends, drop every gateway fd
            # (ours and other shards') so a dead shard's pipes EOF correctly.
            try:
                os.close(in_write)
                os.close(out_read)
                for fd in inherited:
                    with contextlib.suppress(OSError):
                        os.close(fd)
                _shard_run(
                    slot.name, generation, self._registry_path, refs, in_read, out_write, self.config
                )
            finally:
                os._exit(1)
        os.close(in_read)
        os.close(out_write)
        os.set_blocking(in_write, False)
        os.set_blocking(out_read, False)
        slot.generation = generation
        slot.pid = pid
        slot.to_fd = in_write
        slot.from_fd = out_read
        slot.decoder = FrameDecoder()
        slot.outbuf = bytearray()
        slot.writing = False
        slot.deployments = set()
        slot.last_heartbeat = self._loop.time()
        slot.ready_waiter = self._loop.create_future()
        self._gateway_fds.update((in_write, out_read))
        self._loop.add_reader(out_read, self._on_readable, slot, generation)

    async def _respawn(self, slot: _Slot, initial: bool = False) -> None:
        """Bring ``slot`` up, retrying; marks the slot broken when it cannot."""
        for _attempt in range(self.config.respawn_attempts):
            if self._stopping:
                return
            try:
                self._fork_shard(slot)
            except OSError as error:
                self._fatal_log.append(f"{slot.name}: fork failed: {error}")
                await asyncio.sleep(0.05)
                continue
            try:
                await asyncio.wait_for(slot.ready_waiter, self.config.start_timeout_s)
            except (Exception, asyncio.CancelledError):
                self._destroy_shard_process(slot)
                if self._stopping:
                    return
                continue
            slot.alive = True
            slot.broken = False
            slot.last_heartbeat = self._loop.time()
            if not initial:
                slot.restarts += 1
                self._totals["restarts"] += 1
                _RESPAWNS_TOTAL.inc()
            slot.ready.set()
            return
        slot.broken = True
        self._drain_queue_of_broken_slot(slot)
        if initial:
            raise ModelConfigError(
                f"shard {slot.name} failed to start after {self.config.respawn_attempts} attempts"
            )

    def _destroy_shard_process(self, slot: _Slot) -> None:
        """Remove fd registrations, close pipes, and SIGKILL + reap the process."""
        for fd, remover in ((slot.from_fd, self._loop.remove_reader), (slot.to_fd, self._loop.remove_writer)):
            if fd >= 0:
                with contextlib.suppress(Exception):
                    remover(fd)
        for fd in (slot.to_fd, slot.from_fd):
            if fd >= 0:
                self._gateway_fds.discard(fd)
                with contextlib.suppress(OSError):
                    os.close(fd)
        slot.to_fd = slot.from_fd = -1
        slot.writing = False
        pid = slot.pid
        if pid > 0:
            with contextlib.suppress(ProcessLookupError, PermissionError):
                os.kill(pid, signal.SIGKILL)
            # SIGKILL works on SIGSTOPped processes too; reap without blocking
            # the loop (the kill guarantees the wait completes).
            self._loop.run_in_executor(None, self._reap, pid)
        slot.pid = -1

    @staticmethod
    def _reap(pid: int) -> None:
        with contextlib.suppress(ChildProcessError, OSError):
            os.waitpid(pid, 0)

    # -- shard I/O ----------------------------------------------------------------------
    def _on_readable(self, slot: _Slot, generation: int) -> None:
        if slot.generation != generation or slot.from_fd < 0:
            return
        try:
            data = os.read(slot.from_fd, 1 << 16)
        except BlockingIOError:
            return
        except OSError as error:
            self._on_shard_death(slot, generation, f"read failed: {error}")
            return
        if not data:
            self._on_shard_death(slot, generation, "pipe closed (process exited)")
            return
        try:
            messages = slot.decoder.feed(data)
        except TransportError as error:
            self._on_shard_death(slot, generation, f"protocol violation: {error}")
            return
        for message in messages:
            self._on_message(slot, generation, message)

    def _on_message(self, slot: _Slot, generation: int, message: dict) -> None:
        if slot.generation != generation:
            return
        mtype = message.get("type")
        now = self._loop.time()
        if mtype == "heartbeat" and slot.alive:
            _HEARTBEAT_GAP_MS.record((now - slot.last_heartbeat) * 1000.0)
        slot.last_heartbeat = now
        if mtype == "heartbeat":
            metrics = message.get("metrics")
            if metrics is not None:
                slot.metrics = metrics
            return
        if mtype == "ready":
            slot.deployments = set(message.get("deployments", []))
            if slot.ready_waiter is not None and not slot.ready_waiter.done():
                slot.ready_waiter.set_result(True)
            return
        if mtype == "result":
            self._resolve_batch(slot, message.get("seq"), message.get("responses") or [])
            return
        if mtype == "chunk":
            # A streaming batch holds exactly one job; chunk frames for a
            # batch no longer pending (shard died, job requeued) are stale
            # and dropped — the restarted stream re-emits from chunk_seq 0.
            batch = slot.pending.get(message.get("seq"))
            if batch is not None and batch.jobs:
                job = batch.jobs[0]
                if job.on_text is not None and (job.future is None or not job.future.done()):
                    job.on_text(int(message.get("chunk_seq", 0)), str(message.get("text", "")))
            return
        if mtype == "loaded":
            slot.deployments.add(message["deployment"])
            waiter = slot.waiters.pop(("loaded", message["ref"]), None)
            if waiter is not None and not waiter.done():
                waiter.set_result(message["deployment"])
            return
        if mtype == "load_failed":
            waiter = slot.waiters.pop(("loaded", message["ref"]), None)
            if waiter is not None and not waiter.done():
                waiter.set_exception(ModelConfigError(f"{slot.name}: {message.get('detail')}"))
            return
        if mtype == "unloaded":
            slot.deployments.discard(message["deployment"])
            return
        if mtype in ("fault_armed", "fault_rejected"):
            waiter = slot.waiters.pop(("fault", message.get("mode")), None)
            if waiter is not None and not waiter.done():
                if mtype == "fault_armed":
                    waiter.set_result(True)
                else:
                    waiter.set_exception(ModelConfigError(f"{slot.name} rejected the fault frame"))
            return
        if mtype == "fatal":
            self._fatal_log.append(f"{slot.name}: {message.get('detail')}")

    def _send(self, slot: _Slot, frame: dict) -> None:
        slot.outbuf.extend(encode_frame(frame))
        if not slot.writing:
            self._flush_writes(slot, slot.generation)

    def _flush_writes(self, slot: _Slot, generation: int) -> None:
        if slot.generation != generation or slot.to_fd < 0:
            return
        while slot.outbuf:
            try:
                written = os.write(slot.to_fd, slot.outbuf)
            except BlockingIOError:
                if not slot.writing:
                    slot.writing = True
                    self._loop.add_writer(slot.to_fd, self._flush_writes, slot, generation)
                return
            except OSError as error:
                self._on_shard_death(slot, generation, f"write failed: {error}")
                return
            del slot.outbuf[:written]
        if slot.writing:
            slot.writing = False
            with contextlib.suppress(Exception):
                self._loop.remove_writer(slot.to_fd)

    # -- death, requeue, monitoring -----------------------------------------------------
    def _on_shard_death(self, slot: _Slot, generation: int, reason: str) -> None:
        if slot.generation != generation:
            return
        if not slot.alive:
            # Died during spawn: fail the ready waiter so _respawn retries.
            if slot.ready_waiter is not None and not slot.ready_waiter.done():
                slot.ready_waiter.set_exception(ModelConfigError(f"{slot.name} died during start: {reason}"))
            return
        slot.alive = False
        slot.ready.clear()
        self._fatal_log.append(f"{slot.name} gen {generation} died: {reason}")
        pending = list(slot.pending.values())
        slot.pending.clear()
        # Control-frame waiters (load/fault acks) fail fast so a rolling swap
        # interrupted by the crash retries immediately instead of timing out.
        for waiter in slot.waiters.values():
            if not waiter.done():
                waiter.set_exception(TransportError(f"{slot.name} died: {reason}"))
        slot.waiters.clear()
        self._destroy_shard_process(slot)
        for batch in pending:
            slot.inflight.release()
            for span in batch.spans:
                obs.TRACES.finish(span, status="error")
            outstanding = self._dep_outstanding.get(batch.deployment, 0)
            self._dep_outstanding[batch.deployment] = max(0, outstanding - len(batch.jobs))
            for job in batch.jobs:
                self._requeue_job(slot, job, reason)
        if not self._stopping:
            task = asyncio.ensure_future(self._respawn(slot))
            self._respawn_tasks.add(task)
            task.add_done_callback(self._respawn_tasks.discard)

    def _requeue_job(self, slot: _Slot, job: _Job, reason: str) -> None:
        if job.future is not None and job.future.done():
            return
        job.requeues += 1
        slot.requeued += 1
        self._totals["requeues"] += 1
        _REQUEUES_TOTAL.inc()
        if job.requeues > self.config.max_requeues:
            self._fail_job(
                job,
                ERROR_SHARD_FAILED,
                f"shard died ({reason}) and the requeue budget "
                f"({self.config.max_requeues}) is exhausted",
            )
            return
        self._enqueue(job, requeue=True)

    def _enqueue(self, job: _Job, requeue: bool = False) -> None:
        """Route ``job`` to a live slot's queue (the hash ring decides which)."""
        dead = {slot.name for slot in self._slots if not slot.alive}
        try:
            target_name = self._ring.node(job.key, exclude=dead)
        except ModelConfigError:
            # Every shard is down: keep the job on a *respawnable* owner so it
            # runs after the respawn instead of failing a transient total
            # outage.  A broken slot (respawn budget exhausted) never comes
            # back, so its queue would strand the job forever.
            broken = {slot.name for slot in self._slots if slot.broken}
            try:
                target_name = self._ring.node(job.key, exclude=broken)
            except ModelConfigError:
                self._fail_job(
                    job, ERROR_SHARD_FAILED, "every shard is broken; no slot can serve the request"
                )
                return
        target = next(slot for slot in self._slots if slot.name == target_name)
        try:
            target.queue.put_nowait(job)
            self._note_queued(job)
        except asyncio.QueueFull:
            if requeue:
                self._fail_job(job, ERROR_SHARD_FAILED, "no shard had queue capacity for the requeued request")
            else:
                self._fail_job(job, ERROR_QUEUE_FULL, f"{target.name}'s queue is full")

    def _note_queued(self, job: _Job) -> None:
        """Count ``job`` into its deployment's queued total (drain accounting)."""
        self._dep_queued[job.deployment] = self._dep_queued.get(job.deployment, 0) + 1

    def _note_dequeued(self, job: _Job) -> None:
        self._dep_queued[job.deployment] = max(0, self._dep_queued.get(job.deployment, 0) - 1)

    def _drain_queue_of_broken_slot(self, slot: _Slot) -> None:
        if slot.queue is None:
            return
        while not slot.queue.empty():
            job = slot.queue.get_nowait()
            self._note_dequeued(job)
            if any(s.alive for s in self._slots):
                self._enqueue(job)
            else:
                self._fail_job(job, ERROR_SHARD_FAILED, f"{slot.name} is broken and no other shard is alive")

    async def _monitor(self) -> None:
        interval = self.config.heartbeat_interval_ms / 1000.0
        timeout = self.config.heartbeat_timeout_ms / 1000.0
        deadline = (
            self.config.batch_deadline_ms / 1000.0
            if self.config.batch_deadline_ms is not None
            else None
        )
        while not self._stopping:
            await asyncio.sleep(interval)
            now = self._loop.time()
            for slot in self._slots:
                if not slot.alive:
                    continue
                if now - slot.last_heartbeat > timeout:
                    self._on_shard_death(
                        slot,
                        slot.generation,
                        f"missed heartbeats for {round(now - slot.last_heartbeat, 3)}s "
                        f"(timeout {timeout}s) — wedged",
                    )
                    continue
                if deadline is not None and slot.pending:
                    # A live heartbeat can't prove a dispatched batch will
                    # ever be answered (the reply may have been swallowed);
                    # an overdue batch condemns the shard so its jobs requeue.
                    oldest = min(batch.dispatched_at for batch in slot.pending.values())
                    if now - oldest > deadline:
                        self._on_shard_death(
                            slot,
                            slot.generation,
                            f"batch result overdue by {round(now - oldest - deadline, 3)}s "
                            f"(deadline {deadline}s) — lost reply",
                        )

    # -- collection and dispatch --------------------------------------------------------
    async def _collect(self, slot: _Slot, window: BatchWindow) -> None:
        while not self._stopping:
            await slot.ready.wait()
            job = await slot.queue.get()
            batch = [job]
            opened = self._loop.time()
            while not window.is_full(len(batch)):
                remaining = window.remaining_wait(opened, self._loop.time())
                if remaining <= 0:
                    break
                try:
                    # asyncio.TimeoutError, not builtin TimeoutError: they are
                    # distinct classes on 3.10 (aliases from 3.11), and wait_for
                    # raises the asyncio one there.
                    item = await asyncio.wait_for(slot.queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                batch.append(item)
            groups: dict[str, list[_Job]] = {}
            for item in batch:
                groups.setdefault(item.deployment, []).append(item)
            # One frame per unit: plain jobs share a serve frame, but every
            # streaming job is its own stream frame (its chunk frames must
            # interleave on the reply pipe, so streams never share a batch).
            # Each unit takes one inflight-semaphore slot, matching the one
            # release its result (or its shard's death) will produce.
            units: list[tuple[str, list[_Job]]] = []
            for deployment, jobs in groups.items():
                plain = [job for job in jobs if job.on_text is None]
                if plain:
                    units.append((deployment, plain))
                units.extend((deployment, [job]) for job in jobs if job.on_text is not None)
            for deployment, jobs in units:
                await slot.inflight.acquire()
                if not slot.alive or self._stopping:
                    slot.inflight.release()
                    for pending_job in jobs:
                        self._note_dequeued(pending_job)
                        if self._stopping:
                            self._fail_job(pending_job, ERROR_SHUTDOWN, "server stopped")
                        else:
                            self._enqueue(pending_job)
                    continue
                self._dispatch(slot, deployment, jobs)

    def _dispatch(self, slot: _Slot, deployment: str, jobs: list[_Job]) -> None:
        self._seq += 1
        seq = self._seq
        # Per-job dispatch spans: each covers the frame's round trip to the
        # shard.  job.wire was encoded at admission, so a traced job's wire
        # dict is re-pointed (copy-on-write) at the dispatch span — a requeue
        # re-dispatches under a fresh span rather than reusing a dead one.
        spans = []
        wires = []
        for job in jobs:
            span = obs.TRACES.begin(
                SPAN_GATEWAY_DISPATCH,
                SpanContext.from_wire(job.wire.get("trace")),
                attrs={"slot": slot.name, "deployment": deployment},
            )
            spans.append(span)
            if span is None:
                wires.append(job.wire)
            else:
                wire = dict(job.wire)
                wire["trace"] = span.context.to_wire()
                wires.append(wire)
        slot.pending[seq] = _PendingBatch(deployment, jobs, dispatched_at=self._loop.time(), spans=spans)
        slot.dispatched += len(jobs)
        # Jobs move from the queued to the outstanding count atomically (both
        # mutations happen on the loop with no await between them), so the
        # undeploy drain never sees a job in neither.
        for job in jobs:
            self._note_dequeued(job)
        self._dep_outstanding[deployment] = self._dep_outstanding.get(deployment, 0) + len(jobs)
        if len(jobs) == 1 and jobs[0].on_text is not None:
            self._send(
                slot,
                {"type": "stream", "seq": seq, "deployment": deployment, "request": wires[0]},
            )
            return
        self._send(
            slot,
            {
                "type": "serve",
                "seq": seq,
                "deployment": deployment,
                "requests": wires,
            },
        )

    def _resolve_batch(self, slot: _Slot, seq, response_dicts: list[dict]) -> None:
        batch = slot.pending.pop(seq, None)
        if batch is None:
            return
        slot.inflight.release()
        _DISPATCH_MS.record((self._loop.time() - batch.dispatched_at) * 1000.0)
        status = "ok" if len(response_dicts) == len(batch.jobs) else "error"
        for span in batch.spans:
            obs.TRACES.finish(span, status=status)
        outstanding = self._dep_outstanding.get(batch.deployment, 0)
        self._dep_outstanding[batch.deployment] = max(0, outstanding - len(batch.jobs))
        if len(response_dicts) != len(batch.jobs):
            for job in batch.jobs:
                self._fail_job(
                    job,
                    ERROR_SHARD_FAILED,
                    f"{slot.name} returned {len(response_dicts)} responses for {len(batch.jobs)} requests",
                )
            return
        slot.completed += len(batch.jobs)
        for job, payload in zip(batch.jobs, response_dicts):
            self._deliver(slot, job, payload)

    # -- delivery and accounting --------------------------------------------------------
    def _deliver(self, slot: _Slot, job: _Job, payload: dict) -> None:
        if payload.get("error") is None and not job.shadow:
            stored = dict(payload)
            # Shard-placement telemetry is per-delivery and must not replay,
            # but pipeline stage artifacts (corpus_qa retrieval/merge) are a
            # deterministic function of the request — keep those.
            stages = (payload.get("telemetry") or {}).get("stages")
            stored["telemetry"] = {"stages": copy.deepcopy(stages)} if stages is not None else None
            self._cache.put(job.cache_key, stored)
        enriched = dict(payload)
        telemetry = dict(enriched.get("telemetry") or {})
        # Spans the shard shipped back move into the gateway's trace store —
        # they are observability payload, not response payload.
        shipped_spans = telemetry.pop("spans", None)
        if shipped_spans:
            obs.TRACES.ingest(shipped_spans)
        telemetry.update({"shard": slot.name, "shard_generation": slot.generation, "requeues": job.requeues})
        enriched["telemetry"] = telemetry
        try:
            response = Response.from_dict(enriched)
        except ReproError as error:
            self._fail_job(job, ERROR_SHARD_FAILED, f"undecodable shard response: {error}")
            return
        self._finish(job, response)

    def _fail_job(self, job: _Job, code: str, detail: str) -> None:
        if job.future is not None and job.future.done():
            return
        self._finish(job, error_response(job.request, code, detail))

    def _finish(self, job: _Job, response: Response) -> None:
        if not job.shadow:
            if response.error is None:
                self._counts["completed"] += 1
            else:
                self._counts[response.error] += 1
        if self._inflight_keys.get(job.cache_key) is job.future:
            del self._inflight_keys[job.cache_key]
        if job.future is not None and not job.future.done():
            job.future.set_result(response)

    # -- admission ----------------------------------------------------------------------
    @staticmethod
    def _routing_key(wire: dict) -> str:
        """The request's content identity: wire fields minus caller tags.

        ``trace`` is excluded alongside ``request_id``/``deployment``: trace
        context is per-submission observability metadata, and folding it in
        would break cache hits, coalescing and ring affinity for otherwise
        identical requests.
        """
        payload = {
            key: value
            for key, value in wire.items()
            if key not in ("request_id", "deployment", "trace") and value is not None
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False)
        return hashlib.md5(canonical.encode("utf-8")).hexdigest()

    def _resolve_deployment(self, request: Request, key: str) -> str:
        if request.deployment:
            name = request.deployment
            if name in self._deployments:
                return name
            if "@" not in name:
                versions = [
                    dep for dep in self._deployments if dep.rsplit("@", 1)[0] == name
                ]
                if versions:
                    return max(versions, key=lambda dep: int(dep.rsplit("@", 1)[1]))
            raise ModelConfigError(
                f"unknown or undeployed deployment {name!r}; active: {', '.join(sorted(self._deployments))}"
            )
        routed = self._router.route(request.task, key)
        if routed is not None and routed in self._deployments:
            return routed
        return self._primary

    async def _submit(self, request: Request, on_text=None) -> Response:
        span = None
        if isinstance(request, Request) and request.trace is None:
            # The gateway is the trace root; a request already carrying wire
            # context (the stream() generator roots its own) just propagates.
            span = obs.TRACES.root(SPAN_GATEWAY_REQUEST, attrs={"task": request.task})
            if span is not None:
                request = replace(request, trace=span.context.to_wire())
        try:
            response = await self._submit_inner(request, on_text)
        except BaseException:
            obs.TRACES.finish(span, status="error")
            raise
        obs.TRACES.finish(span, status="ok" if response.error is None else "error")
        return response

    async def _submit_inner(self, request: Request, on_text=None) -> Response:
        self._counts["submitted"] += 1
        if not isinstance(request, Request):
            # error_response() would dereference .task / .request_id on the
            # invalid object; build the structured rejection without touching it.
            self._counts[ERROR_INVALID_REQUEST] += 1
            return Response(
                task="",
                output="",
                error=ERROR_INVALID_REQUEST,
                detail=f"submit() needs a Request, got {type(request).__name__}",
            )
        if self._stopping:
            return self._finish_inline(request, ERROR_SHUTDOWN, "server is stopped")
        wire = request_to_wire(request)
        key = self._routing_key(wire)
        try:
            deployment = self._resolve_deployment(request, key)
        except ModelConfigError as error:
            return self._finish_inline(request, ERROR_INVALID_REQUEST, str(error))
        cache_key = f"{key}|{deployment}"

        cached = self._cache.get(cache_key)
        if cached is not None:
            self._counts["cache_hits"] += 1
            self._counts["completed"] += 1
            return self._replay(cached, request, cached_hit=True, via="gateway_cache")

        inflight = self._inflight_keys.get(cache_key)
        if inflight is not None and not inflight.done():
            self._counts["coalesced"] += 1
            primary = await asyncio.shield(inflight)
            payload = primary.as_dict()
            if primary.error is not None:
                self._counts[primary.error] += 1
                replayed = self._replay(payload, request, cached_hit=False, via="coalesced")
            else:
                self._counts["completed"] += 1
                replayed = self._replay(payload, request, cached_hit=True, via="coalesced")
            return replayed

        future = self._loop.create_future()
        job = _Job(request, wire, key, cache_key, deployment, future, on_text=on_text)
        self._inflight_keys[cache_key] = future
        self._maybe_shadow(request, wire, key, future)
        self._enqueue(job)
        return await future

    async def _stream_submit(self, request: Request, put) -> Response:
        """Run :meth:`_submit` with a chunk tap feeding ``put``; always ends
        with a ``("done", response)`` event so the sync generator never hangs."""

        def on_text(chunk_seq: int, text: str) -> None:
            put(("chunk", (chunk_seq, text)))

        try:
            response = await self._submit(request, on_text=on_text)
        except BaseException as error:  # noqa: BLE001 - the consumer must see an end
            put(
                (
                    "done",
                    error_response(
                        request, ERROR_SHARD_FAILED, f"stream failed in the gateway: {error}"
                    ),
                )
            )
            raise
        put(("done", response))
        return response

    def _finish_inline(self, request, code: str, detail: str) -> Response:
        self._counts[code] += 1
        return error_response(request, code, detail)

    def _replay(self, payload: dict, request: Request, cached_hit: bool, via: str) -> Response:
        replayed = dict(payload)
        replayed["request_id"] = request.request_id
        if cached_hit:
            replayed["cached"] = True
        telemetry = {"via": via}
        stages = (payload.get("telemetry") or {}).get("stages")
        if stages is not None:
            telemetry["stages"] = copy.deepcopy(stages)
        replayed["telemetry"] = telemetry
        return Response.from_dict(replayed)

    def _maybe_shadow(self, request: Request, wire: dict, key: str, primary_future) -> None:
        shadow_dep = self._router.shadow(request.task, key)
        if shadow_dep is None or shadow_dep not in self._deployments:
            return
        self._shadow["sampled"] += 1
        shadow_future = self._loop.create_future()
        job = _Job(request, wire, key, f"{key}|{shadow_dep}", shadow_dep, shadow_future, shadow=True)
        dead = {slot.name for slot in self._slots if not slot.alive}
        try:
            target_name = self._ring.node(job.key, exclude=dead)
            target = next(slot for slot in self._slots if slot.name == target_name)
            target.queue.put_nowait(job)
            self._note_queued(job)
        except (ModelConfigError, asyncio.QueueFull):
            self._shadow["dropped"] += 1
            return
        asyncio.ensure_future(self._record_shadow(primary_future, shadow_future))

    async def _record_shadow(self, primary_future, shadow_future) -> None:
        try:
            primary, shadow = await asyncio.gather(primary_future, shadow_future)
        except Exception:  # noqa: BLE001 - shadow traffic is best-effort
            self._shadow["dropped"] += 1
            return
        self._shadow["completed"] += 1
        if primary.output != shadow.output or primary.error != shadow.error:
            self._shadow["mismatched"] += 1

    async def _serve_async(self, requests: list[Request]) -> list[Response]:
        return list(await asyncio.gather(*(self._submit(request) for request in requests)))

    async def _run_trace(self, requests: list[Request], arrivals_s: list[float]) -> list[Response]:
        started = self._loop.time()
        tasks: list[asyncio.Future] = []
        for request, offset in zip(requests, arrivals_s):
            delay = started + offset - self._loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(self._submit(request)))
        return list(await asyncio.gather(*tasks))

    # -- deployment lifecycle internals -------------------------------------------------
    async def _load_on_slot(self, slot: _Slot, ref: str, dep_id: str) -> None:
        """Load ``ref`` on ``slot``, surviving crashes and respawns mid-load."""
        deadline = self._loop.time() + self.config.start_timeout_s * self.config.respawn_attempts
        while self._loop.time() < deadline:
            if self._stopping:
                raise ModelConfigError("server is stopping")
            if slot.broken:
                raise ModelConfigError(f"{slot.name} is broken; cannot load {ref}")
            try:
                # asyncio.TimeoutError: distinct from builtin TimeoutError on
                # 3.10, where wait_for raises the asyncio flavor.
                await asyncio.wait_for(slot.ready.wait(), 0.5)
            except asyncio.TimeoutError:
                continue
            if dep_id in slot.deployments:
                return  # a respawn already loaded it from self._deployments
            waiter = self._loop.create_future()
            slot.waiters[("loaded", ref)] = waiter
            self._send(slot, {"type": "load", "ref": ref})
            try:
                await asyncio.wait_for(waiter, self.config.start_timeout_s)
                return
            except asyncio.TimeoutError:
                slot.waiters.pop(("loaded", ref), None)
                continue  # shard went silent; loop re-checks after respawn
            except TransportError:
                continue  # shard died mid-load; the respawn carries the ref
        raise ModelConfigError(f"timed out loading {ref} on {slot.name}")

    def _fresh_registry(self):
        """Re-read the registry file: deploys reference versions registered
        after this gateway (or shard) process last loaded it."""
        from repro.deploy.registry import ModelRegistry

        self._registry = ModelRegistry(self._registry_path)
        return self._registry

    async def _deploy_async(self, ref: str) -> str:
        manifest = self._fresh_registry().verify(ref)
        dep_id = manifest.id
        self._deployments.add(dep_id)
        try:
            for slot in self._slots:
                await self._load_on_slot(slot, dep_id, dep_id)
        except ModelConfigError:
            if dep_id != self._primary:
                self._deployments.discard(dep_id)
            raise
        return dep_id

    async def _rolling_swap_async(self, ref: str) -> str:
        dep_id = await self._deploy_async(ref)
        if dep_id != self._primary:
            self._primary = dep_id
            self._totals["swaps"] += 1
        return dep_id

    async def _undeploy_async(self, ref: str) -> None:
        dep_id = self._fresh_registry().get(ref).id if "@" not in ref else ref
        if dep_id == self._primary:
            raise ModelConfigError(f"{dep_id} is the primary deployment; swap first, then undeploy")
        if dep_id not in self._deployments:
            raise ModelConfigError(f"{dep_id} is not deployed")
        self._router = self._router.without(dep_id)
        self._deployments.discard(dep_id)
        # Drain: queued jobs pinned to the version still dispatch (their slot
        # keeps the pipeline until the unload frame below), so wait for both
        # the queued and outstanding counts to reach zero before unloading
        # anywhere — bounded, so a request stuck in an error/requeue cycle
        # cannot spin this loop forever.
        deadline = self._loop.time() + self.config.drain_timeout_s
        while (
            self._dep_outstanding.get(dep_id, 0) > 0 or self._dep_queued.get(dep_id, 0) > 0
        ):
            if self._loop.time() >= deadline:
                self._deployments.add(dep_id)  # still loaded; let the caller retry
                raise ModelConfigError(
                    f"timed out draining {dep_id} after {self.config.drain_timeout_s}s; "
                    "the version stays deployed — retry undeploy once its work settles"
                )
            await asyncio.sleep(0.005)
        for slot in self._slots:
            if slot.alive:
                self._send(slot, {"type": "unload", "deployment": dep_id})

    async def _set_routes_async(self, task: str, weights: dict[str, float]) -> None:
        unknown = sorted(set(weights) - self._deployments)
        if unknown:
            raise ModelConfigError(f"cannot route to undeployed versions: {', '.join(unknown)}")
        self._router = self._router.with_routes(task, weights)

    async def _set_canary_async(self, task: str, ref: str, fraction: float) -> None:
        dep_id = self._fresh_registry().get(ref).id if "@" not in ref else ref
        if dep_id not in self._deployments:
            raise ModelConfigError(f"canary target {dep_id} is not deployed; call deploy() first")
        if not 0.0 <= fraction <= 1.0:
            raise ModelConfigError(f"canary fraction must be in [0, 1], got {fraction!r}")
        if fraction <= 0.0:
            self._router = self._router.without_task(task)
        elif fraction >= 1.0:
            self._router = self._router.with_routes(task, {dep_id: 1.0})
        else:
            self._router = self._router.with_routes(
                task, {self._primary: 1.0 - fraction, dep_id: fraction}
            )

    async def _set_shadow_async(self, task: str, ref: str, fraction: float) -> None:
        dep_id = self._fresh_registry().get(ref).id if "@" not in ref else ref
        if fraction > 0 and dep_id not in self._deployments:
            raise ModelConfigError(f"shadow target {dep_id} is not deployed; call deploy() first")
        self._router = self._router.with_shadow(task, dep_id, fraction)

    async def _inject_fault_async(self, slot_name: str, mode: str, after: int) -> None:
        slot = next((s for s in self._slots if s.name == slot_name), None)
        if slot is None:
            raise ModelConfigError(f"unknown shard slot {slot_name!r}")
        await slot.ready.wait()
        waiter = self._loop.create_future()
        slot.waiters[("fault", mode)] = waiter
        self._send(slot, {"type": "fault", "mode": mode, "after": after})
        await asyncio.wait_for(waiter, self.config.start_timeout_s)


@contextlib.contextmanager
def serve_sharded(registry_path, primary_ref: str, config: ShardConfig | None = None):
    """Context manager yielding a started :class:`ShardedServer`.

    The one-liner for tests and benchmarks::

        with serve_sharded(registry, "captioner@1", ShardConfig(num_shards=4)) as server:
            responses = server.serve(requests)
    """
    server = ShardedServer(registry_path, primary_ref, config)
    server.start()
    try:
        yield server
    finally:
        server.stop()
