"""Asynchronous multi-worker serving front-end over the :class:`Pipeline`.

``Pipeline.serve`` takes a pre-collected burst: somebody else already did the
queueing.  This module is that somebody — a :class:`Server` accepts requests
one at a time (``await server.submit(request, deadline=...)``), absorbs them
into bounded queues, and drains the queues with a time/size batch collector:
a batch is dispatched as soon as ``max_batch`` requests are waiting *or*
``max_wait_ms`` has elapsed since its first request arrived
(:class:`~repro.serving.batching.BatchWindow`).  Dispatched batches run on a
pool of worker shards — threads that each own their own per-task
:class:`~repro.serving.pipeline._Engine` set over the pipeline's shared
backends — so encoder/decoder forward passes for different tasks (or
successive batches of one task) overlap while the event loop keeps accepting
traffic.

The division of labour keeps every output bitwise-identical to the
synchronous path: request encoding, cache lookups and postprocessing all run
on the event-loop thread through the pipeline's own ``prepare`` /
``cached_response`` / ``complete`` / ``response_from`` primitives (so the
LRU caches are never touched concurrently), and only the pure backend
forward pass (``predict_batch``) runs on worker threads.

Worker threads dispatch whole request batches, but neural decoding inside
them is *token-level*: each worker's ``predict_batch`` routes greedy
DataVisT5 traffic through the shared per-model continuous scheduler
(:mod:`~repro.serving.continuous`), so batches dispatched by different
workers merge into one live decode batch — a request admitted mid-flight
starts decoding immediately instead of waiting for the next window, and a
short request leaves as soon as its own EOS lands.  Rule-based backends
keep the request-granular micro-batcher.

Admission control is structured, never exceptional: a full queue, an expired
deadline, an unpreparable request or a backend exception each produce a
:class:`~repro.serving.protocol.Response` with ``error`` set — one poisoned
request can never take down the loop or anyone else's request.  Duplicate
requests already in flight coalesce onto the first occurrence's future, the
async analogue of ``Pipeline.serve``'s within-burst dedup.

On top of the request path sits the **deployment lifecycle**
(:mod:`repro.deploy`): the server hosts any number of versioned model
deployments (``name@version``) beside its primary pipeline, routes each
request to one of them through an immutable, atomically-flipped
:class:`~repro.deploy.router.Router` (deterministic per-request-key canary
splits, shadow traffic, ``Request.deployment`` pinning), and supports
zero-downtime :meth:`Server.hot_swap`: new engines are admitted via
``Pipeline.spawn_engines``, the router reference flips, and the old version
drains its in-flight requests before its engines are retired.  Response-cache
keys carry the deployment identity (and weight revision), so versions never
replay or poison each other's entries.  A :class:`~repro.deploy.router.
CanaryGuard` auto-reverts a canary whose ``backend_error`` rate crosses its
threshold.  See ``docs/deploy.md``.

Typical use::

    server = Server(pipeline, ServerConfig(max_batch=8, num_workers=2))
    async with server:
        responses = await server.submit_all(requests)
    print(server.stats())
"""

from __future__ import annotations

import asyncio
import copy
from collections.abc import AsyncIterator
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro import __version__, obs
from repro.core.batching import padding_efficiency
from repro.core.config import validate_precision
from repro.deploy.router import CanaryGuard, Router, parse_ref
from repro.errors import ModelConfigError
from repro.obs.names import (
    METRIC_SERVER_BATCH_SIZE,
    METRIC_SERVER_EXECUTE_MS,
    METRIC_SERVER_QUEUE_WAIT_MS,
    SPAN_SERVER_EXECUTE,
    SPAN_SERVER_QUEUE,
    SPAN_SERVER_REQUEST,
)
from repro.obs.trace import SpanContext
from repro.serving.batching import BatchWindow
from repro.serving.pipeline import Pipeline, _Engine, _Prepared, error_code_for
from repro.serving.protocol import (
    ERROR_BACKEND,
    ERROR_CORPUS_EMPTY,
    ERROR_DEADLINE,
    ERROR_INDEX_MISMATCH,
    ERROR_INVALID_REQUEST,
    ERROR_QUEUE_FULL,
    ERROR_SHARD_FAILED,
    ERROR_SHUTDOWN,
    SERVABLE_TASKS,
    Request,
    Response,
    ResponseChunk,
    error_response,
)

#: The deployment identity of a server's primary pipeline — the implicit
#: incumbent that serves every task the router has no explicit entry for.
DEFAULT_DEPLOYMENT = "pipeline@0"

# Fetched once at import so the request hot path never touches the registry
# lock; recording into them is a lock plus a bisect (see repro.obs.metrics).
_QUEUE_WAIT_MS = obs.METRICS.histogram(METRIC_SERVER_QUEUE_WAIT_MS)
_BATCH_SIZE = obs.METRICS.histogram(METRIC_SERVER_BATCH_SIZE)
_EXECUTE_MS = obs.METRICS.histogram(METRIC_SERVER_EXECUTE_MS)


@dataclass
class ServerConfig:
    """Knobs for the async front-end.

    ``max_batch`` / ``max_wait_ms`` parameterize the flush policy: wait at
    most ``max_wait_ms`` milliseconds for a batch to fill to ``max_batch``.
    ``queue_size`` bounds each (task, deployment) queue — submissions beyond
    it are rejected with ``queue_full`` rather than buffered without limit.
    ``num_workers`` is the number of thread-backed worker shards; it also
    bounds how many batches are in flight at once, which back-pressures the
    collectors.  ``precision`` overrides the DataVisT5 inference precision of
    the *primary* pipeline's worker engines (``"float64"`` / ``"float32"`` /
    ``"int8"``; ``None`` keeps the pipeline's own setting) — explicitly
    deployed versions own their precision through their manifests/pipelines
    instead, see ``docs/numerics.md`` and ``docs/deploy.md``.
    """

    max_batch: int = 8
    max_wait_ms: float = 2.0
    queue_size: int = 64
    num_workers: int = 2
    precision: str | None = None

    def __post_init__(self):
        if self.queue_size <= 0:
            raise ModelConfigError("queue_size must be positive")
        if self.num_workers <= 0:
            raise ModelConfigError("num_workers must be positive")
        if self.precision is not None:
            validate_precision(self.precision)
        # BatchWindow validates max_batch / max_wait_ms at construction time;
        # the server derives its own window from the config when it starts.
        BatchWindow(max_batch=self.max_batch, max_wait_ms=self.max_wait_ms)


class _Deployment:
    """Runtime record of one deployed version inside a :class:`Server`.

    Holds the version's engine sets (one per worker shard, so worker state
    never aliases across threads), its lifecycle flags, and the per-version
    counters that feed ``Server.stats()`` and the canary guard.  ``revision``
    counts in-place weight swaps (:meth:`Server.set_weights`) and is part of
    the version's response-cache namespace.
    """

    __slots__ = (
        "deployment_id",
        "pipeline",
        "manifest",
        "revision",
        "is_default",
        "tasks",
        "engines",
        "draining",
        "pending",
        "latency_ms_sum",
        "counts",
    )

    def __init__(self, deployment_id: str, pipeline: Pipeline, manifest=None, is_default: bool = False):
        self.deployment_id = deployment_id
        self.pipeline = pipeline
        self.manifest = manifest
        self.revision = 0
        self.is_default = is_default
        # The engine keys the pipeline would spawn; refreshed by the server
        # when real engine sets are admitted (getattr keeps stub pipelines in
        # tests constructible).
        self.tasks = set(getattr(pipeline, "_engines", ()))
        self.engines: list[dict[str, _Engine]] = []
        self.draining = False
        self.pending = 0
        self.latency_ms_sum = 0.0
        self.counts = {
            "routed": 0,
            "completed": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "backend_error": 0,
            "deadline_exceeded": 0,
            "shadow_requests": 0,
        }


class _Worker:
    """One shard of the worker pool: engines are looked up per deployment."""

    __slots__ = ("worker_id",)

    def __init__(self, worker_id: int):
        self.worker_id = worker_id

    def predict(self, deployment: _Deployment, task: str, prepared: list[_Prepared]) -> list[str]:
        engine = deployment.engines[self.worker_id].get(task)
        if engine is None:
            raise ModelConfigError(
                f"deployment {deployment.deployment_id!r} has no backend for task {task!r}"
            )
        return engine.predict_batch(prepared)


def _telemetry(
    cache_hit: bool = False,
    coalesced: bool = False,
    queue_ms: float = 0.0,
    batch_size: int | None = None,
    worker: int | None = None,
    deployment: str | None = None,
) -> dict:
    """The uniform per-response telemetry dict — every key always present.

    ``batch_size`` and ``worker`` stay ``None`` for responses that never
    reached a worker (cache hits, coalesced duplicates, rejections);
    ``deployment`` is the version that answered (``None`` for requests
    rejected before routing).
    """
    return {
        "cache_hit": cache_hit,
        "coalesced": coalesced,
        "queue_ms": queue_ms,
        "batch_size": batch_size,
        "worker": worker,
        "deployment": deployment,
    }


def _merge_telemetry(existing: dict | None, serving: dict) -> dict:
    """Layer the server's :func:`_telemetry` keys over pipeline-attached telemetry.

    Multi-stage tasks attach their artifacts (``{"stages": ...}``) inside the
    pipeline; replacing the dict wholesale would silently drop them, so the
    serving keys are merged on top instead.
    """
    if not existing:
        return serving
    return {**existing, **serving}


class _Job:
    """One queued request: its prepared form plus scheduling metadata."""

    __slots__ = (
        "prepared",
        "future",
        "enqueued_at",
        "deadline_at",
        "deployment",
        "revision",
        "batch_size",
        "worker_id",
        "queue_seconds",
    )

    def __init__(
        self,
        prepared: _Prepared,
        future: asyncio.Future,
        enqueued_at: float,
        deadline_at: float | None,
        deployment: _Deployment,
    ):
        self.prepared = prepared
        self.future = future
        self.enqueued_at = enqueued_at
        self.deadline_at = deadline_at
        self.deployment = deployment
        # The weight revision the job was admitted (and cache-keyed) under;
        # a mismatch at completion time means the weights were hot-swapped
        # while the job was queued, and its output must not be cached.
        self.revision = deployment.revision
        self.batch_size: int | None = None
        self.worker_id: int | None = None
        self.queue_seconds: float = 0.0


class Server:
    """Accepts concurrent requests and serves them through batched workers.

    One :class:`Server` wraps one primary :class:`Pipeline` (the implicit
    :data:`DEFAULT_DEPLOYMENT`) plus any number of explicitly deployed model
    versions.  All coroutine methods must run on a single event loop; the
    heavy lifting (backend forward passes) is pushed to ``num_workers``
    threads.  The server starts lazily on the first :meth:`submit`, or
    eagerly via ``async with server:`` / :meth:`start`.

    The primary pipeline owns the request *life cycle* — encoding, caches,
    postprocessing — for every deployment; deployed versions contribute the
    backends that answer.  A task can therefore only be routed to versions
    that also exists on the primary pipeline's task surface.
    """

    def __init__(self, pipeline: Pipeline, config: ServerConfig | None = None):
        self.pipeline = pipeline
        self.config = config or ServerConfig()
        if self.config.precision is not None:
            # Build (and discard) one engine set now so a precision override
            # the backends cannot satisfy — int8 over unquantized weights —
            # fails here, at construction, not per request under traffic.
            pipeline.spawn_engines(precision=self.config.precision)
        self._window = BatchWindow(max_batch=self.config.max_batch, max_wait_ms=self.config.max_wait_ms)
        self._default = _Deployment(DEFAULT_DEPLOYMENT, pipeline, is_default=True)
        self._deployments: dict[str, _Deployment] = {DEFAULT_DEPLOYMENT: self._default}
        self._router = Router()
        # guard id -> {"guard": CanaryGuard, "completed": ..., "backend_errors": ...}
        # — the counter baseline at install time, so the guard judges only
        # traffic the canary served *while guarded*, not its whole history.
        self._guards: dict[str, dict] = {}
        self._rollbacks: list[dict] = []
        self._shadow_stats: dict[str, dict] = {}
        self._queues: dict[tuple[str, str], asyncio.Queue] = {}
        self._collectors: dict[tuple[str, str], asyncio.Task] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._idle_workers: asyncio.Queue | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._started = False
        self._closed = False
        self._counts = {
            "submitted": 0,
            "completed": 0,
            "cache_hits": 0,
            "coalesced": 0,
            ERROR_QUEUE_FULL: 0,
            ERROR_DEADLINE: 0,
            ERROR_INVALID_REQUEST: 0,
            ERROR_BACKEND: 0,
            ERROR_SHUTDOWN: 0,
            # corpus_qa request-stage failures: an empty/unretrievable corpus
            # and a client fingerprint pin that does not match the deployed
            # index (see docs/corpus_qa.md).
            ERROR_CORPUS_EMPTY: 0,
            ERROR_INDEX_MISMATCH: 0,
            # Emitted by the process-sharded tier (repro.serving.sharded); the
            # thread-backed server counts it so responses relayed from a
            # sharded backend keep their accounting when they pass through.
            ERROR_SHARD_FAILED: 0,
        }
        # Running aggregates, not per-batch lists: a long-lived server must
        # not grow memory with uptime just to answer stats().
        self._batch_count = 0
        self._batch_size_sum = 0
        self._full_batch_count = 0
        self._batches_per_worker: dict[int, int] = {}
        self._padding_sum = 0.0
        self._queue_wait_sum = 0.0
        self._queue_wait_max = 0.0
        self._queue_wait_count = 0

    # -- lifecycle ---------------------------------------------------------------------
    async def start(self) -> None:
        """Spin up the worker pool (idempotent; implied by the first submit).

        A server is single-use: once :meth:`stop` has run, restarting would
        revive queues whose collectors are gone, so it raises instead.
        """
        if self._closed:
            raise ModelConfigError("Server cannot be restarted after stop(); create a new Server")
        if self._started:
            return
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.num_workers, thread_name_prefix="repro-serving-worker"
        )
        self._idle_workers = asyncio.Queue()
        for worker_id in range(self.config.num_workers):
            self._idle_workers.put_nowait(_Worker(worker_id))
        self._admit_engines(self._default)
        self._started = True

    async def join(self) -> None:
        """Wait until every accepted request has been answered."""
        while self._inflight or self._dispatch_tasks:
            futures = list(self._inflight.values()) + list(self._dispatch_tasks)
            await asyncio.gather(*futures, return_exceptions=True)

    async def stop(self) -> None:
        """Drain in-flight work, then shut the collectors and workers down.

        Requests submitted after ``stop`` begins are rejected with the
        ``server_stopped`` error.
        """
        self._closed = True
        await self.join()
        for collector in self._collectors.values():
            collector.cancel()
        for collector in self._collectors.values():
            try:
                await collector
            except asyncio.CancelledError:
                pass
        self._collectors.clear()
        self._queues.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._started = False

    async def __aenter__(self) -> "Server":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the deployment lifecycle --------------------------------------------------------
    def _admit_engines(self, deployment: _Deployment) -> None:
        """Spawn one engine set per worker shard for ``deployment``.

        The primary pipeline honours the server's ``precision`` override;
        explicitly deployed versions run at their own pipeline's settings
        (their manifests are the deployment-level precision knob).
        """
        precision = self.config.precision if deployment.is_default else None
        deployment.engines = [
            deployment.pipeline.spawn_engines(precision=precision)
            for _ in range(self.config.num_workers)
        ]
        tasks = set(deployment.engines[0])
        if not tasks:
            raise ModelConfigError(
                f"deployment {deployment.deployment_id!r} has no configured backends"
            )
        deployment.tasks = tasks

    def _require_deployment(self, deployment_id: str) -> _Deployment:
        deployment = self._deployments.get(deployment_id)
        if deployment is None:
            known = ", ".join(sorted(self._deployments))
            raise ModelConfigError(f"unknown deployment {deployment_id!r}; deployed: {known}")
        return deployment

    async def deploy(self, deployment_id: str, pipeline: Pipeline, manifest=None) -> None:
        """Admit a new model version; it receives no traffic until routed.

        ``deployment_id`` must be a fresh ``"name@version"`` identity;
        ``pipeline`` supplies the version's backends (typically built by
        :meth:`repro.deploy.ModelRegistry.build_pipeline`); ``manifest``, when
        given, is re-validated — fingerprint check included — before the
        version is admitted, and is echoed in ``stats()`` for provenance.
        Engines for every worker shard are spawned here, so a
        misconfiguration (e.g. int8 over unquantized weights) fails at deploy
        time, not under traffic.  Routing is a separate, atomic step
        (:meth:`set_routes` / :meth:`set_canary` / :meth:`hot_swap`).
        """
        if self._closed:
            raise ModelConfigError("cannot deploy on a stopped server")
        name, version = parse_ref(deployment_id)
        if version is None:
            raise ModelConfigError(
                f"deployment ids must be versioned ('name@version'), got {deployment_id!r}"
            )
        if deployment_id in self._deployments:
            raise ModelConfigError(f"deployment {deployment_id!r} is already deployed")
        if manifest is not None:
            manifest.validate()
            if manifest.id != deployment_id:
                raise ModelConfigError(
                    f"manifest identity {manifest.id!r} does not match deployment id {deployment_id!r}"
                )
            manifest.verify_checkpoint()
        if not self._started:
            await self.start()
        deployment = _Deployment(deployment_id, pipeline, manifest=manifest)
        self._admit_engines(deployment)
        if manifest is not None:
            unserved = sorted(set(manifest.tasks) - deployment.tasks)
            if unserved:
                raise ModelConfigError(
                    f"manifest {manifest.id} declares tasks the pipeline does not serve: "
                    f"{', '.join(unserved)}"
                )
        self._deployments[deployment_id] = deployment

    async def undeploy(self, deployment_id: str) -> None:
        """Retire a version: unroute it, drain its in-flight work, drop its engines.

        Zero-downtime by construction: the router flips first (nothing new
        lands on the version), requests already queued or running on it are
        answered normally, and only then are its collectors cancelled and its
        engines released.  The primary pipeline cannot be undeployed — it is
        the fallback for every unrouted task.
        """
        deployment = self._require_deployment(deployment_id)
        if deployment.is_default:
            raise ModelConfigError(
                "the primary pipeline deployment cannot be undeployed; route traffic "
                "to another version instead"
            )
        self._router = self._router.without(deployment_id)
        self._guards.pop(deployment_id, None)
        deployment.draining = True
        await self._drain(deployment)
        for key in [key for key in self._queues if key[1] == deployment_id]:
            collector = self._collectors.pop(key)
            collector.cancel()
            try:
                await collector
            except asyncio.CancelledError:
                pass
            del self._queues[key]
        del self._deployments[deployment_id]

    async def set_weights(self, deployment_id: str, pipeline: Pipeline) -> None:
        """Swap a deployed version's backends in place (same identity, new weights).

        Fresh engine sets are spawned from ``pipeline`` and installed
        atomically.  The version's ``revision`` counter bumps, which
        namespaces its response-cache keys — entries produced by the old
        weights are never replayed for post-swap traffic.  A request that
        was already queued when the swap landed may be answered by the new
        weights, but its output is never written back under the old
        revision's cache namespace, so neither revision's cache is poisoned
        in either direction.  The new backends must cover every task the old
        ones served, so existing routes stay valid.  For the primary
        deployment this swaps what the workers compute; the front-end
        pipeline (encoding, caches, postprocessing) is unchanged.
        """
        deployment = self._require_deployment(deployment_id)
        if deployment.draining:
            raise ModelConfigError(f"deployment {deployment_id!r} is draining")
        if not self._started:
            await self.start()
        replacement = _Deployment(deployment.deployment_id, pipeline, is_default=deployment.is_default)
        self._admit_engines(replacement)
        missing = sorted(deployment.tasks - replacement.tasks)
        if missing:
            raise ModelConfigError(
                f"new weights for {deployment_id!r} drop served tasks: {', '.join(missing)}"
            )
        deployment.pipeline = pipeline
        deployment.engines = replacement.engines
        deployment.tasks = replacement.tasks
        deployment.revision += 1

    def set_routes(self, task: str, weights: dict[str, float]) -> None:
        """Atomically install the weighted deployment split for ``task``.

        Weights are relative (``{"model@1": 0.9, "model@2": 0.1}`` is a 10%
        canary); every referenced deployment must be deployed, not draining,
        and serve ``task``.  The new routing table replaces the old one in a
        single reference flip — requests being routed concurrently see either
        the old table or the new one, never a mixture.
        """
        self._validate_route_task(task)
        for deployment_id in weights:
            self._validate_route_target(task, deployment_id)
        self._router = self._router.with_routes(task, weights)
        self._prune_guards()

    def clear_routes(self, task: str) -> None:
        """Remove ``task``'s explicit routes and shadow (traffic returns to the primary)."""
        self._router = self._router.without_task(task)
        self._prune_guards()

    def set_shadow(self, task: str, deployment_id: str, fraction: float) -> None:
        """Mirror ``fraction`` of ``task`` traffic to ``deployment_id``.

        Shadow requests are duplicates: they run on the candidate, their
        outputs are compared against the primary response, and agreement and
        latency deltas are recorded in ``stats()["shadow"]`` — the caller's
        response is never affected.  ``fraction <= 0`` clears the shadow.
        """
        if fraction <= 0:
            self._router = self._router.with_shadow(task, deployment_id, 0.0)
            self._prune_guards()
            return
        self._validate_route_task(task)
        self._validate_route_target(task, deployment_id)
        self._router = self._router.with_shadow(task, deployment_id, fraction)

    def set_canary(
        self,
        task: str,
        stable: str,
        canary: str,
        fraction: float,
        max_error_rate: float | None = None,
        min_requests: int = 20,
    ) -> None:
        """Split ``task`` between ``stable`` and a ``fraction`` canary.

        A convenience over :meth:`set_routes`: installs
        ``{stable: 1 - fraction, canary: fraction}``.  With
        ``max_error_rate`` set, a :class:`~repro.deploy.router.CanaryGuard`
        watches the canary's resolved requests and auto-reverts it (removed
        from every route, event recorded in ``stats()["rollbacks"]``) once
        its ``backend_error`` rate crosses the threshold after
        ``min_requests`` resolutions.  The guard counts from install time —
        requests the deployment served earlier (e.g. as a shadow target)
        never weigh against the canary — and is dropped automatically when a
        route change leaves the deployment unreferenced.
        """
        if not 0.0 < fraction < 1.0:
            raise ModelConfigError(f"canary fraction must be in (0, 1), got {fraction!r}")
        self.set_routes(task, {stable: 1.0 - fraction, canary: fraction})
        if max_error_rate is not None:
            counts = self._deployments[canary].counts
            self._guards[canary] = {
                "guard": CanaryGuard(
                    deployment=canary, max_error_rate=max_error_rate, min_requests=min_requests
                ),
                "completed": counts["completed"],
                "backend_errors": counts["backend_error"],
            }

    async def hot_swap(
        self,
        deployment_id: str,
        pipeline: Pipeline,
        replaces: str | None = None,
        tasks: tuple[str, ...] | None = None,
        manifest=None,
    ) -> float:
        """Deploy a version, flip its tasks to it, and retire the old version.

        The zero-downtime roll in one call: :meth:`deploy` admits the new
        engines while the old version keeps serving, :meth:`set_routes` flips
        each target task atomically, and ``replaces`` (when given) is drained
        and undeployed.  Requests in flight on the old version complete on
        it; requests routed after the flip land on the new one; nothing is
        dropped in between.  Returns the wall-clock seconds the whole swap
        took (the drain dominates).  Replacing :data:`DEFAULT_DEPLOYMENT`
        only unroutes it — the primary is the permanent fallback for
        unrouted tasks, so it is never drained (under sustained fallback
        traffic a drain would not terminate) or retired.
        """
        loop = asyncio.get_running_loop()
        began = loop.time()
        await self.deploy(deployment_id, pipeline, manifest=manifest)
        new = self._deployments[deployment_id]
        targets = tasks if tasks is not None else tuple(sorted(new.tasks & self._default.tasks))
        if not targets:
            raise ModelConfigError(
                f"deployment {deployment_id!r} shares no tasks with the primary pipeline"
            )
        for task in targets:  # validate everything before flipping anything
            self._validate_route_task(task)
            self._validate_route_target(task, deployment_id)
        for task in targets:
            self.set_routes(task, {deployment_id: 1.0})
        if replaces is not None and replaces != deployment_id:
            old = self._require_deployment(replaces)
            if not old.is_default:
                await self.undeploy(replaces)
        return loop.time() - began

    def _validate_route_task(self, task: str) -> None:
        if task not in SERVABLE_TASKS:
            raise ModelConfigError(
                f"unknown task {task!r}; servable tasks: {', '.join(SERVABLE_TASKS)}"
            )
        # The primary pipeline prepares and postprocesses every request, so a
        # task it cannot serve cannot be routed anywhere.
        self.pipeline.backend(task)

    def _validate_route_target(self, task: str, deployment_id: str) -> None:
        deployment = self._require_deployment(deployment_id)
        if deployment.draining:
            raise ModelConfigError(f"deployment {deployment_id!r} is draining and cannot be routed")
        if task not in deployment.tasks:
            raise ModelConfigError(
                f"deployment {deployment_id!r} does not serve task {task!r} "
                f"(serves: {', '.join(sorted(deployment.tasks))})"
            )

    async def _drain(self, deployment: _Deployment) -> None:
        """Wait until every request routed to ``deployment`` has resolved."""
        while deployment.pending > 0:
            await asyncio.sleep(0.001)

    # -- submission --------------------------------------------------------------------
    async def submit(
        self, request: Request, deadline: float | None = None, _on_text=None
    ) -> Response:
        """Serve one request; always returns a :class:`Response`, never raises.

        ``deadline`` is a per-request latency budget in seconds, measured
        from submission.  A request still queued when its deadline passes is
        rejected with the ``deadline_exceeded`` error at dispatch time (and
        immediately when ``deadline <= 0``, unless the response cache can
        answer without queueing — a deadline bounds waiting, and cache hits
        do not wait).  A request whose batch has already reached a worker
        runs to completion.  A coalesced duplicate shares the fate of the
        request it coalesced onto.

        Routing happens here, before the cache lookup: the request's cache
        identity hashes to a deployment (or ``Request.deployment`` pins one),
        and the response-cache key is namespaced with the deployment identity
        so versions never answer for each other.

        ``_on_text`` is the streaming hook :meth:`stream` threads through to
        the worker engines (called from worker threads with text deltas);
        cache hits and coalesced duplicates answer without it, which the
        stream's final reconciliation covers.
        """
        span = self._begin_request_span(request)
        if span is None:
            return await self._submit(request, deadline, _on_text)
        request = replace(request, trace=span.context.to_wire())
        try:
            response = await self._submit(request, deadline, _on_text)
        except BaseException:
            obs.TRACES.finish(span, status="error")
            raise
        obs.TRACES.finish(span, status="ok" if response.ok else "error")
        return response

    def _begin_request_span(self, request: Request) -> "obs.Span | None":
        # A bare request starts a trace here (head sampling happens at the
        # root); a request arriving with wire context — e.g. relayed by the
        # sharded gateway — continues the caller's trace instead.
        parent = SpanContext.from_wire(request.trace)
        attrs = {"task": request.task}
        if parent is None:
            return obs.TRACES.root(SPAN_SERVER_REQUEST, attrs=attrs)
        return obs.TRACES.begin(SPAN_SERVER_REQUEST, parent, attrs=attrs)

    async def _submit(
        self, request: Request, deadline: float | None, _on_text
    ) -> Response:
        self._counts["submitted"] += 1
        if self._closed:
            return self._account(error_response(request, ERROR_SHUTDOWN, "server is stopped"))
        if not self._started:
            await self.start()
        loop = asyncio.get_running_loop()

        try:
            self.pipeline.backend(request.task)  # fail fast on unconfigured tasks
            base = self.pipeline.prepare(request)
            deployment = self._route(request, base.key)
        except Exception as error:  # noqa: BLE001 - submit never raises, per contract
            return self._account(error_response(request, error_code_for(error), str(error)))
        # The routing decision changes what the workers compute, so it must
        # change the response-cache identity too: a canary (or a precision
        # override, or a new weight revision) must neither replay the
        # incumbent's cached outputs nor poison its cache with its own.
        prepared = base.namespaced(self._cache_suffix(deployment))
        shadow_target = self._shadow_target(request, base.key, deployment)

        cached = self.pipeline.cached_response(prepared)
        if cached is not None:
            self._counts["cache_hits"] += 1
            self._counts["completed"] += 1
            deployment.counts["cache_hits"] += 1
            cached.telemetry = _merge_telemetry(
                cached.telemetry, _telemetry(cache_hit=True, deployment=deployment.deployment_id)
            )
            if shadow_target is not None:
                settled = loop.create_future()
                settled.set_result(("ok", {"output": cached.output}))
                self._spawn_shadow(base, request.task, deployment, shadow_target, settled)
            return cached

        shared = self._inflight.get(prepared.key)
        if shared is not None:
            self._counts["coalesced"] += 1
            deployment.counts["coalesced"] += 1
            if shadow_target is not None:
                self._spawn_shadow(base, request.task, deployment, shadow_target, shared)
            return await self._await_result(prepared, shared, coalesced=True, deployment=deployment)

        if deadline is not None and deadline <= 0:
            return self._account(
                error_response(request, ERROR_DEADLINE, "deadline expired before the request was queued")
            )

        if _on_text is not None:
            prepared = replace(prepared, on_text=_on_text)
        job = self._enqueue(prepared, request.task, deployment, deadline)
        if job is None:
            return self._account(
                error_response(
                    request,
                    ERROR_QUEUE_FULL,
                    f"{request.task} queue for {deployment.deployment_id} is full "
                    f"({self.config.queue_size} pending requests)",
                )
            )
        if shadow_target is not None:
            self._spawn_shadow(base, request.task, deployment, shadow_target, job.future)
        return await self._await_owner(job)

    async def submit_all(self, requests: list[Request], deadline: float | None = None) -> list[Response]:
        """Submit ``requests`` concurrently; responses align with input order."""
        return list(await asyncio.gather(*(self.submit(request, deadline=deadline) for request in requests)))

    async def stream(
        self, request: Request, deadline: float | None = None
    ) -> AsyncIterator[ResponseChunk]:
        """Serve one request as a chunk stream (the async front-end of streaming).

        Yields :class:`~repro.serving.protocol.ResponseChunk` s: zero or more
        non-final chunks carrying text deltas as the backend decodes, then
        exactly one final chunk embedding the complete :class:`Response` —
        identical, telemetry aside, to what :meth:`submit` returns for the
        same request.  The stream never raises and never truncates: failures
        arrive as a terminal error chunk whose ``response.error`` is set.

        The concatenated deltas are reconciled against the final output
        before the final chunk: a missing tail (cache hits, coalesced
        duplicates and non-continuous backends answer atomically) is emitted
        as one remainder chunk, and a divergent draft (corpus QA streams its
        top-ranked context's answer while the merge is pending) is replaced
        by a ``seq == 0`` reset chunk carrying the authoritative text —
        :func:`~repro.serving.protocol.assemble_stream` over the yielded
        chunks therefore always reproduces ``Response.output`` bitwise.
        """
        queue: asyncio.Queue = asyncio.Queue()
        loop = asyncio.get_running_loop()

        def tap(delta: str) -> None:
            # Called on a worker thread between decode steps; hop to the loop.
            loop.call_soon_threadsafe(queue.put_nowait, delta)

        # The stream owns the request span (rather than delegating to
        # submit()) so every chunk can echo the trace context: a client
        # holding a non-final chunk knows which trace it belongs to.
        span = self._begin_request_span(request)
        if span is not None:
            request = replace(request, trace=span.context.to_wire())
        trace = request.trace
        submit = asyncio.ensure_future(self._submit(request, deadline, tap))
        emitted = ""
        seq = 0
        try:
            while True:
                getter: asyncio.Future = asyncio.ensure_future(queue.get())
                done, _ = await asyncio.wait({getter, submit}, return_when=asyncio.FIRST_COMPLETED)
                if getter in done:
                    delta = getter.result()
                    emitted += delta
                    yield ResponseChunk(
                        task=request.task, seq=seq, text=delta, request_id=request.request_id, trace=trace
                    )
                    seq += 1
                    continue
                getter.cancel()
                break
            response = await submit  # already done; submit() never raises
            if span is not None:
                obs.TRACES.finish(span, status="ok" if response.ok else "error")
                span = None
            # Taps enqueue via call_soon_threadsafe before the worker's future
            # resolves, so everything the decode produced is already here.
            while not queue.empty():
                delta = queue.get_nowait()
                emitted += delta
                yield ResponseChunk(
                    task=request.task, seq=seq, text=delta, request_id=request.request_id, trace=trace
                )
                seq += 1
            if response.ok:
                if response.output.startswith(emitted):
                    remainder = response.output[len(emitted):]
                    if remainder:
                        yield ResponseChunk(
                            task=request.task, seq=seq, text=remainder, request_id=request.request_id, trace=trace
                        )
                        seq += 1
                else:
                    # The stream drafted text the final answer replaced: reset
                    # assembly with one authoritative seq-0 chunk.
                    yield ResponseChunk(
                        task=request.task, seq=0, text=response.output, request_id=request.request_id, trace=trace
                    )
                    seq = 1
            yield ResponseChunk(
                task=request.task, seq=seq, final=True, response=response, request_id=request.request_id, trace=trace
            )
        finally:
            if span is not None:  # the consumer abandoned the stream mid-flight
                obs.TRACES.finish(span, status="error")
            if not submit.done():
                submit.cancel()

    # -- routing -----------------------------------------------------------------------
    def _route(self, request: Request, key: str) -> _Deployment:
        """The deployment serving ``request`` (pin > canary hash > primary)."""
        pinned = request.deployment
        if pinned is not None:
            deployment = self._require_deployment(pinned)
            if deployment.draining:
                raise ModelConfigError(f"deployment {pinned!r} is draining and not accepting requests")
            if request.task not in deployment.tasks:
                raise ModelConfigError(
                    f"deployment {pinned!r} does not serve task {request.task!r}"
                )
            return deployment
        target = self._router.route(request.task, key)
        if target is None:
            return self._default
        deployment = self._deployments.get(target)
        if deployment is None or deployment.draining:
            # A stale table observed mid-flip; the primary always answers.
            return self._default
        return deployment

    def _shadow_target(self, request: Request, key: str, primary: _Deployment) -> _Deployment | None:
        """The deployment to mirror this request to, if it is shadow-sampled.

        Pinned requests are never shadowed (the caller asked for one exact
        version), and a sample that would land on the primary itself, a
        missing version, a draining one, or one not serving the task is
        skipped rather than failed — shadow traffic is best-effort by design.
        """
        if request.deployment is not None:
            return None
        target = self._router.shadow(request.task, key)
        if target is None or target == primary.deployment_id:
            return None
        deployment = self._deployments.get(target)
        if deployment is None or deployment.draining or request.task not in deployment.tasks:
            return None
        return deployment

    def _cache_suffix(self, deployment: _Deployment) -> str:
        """The response-cache namespace for one routing decision.

        The primary deployment at revision 0 keeps the bare key (and the
        PR 4 ``precision`` namespacing), so a server without an active
        deployment layer shares cache entries with synchronous pipeline
        callers exactly as before.
        """
        parts = []
        if deployment.is_default and self.config.precision is not None:
            parts.append(f"precision={self.config.precision}")
        if not deployment.is_default:
            parts.append(f"deployment={deployment.deployment_id}")
        if deployment.revision:
            parts.append(f"rev={deployment.revision}")
        return "".join(f"|{part}" for part in parts)

    def _enqueue(
        self, prepared: _Prepared, task: str, deployment: _Deployment, deadline: float | None
    ) -> _Job | None:
        """Queue ``prepared`` on its (task, deployment) lane; ``None`` when full."""
        loop = asyncio.get_running_loop()
        queue = self._queue_for(task, deployment)
        now = loop.time()
        job = _Job(
            prepared,
            loop.create_future(),
            enqueued_at=now,
            deadline_at=None if deadline is None else now + deadline,
            deployment=deployment,
        )
        try:
            queue.put_nowait(job)
        except asyncio.QueueFull:
            return None
        deployment.pending += 1
        deployment.counts["routed"] += 1
        self._inflight[prepared.key] = job.future
        return job

    # -- shadow traffic ------------------------------------------------------------------
    def _shadow_bucket(self, primary_id: str, shadow_id: str) -> dict:
        key = f"{primary_id}->{shadow_id}"
        return self._shadow_stats.setdefault(
            key,
            {
                "samples": 0,
                "agreements": 0,
                "shadow_errors": 0,
                "primary_errors": 0,
                "dropped": 0,
                "latency_delta_ms_sum": 0.0,
            },
        )

    def _spawn_shadow(
        self,
        base: _Prepared,
        task: str,
        primary: _Deployment,
        shadow: _Deployment,
        primary_future: asyncio.Future,
    ) -> None:
        """Mirror one request to ``shadow`` and record the comparison.

        The duplicate goes through the normal queue/batch machinery under the
        shadow deployment's cache namespace (so it coalesces with — and warms
        the cache for — real traffic pinned to that version), but its future
        is consumed only by the recorder task: the caller's response is
        already decided by the primary path.  A full shadow queue drops the
        sample (counted) instead of back-pressuring live traffic.
        """
        loop = asyncio.get_running_loop()
        shadow.counts["shadow_requests"] += 1
        prepared = base.namespaced(self._cache_suffix(shadow))
        cached = self.pipeline.cached_response(prepared)
        if cached is not None:
            shadow_future: asyncio.Future = loop.create_future()
            shadow_future.set_result(("ok", {"output": cached.output}))
        else:
            shared = self._inflight.get(prepared.key)
            if shared is not None:
                shadow_future = shared
            else:
                job = self._enqueue(prepared, task, shadow, deadline=None)
                if job is None:
                    self._shadow_bucket(primary.deployment_id, shadow.deployment_id)["dropped"] += 1
                    return
                shadow_future = job.future
        recorder = loop.create_task(
            self._record_shadow(primary.deployment_id, shadow.deployment_id, primary_future, shadow_future)
        )
        self._dispatch_tasks.add(recorder)
        recorder.add_done_callback(self._dispatch_tasks.discard)

    async def _record_shadow(
        self,
        primary_id: str,
        shadow_id: str,
        primary_future: asyncio.Future,
        shadow_future: asyncio.Future,
    ) -> None:
        """Await both sides of one shadow pair and fold them into the stats."""

        async def resolved(future: asyncio.Future) -> tuple[tuple, float]:
            outcome = await future
            return outcome, asyncio.get_running_loop().time()

        (primary_outcome, primary_done), (shadow_outcome, shadow_done) = await asyncio.gather(
            resolved(primary_future), resolved(shadow_future)
        )
        bucket = self._shadow_bucket(primary_id, shadow_id)
        primary_output = primary_outcome[1]["output"] if primary_outcome[0] == "ok" else None
        shadow_output = shadow_outcome[1]["output"] if shadow_outcome[0] == "ok" else None
        if primary_output is None or shadow_output is None:
            # Attribute the failure to the side that actually failed: an
            # incumbent error must not read as candidate unhealthiness.
            if shadow_output is None:
                bucket["shadow_errors"] += 1
            if primary_output is None:
                bucket["primary_errors"] += 1
            return
        bucket["samples"] += 1
        bucket["agreements"] += primary_output == shadow_output
        bucket["latency_delta_ms_sum"] += (shadow_done - primary_done) * 1000.0

    # -- request completion ------------------------------------------------------------
    async def _await_owner(self, job: _Job) -> Response:
        outcome = await job.future
        if outcome[0] == "ok":
            self._counts["completed"] += 1
            response = self.pipeline.response_from(job.prepared, outcome[1], cached=False)
        else:
            response = self._account(error_response(job.prepared.request, outcome[1], outcome[2]))
        response.telemetry = _merge_telemetry(
            response.telemetry,
            _telemetry(
                queue_ms=round(job.queue_seconds * 1000.0, 3),
                batch_size=job.batch_size,
                worker=job.worker_id,
                deployment=job.deployment.deployment_id,
            ),
        )
        return response

    async def _await_result(
        self, prepared: _Prepared, shared: asyncio.Future, coalesced: bool, deployment: _Deployment
    ) -> Response:
        outcome = await shared
        if outcome[0] == "ok":
            self._counts["completed"] += 1
            response = self.pipeline.response_from(prepared, outcome[1], cached=True)
        else:
            response = self._account(error_response(prepared.request, outcome[1], outcome[2]))
        response.telemetry = _merge_telemetry(
            response.telemetry, _telemetry(coalesced=coalesced, deployment=deployment.deployment_id)
        )
        return response

    def _account(self, response: Response) -> Response:
        self._counts[response.error] += 1
        if response.telemetry is None:
            response.telemetry = _telemetry()
        return response

    # -- collection and dispatch -------------------------------------------------------
    def _queue_for(self, task: str, deployment: _Deployment) -> asyncio.Queue:
        key = (task, deployment.deployment_id)
        queue = self._queues.get(key)
        if queue is None:
            queue = asyncio.Queue(maxsize=self.config.queue_size)
            self._queues[key] = queue
            self._collectors[key] = asyncio.get_running_loop().create_task(
                self._collect(task, deployment, queue),
                name=f"repro-serving-collect-{task}-{deployment.deployment_id}",
            )
        return queue

    async def _collect(self, task: str, deployment: _Deployment, queue: asyncio.Queue) -> None:
        """Accumulate one (task, deployment) queue into batches under the flush policy."""
        window = self._window
        loop = asyncio.get_running_loop()
        while True:
            batch = [await queue.get()]
            opened_at = loop.time()
            while not window.is_full(len(batch)):
                # Drain whatever is already queued without timer machinery —
                # under bursty traffic this fills most batches for free.
                try:
                    batch.append(queue.get_nowait())
                    continue
                except asyncio.QueueEmpty:
                    pass
                remaining = window.remaining_wait(opened_at, loop.time())
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(queue.get(), remaining))
                except asyncio.TimeoutError:  # noqa: UP041 - not builtin TimeoutError on 3.10
                    break
            # Acquiring the worker before spawning the batch task caps the
            # number of in-flight batches at num_workers and lets the bounded
            # queue absorb (or reject) the overflow in the meantime.
            worker = await self._idle_workers.get()
            dispatch = loop.create_task(self._run_batch(task, deployment, batch, worker))
            self._dispatch_tasks.add(dispatch)
            dispatch.add_done_callback(self._dispatch_tasks.discard)

    async def _run_batch(
        self, task: str, deployment: _Deployment, jobs: list[_Job], worker: _Worker
    ) -> None:
        """Run one collected batch on ``worker``; resolve every job's future."""
        loop = asyncio.get_running_loop()
        try:
            now = loop.time()
            live: list[_Job] = []
            for job in jobs:
                if job.deadline_at is not None and now > job.deadline_at:
                    waited = round((now - job.enqueued_at) * 1000.0, 3)
                    self._resolve(job, ("error", ERROR_DEADLINE, f"request waited {waited}ms, past its deadline"))
                else:
                    live.append(job)
            if not live:
                return
            for job in live:
                job.queue_seconds = now - job.enqueued_at
                job.batch_size = len(live)
                job.worker_id = worker.worker_id
                self._queue_wait_sum += job.queue_seconds
                self._queue_wait_max = max(self._queue_wait_max, job.queue_seconds)
                self._queue_wait_count += 1
                _QUEUE_WAIT_MS.record(job.queue_seconds * 1000.0)
                obs.TRACES.record(
                    SPAN_SERVER_QUEUE,
                    job.prepared.trace,
                    job.queue_seconds,
                    attrs={"batch_size": len(live)},
                )
            _BATCH_SIZE.record(float(len(live)))
            self._batch_count += 1
            self._batch_size_sum += len(live)
            self._full_batch_count += len(live) >= self.config.max_batch
            self._batches_per_worker[worker.worker_id] = self._batches_per_worker.get(worker.worker_id, 0) + 1
            # Approximate: whitespace word counts of the encoded sources, not
            # tokenized lengths (backends tokenize later and may truncate).
            self._padding_sum += padding_efficiency([len(job.prepared.source.split()) for job in live])
            prepared = [job.prepared for job in live]
            execute_started = loop.time()
            try:
                outputs = await loop.run_in_executor(self._executor, worker.predict, deployment, task, prepared)
            except Exception as error:  # noqa: BLE001 - a backend bug must not kill the loop
                self._observe_execute(live, worker, loop.time() - execute_started, status="error")
                for job in live:
                    self._resolve(job, ("error", ERROR_BACKEND, str(error)))
                return
            self._observe_execute(live, worker, loop.time() - execute_started)
            if len(outputs) != len(live):
                for job in live:
                    self._resolve(
                        job,
                        ("error", ERROR_BACKEND, f"backend returned {len(outputs)} outputs for {len(live)} requests"),
                    )
                return
            # Postprocessing (parse/validate/spec) and cache writes happen
            # here, back on the event-loop thread, where they are serialized.
            for job, output in zip(live, outputs):
                try:
                    # A job that out-waited a set_weights() ran on the new
                    # engines but is keyed under the old revision's cache
                    # namespace; answer it, but never cache the mismatch.
                    payload = self.pipeline.complete(
                        job.prepared, output, cache=job.revision == deployment.revision
                    )
                except Exception as error:  # noqa: BLE001 - resolve, never hang the future
                    self._resolve(job, ("error", ERROR_BACKEND, f"postprocessing failed: {error}"))
                else:
                    self._resolve(job, ("ok", payload))
        finally:
            self._idle_workers.put_nowait(worker)

    def _observe_execute(
        self, live: list[_Job], worker: _Worker, execute_seconds: float, status: str = "ok"
    ) -> None:
        _EXECUTE_MS.record(execute_seconds * 1000.0)
        for job in live:
            obs.TRACES.record(
                SPAN_SERVER_EXECUTE,
                job.prepared.trace,
                execute_seconds,
                status=status,
                attrs={"worker": worker.worker_id, "batch_size": len(live)},
            )

    def _resolve(self, job: _Job, outcome: tuple) -> None:
        self._inflight.pop(job.prepared.key, None)
        if not job.future.done():
            job.future.set_result(outcome)
        deployment = job.deployment
        deployment.pending -= 1
        if outcome[0] == "ok":
            deployment.counts["completed"] += 1
            deployment.latency_ms_sum += (asyncio.get_running_loop().time() - job.enqueued_at) * 1000.0
        elif outcome[1] == ERROR_BACKEND:
            deployment.counts["backend_error"] += 1
            self._maybe_revert(deployment)
        elif outcome[1] == ERROR_DEADLINE:
            deployment.counts["deadline_exceeded"] += 1

    def _prune_guards(self) -> None:
        """Drop guards whose deployment no longer appears in any route or shadow."""
        referenced = set(self._router.deployments())
        for deployment_id in [did for did in self._guards if did not in referenced]:
            del self._guards[deployment_id]

    def _maybe_revert(self, deployment: _Deployment) -> None:
        """Auto-revert a guarded canary whose error rate breached its threshold."""
        state = self._guards.get(deployment.deployment_id)
        if state is None:
            return
        guard: CanaryGuard = state["guard"]
        # Judge only what the canary served since the guard was installed.
        completed = deployment.counts["completed"] - state["completed"]
        backend_errors = deployment.counts["backend_error"] - state["backend_errors"]
        if not guard.should_revert(completed, backend_errors):
            return
        self._router = self._router.without(deployment.deployment_id)
        self._guards.pop(deployment.deployment_id, None)
        finished = completed + backend_errors
        self._rollbacks.append(
            {
                "deployment": deployment.deployment_id,
                "error_rate": round(backend_errors / finished, 4),
                "completed": completed,
                "backend_errors": backend_errors,
                "max_error_rate": guard.max_error_rate,
            }
        )

    # -- observability -----------------------------------------------------------------
    def stats(self) -> dict:
        """Serving telemetry aggregated across every request, batch and deployment.

        Returns a detached snapshot: the caller can hold, mutate or diff it
        freely while the server keeps serving — no key aliases a live
        internal counter.  Every section is built fresh here (or by a
        ``stats()`` provider that builds fresh dicts), so only the two
        subtrees that alias long-lived state — manifest payloads and the
        rollback log — are copied; the snapshot cost stays proportional to
        the data returned rather than paying a second blanket ``deepcopy``
        pass over it (``tests/test_serving_server.py`` pins the allocation
        budget at 10k deployments).  ``version`` stamps the ``repro`` package
        that produced the snapshot; ``deployments`` / ``routes`` / ``shadow``
        / ``rollbacks`` expose the deployment layer (see ``docs/deploy.md``).
        """
        batches = self._batch_count
        mean_size = self._batch_size_sum / batches if batches else 0.0
        mean_padding = self._padding_sum / batches if batches else 1.0
        mean_wait = self._queue_wait_sum / self._queue_wait_count if self._queue_wait_count else 0.0
        deployments = {}
        for deployment_id, deployment in sorted(self._deployments.items()):
            completed = deployment.counts["completed"]
            deployments[deployment_id] = {
                "revision": deployment.revision,
                "default": deployment.is_default,
                "draining": deployment.draining,
                "tasks": sorted(deployment.tasks),
                "pending": deployment.pending,
                "requests": dict(deployment.counts),
                "mean_latency_ms": round(deployment.latency_ms_sum / completed, 3) if completed else 0.0,
                # as_dict() aliases the manifest's nested config dicts
                # (backends, metadata); deep-copy just this payload so the
                # snapshot cannot reach back into the live manifest.
                "manifest": copy.deepcopy(deployment.manifest.as_dict())
                if deployment.manifest is not None
                else None,
            }
        shadow = {}
        for pair, bucket in sorted(self._shadow_stats.items()):
            samples = bucket["samples"]
            shadow[pair] = {
                "samples": samples,
                "agreements": bucket["agreements"],
                "agreement_rate": round(bucket["agreements"] / samples, 4) if samples else 0.0,
                "mean_latency_delta_ms": round(bucket["latency_delta_ms_sum"] / samples, 3) if samples else 0.0,
                "shadow_errors": bucket["shadow_errors"],
                "primary_errors": bucket["primary_errors"],
                "dropped": bucket["dropped"],
            }
        snapshot = {
            "version": __version__,
            "requests": {
                "submitted": self._counts["submitted"],
                "completed": self._counts["completed"],
                "cache_hits": self._counts["cache_hits"],
                "coalesced": self._counts["coalesced"],
                "rejected": {
                    "queue_full": self._counts[ERROR_QUEUE_FULL],
                    "deadline_exceeded": self._counts[ERROR_DEADLINE],
                    "server_stopped": self._counts[ERROR_SHUTDOWN],
                },
                "failed": {
                    "invalid_request": self._counts[ERROR_INVALID_REQUEST],
                    "backend_error": self._counts[ERROR_BACKEND],
                    "shard_failed": self._counts[ERROR_SHARD_FAILED],
                    "corpus_empty": self._counts[ERROR_CORPUS_EMPTY],
                    "index_mismatch": self._counts[ERROR_INDEX_MISMATCH],
                },
            },
            "batches": {
                "count": batches,
                "mean_size": round(mean_size, 3),
                "full_batches": self._full_batch_count,
                "per_worker": dict(sorted(self._batches_per_worker.items())),
                "mean_padding_efficiency": round(mean_padding, 4),
            },
            "queue_wait_ms": {
                "mean": round(mean_wait * 1000.0, 3),
                "max": round(self._queue_wait_max * 1000.0, 3),
            },
            "deployments": deployments,
            "routes": self._router.describe(),
            "shadow": shadow,
            "rollbacks": [dict(entry) for entry in self._rollbacks],
            "pipeline": self.pipeline.stats(),
        }
        return snapshot

    def observability(self) -> dict:
        """The process-local metrics snapshot plus any sampled trace spans.

        ``metrics`` is :meth:`repro.obs.metrics.MetricsRegistry.snapshot` of
        the process-global registry (mergeable across processes, renderable
        with :func:`repro.obs.export.prometheus_text`); ``spans`` lists every
        span currently held by the trace ring buffer as plain dicts (feed
        them to :func:`repro.obs.export.render_trace` for an ASCII tree).
        Tracing is off by default — enable it with
        :func:`repro.obs.configure` before submitting traffic.
        """
        return {
            "metrics": obs.METRICS.snapshot(),
            "spans": [span.as_dict() for span in obs.TRACES.spans()],
        }


def serve_requests(
    pipeline: Pipeline,
    requests: list[Request],
    config: ServerConfig | None = None,
    deadline: float | None = None,
) -> tuple[list[Response], dict]:
    """Run ``requests`` through a fresh :class:`Server` on a private event loop.

    A synchronous convenience for scripts and benchmarks: starts a server,
    submits everything concurrently, drains it, and returns the
    position-aligned responses plus the server's final :meth:`Server.stats`.
    Must not be called from inside a running event loop.
    """

    async def _run() -> tuple[list[Response], dict]:
        server = Server(pipeline, config)
        async with server:
            responses = await server.submit_all(requests, deadline=deadline)
        return responses, server.stats()

    return asyncio.run(_run())
