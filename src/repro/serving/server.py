"""Asynchronous multi-worker serving front-end over the :class:`Pipeline`.

``Pipeline.serve`` takes a pre-collected burst: somebody else already did the
queueing.  This module is that somebody — a :class:`Server` accepts requests
one at a time (``await server.submit(request, deadline=...)``), absorbs them
into per-task bounded queues, and drains the queues with a time/size batch
collector: a batch is dispatched as soon as ``max_batch`` requests are
waiting *or* ``max_wait_ms`` has elapsed since its first request arrived
(:class:`~repro.serving.batching.BatchWindow`).  Dispatched batches run on a
pool of worker shards — threads that each own their own per-task
:class:`~repro.serving.pipeline._Engine` set over the pipeline's shared
backends — so encoder/decoder forward passes for different tasks (or
successive batches of one task) overlap while the event loop keeps accepting
traffic.

The division of labour keeps every output bitwise-identical to the
synchronous path: request encoding, cache lookups and postprocessing all run
on the event-loop thread through the pipeline's own ``prepare`` /
``cached_response`` / ``complete`` / ``response_from`` primitives (so the
LRU caches are never touched concurrently), and only the pure backend
forward pass (``predict_batch``) runs on worker threads.

Admission control is structured, never exceptional: a full queue, an expired
deadline, an unpreparable request or a backend exception each produce a
:class:`~repro.serving.protocol.Response` with ``error`` set — one poisoned
request can never take down the loop or anyone else's request.  Duplicate
requests already in flight coalesce onto the first occurrence's future, the
async analogue of ``Pipeline.serve``'s within-burst dedup.

Typical use::

    server = Server(pipeline, ServerConfig(max_batch=8, num_workers=2))
    async with server:
        responses = await server.submit_all(requests)
    print(server.stats())
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.batching import padding_efficiency
from repro.core.config import validate_precision
from repro.errors import ModelConfigError
from repro.serving.batching import BatchWindow
from repro.serving.pipeline import Pipeline, _Engine, _Prepared
from repro.serving.protocol import (
    ERROR_BACKEND,
    ERROR_DEADLINE,
    ERROR_INVALID_REQUEST,
    ERROR_QUEUE_FULL,
    ERROR_SHUTDOWN,
    Request,
    Response,
    error_response,
)


@dataclass
class ServerConfig:
    """Knobs for the async front-end.

    ``max_batch`` / ``max_wait_ms`` parameterize the flush policy: wait at
    most ``max_wait_ms`` milliseconds for a batch to fill to ``max_batch``.
    ``queue_size`` bounds each per-task queue — submissions beyond it are
    rejected with ``queue_full`` rather than buffered without limit.
    ``num_workers`` is the number of thread-backed worker shards; it also
    bounds how many batches are in flight at once, which back-pressures the
    collectors.  ``precision`` overrides the DataVisT5 inference precision of
    every worker shard's engines (``"float64"`` / ``"float32"`` / ``"int8"``;
    ``None`` keeps the pipeline's own setting) — the deployment-level knob
    for trading exact float64 reproduction for throughput, see
    ``docs/numerics.md``.
    """

    max_batch: int = 8
    max_wait_ms: float = 2.0
    queue_size: int = 64
    num_workers: int = 2
    precision: str | None = None

    def __post_init__(self):
        if self.queue_size <= 0:
            raise ModelConfigError("queue_size must be positive")
        if self.num_workers <= 0:
            raise ModelConfigError("num_workers must be positive")
        if self.precision is not None:
            validate_precision(self.precision)
        # BatchWindow validates max_batch / max_wait_ms at construction time;
        # the server derives its own window from the config when it starts.
        BatchWindow(max_batch=self.max_batch, max_wait_ms=self.max_wait_ms)


class _Worker:
    """One shard of the worker pool: an id plus its own per-task engines."""

    __slots__ = ("worker_id", "engines")

    def __init__(self, worker_id: int, engines: dict[str, _Engine]):
        self.worker_id = worker_id
        self.engines = engines

    def predict(self, task: str, prepared: list[_Prepared]) -> list[str]:
        engine = self.engines.get(task)
        if engine is None:
            raise ModelConfigError(f"no backend configured for task {task!r}")
        return engine.predict_batch(prepared)


def _telemetry(
    cache_hit: bool = False,
    coalesced: bool = False,
    queue_ms: float = 0.0,
    batch_size: int | None = None,
    worker: int | None = None,
) -> dict:
    """The uniform per-response telemetry dict — every key always present.

    ``batch_size`` and ``worker`` stay ``None`` for responses that never
    reached a worker (cache hits, coalesced duplicates, rejections).
    """
    return {
        "cache_hit": cache_hit,
        "coalesced": coalesced,
        "queue_ms": queue_ms,
        "batch_size": batch_size,
        "worker": worker,
    }


class _Job:
    """One queued request: its prepared form plus scheduling metadata."""

    __slots__ = ("prepared", "future", "enqueued_at", "deadline_at", "batch_size", "worker_id", "queue_seconds")

    def __init__(self, prepared: _Prepared, future: asyncio.Future, enqueued_at: float, deadline_at: float | None):
        self.prepared = prepared
        self.future = future
        self.enqueued_at = enqueued_at
        self.deadline_at = deadline_at
        self.batch_size: int | None = None
        self.worker_id: int | None = None
        self.queue_seconds: float = 0.0


class Server:
    """Accepts concurrent requests and serves them through batched workers.

    One :class:`Server` wraps one :class:`Pipeline`.  All coroutine methods
    must run on a single event loop; the heavy lifting (backend forward
    passes) is pushed to ``num_workers`` threads.  The server starts lazily
    on the first :meth:`submit`, or eagerly via ``async with server:`` /
    :meth:`start`.
    """

    def __init__(self, pipeline: Pipeline, config: ServerConfig | None = None):
        self.pipeline = pipeline
        self.config = config or ServerConfig()
        if self.config.precision is not None:
            # Build (and discard) one engine set now so a precision override
            # the backends cannot satisfy — int8 over unquantized weights —
            # fails here, at construction, not per request under traffic.
            pipeline.spawn_engines(precision=self.config.precision)
        self._window = BatchWindow(max_batch=self.config.max_batch, max_wait_ms=self.config.max_wait_ms)
        self._queues: dict[str, asyncio.Queue] = {}
        self._collectors: dict[str, asyncio.Task] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._idle_workers: asyncio.Queue | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._started = False
        self._closed = False
        self._counts = {
            "submitted": 0,
            "completed": 0,
            "cache_hits": 0,
            "coalesced": 0,
            ERROR_QUEUE_FULL: 0,
            ERROR_DEADLINE: 0,
            ERROR_INVALID_REQUEST: 0,
            ERROR_BACKEND: 0,
            ERROR_SHUTDOWN: 0,
        }
        # Running aggregates, not per-batch lists: a long-lived server must
        # not grow memory with uptime just to answer stats().
        self._batch_count = 0
        self._batch_size_sum = 0
        self._full_batch_count = 0
        self._batches_per_worker: dict[int, int] = {}
        self._padding_sum = 0.0
        self._queue_wait_sum = 0.0
        self._queue_wait_max = 0.0
        self._queue_wait_count = 0

    # -- lifecycle ---------------------------------------------------------------------
    async def start(self) -> None:
        """Spin up the worker pool (idempotent; implied by the first submit).

        A server is single-use: once :meth:`stop` has run, restarting would
        revive queues whose collectors are gone, so it raises instead.
        """
        if self._closed:
            raise ModelConfigError("Server cannot be restarted after stop(); create a new Server")
        if self._started:
            return
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.num_workers, thread_name_prefix="repro-serving-worker"
        )
        self._idle_workers = asyncio.Queue()
        for worker_id in range(self.config.num_workers):
            self._idle_workers.put_nowait(
                _Worker(worker_id, self.pipeline.spawn_engines(precision=self.config.precision))
            )
        self._started = True

    async def join(self) -> None:
        """Wait until every accepted request has been answered."""
        while self._inflight or self._dispatch_tasks:
            futures = list(self._inflight.values()) + list(self._dispatch_tasks)
            await asyncio.gather(*futures, return_exceptions=True)

    async def stop(self) -> None:
        """Drain in-flight work, then shut the collectors and workers down.

        Requests submitted after ``stop`` begins are rejected with the
        ``server_stopped`` error.
        """
        self._closed = True
        await self.join()
        for collector in self._collectors.values():
            collector.cancel()
        for collector in self._collectors.values():
            try:
                await collector
            except asyncio.CancelledError:
                pass
        self._collectors.clear()
        self._queues.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._started = False

    async def __aenter__(self) -> "Server":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- submission --------------------------------------------------------------------
    async def submit(self, request: Request, deadline: float | None = None) -> Response:
        """Serve one request; always returns a :class:`Response`, never raises.

        ``deadline`` is a per-request latency budget in seconds, measured
        from submission.  A request still queued when its deadline passes is
        rejected with the ``deadline_exceeded`` error at dispatch time (and
        immediately when ``deadline <= 0``, unless the response cache can
        answer without queueing — a deadline bounds waiting, and cache hits
        do not wait).  A request whose batch has already reached a worker
        runs to completion.  A coalesced duplicate shares the fate of the
        request it coalesced onto.
        """
        self._counts["submitted"] += 1
        if self._closed:
            return self._account(error_response(request, ERROR_SHUTDOWN, "server is stopped"))
        if not self._started:
            await self.start()
        loop = asyncio.get_running_loop()

        try:
            self.pipeline.backend(request.task)  # fail fast on unconfigured tasks
            prepared = self.pipeline.prepare(request)
        except Exception as error:  # noqa: BLE001 - submit never raises, per contract
            return self._account(error_response(request, ERROR_INVALID_REQUEST, str(error)))
        if self.config.precision is not None:
            # The override changes what the workers compute, so it must change
            # the response-cache identity too: a float32 server sharing a
            # pipeline with float64 callers must neither replay their cached
            # outputs nor poison their cache with reduced-precision ones.
            prepared.key = f"{prepared.key}|precision={self.config.precision}"

        cached = self.pipeline.cached_response(prepared)
        if cached is not None:
            self._counts["cache_hits"] += 1
            self._counts["completed"] += 1
            cached.telemetry = _telemetry(cache_hit=True)
            return cached

        shared = self._inflight.get(prepared.key)
        if shared is not None:
            self._counts["coalesced"] += 1
            return await self._await_result(prepared, shared, coalesced=True)

        if deadline is not None and deadline <= 0:
            return self._account(
                error_response(request, ERROR_DEADLINE, "deadline expired before the request was queued")
            )

        queue = self._queue_for(request.task)
        now = loop.time()
        job = _Job(
            prepared,
            loop.create_future(),
            enqueued_at=now,
            deadline_at=None if deadline is None else now + deadline,
        )
        try:
            queue.put_nowait(job)
        except asyncio.QueueFull:
            return self._account(
                error_response(
                    request,
                    ERROR_QUEUE_FULL,
                    f"{request.task} queue is full ({self.config.queue_size} pending requests)",
                )
            )
        self._inflight[prepared.key] = job.future
        return await self._await_owner(job)

    async def submit_all(self, requests: list[Request], deadline: float | None = None) -> list[Response]:
        """Submit ``requests`` concurrently; responses align with input order."""
        return list(await asyncio.gather(*(self.submit(request, deadline=deadline) for request in requests)))

    # -- request completion ------------------------------------------------------------
    async def _await_owner(self, job: _Job) -> Response:
        outcome = await job.future
        if outcome[0] == "ok":
            self._counts["completed"] += 1
            response = self.pipeline.response_from(job.prepared, outcome[1], cached=False)
        else:
            response = self._account(error_response(job.prepared.request, outcome[1], outcome[2]))
        response.telemetry = _telemetry(
            queue_ms=round(job.queue_seconds * 1000.0, 3),
            batch_size=job.batch_size,
            worker=job.worker_id,
        )
        return response

    async def _await_result(self, prepared: _Prepared, shared: asyncio.Future, coalesced: bool) -> Response:
        outcome = await shared
        if outcome[0] == "ok":
            self._counts["completed"] += 1
            response = self.pipeline.response_from(prepared, outcome[1], cached=True)
        else:
            response = self._account(error_response(prepared.request, outcome[1], outcome[2]))
        response.telemetry = _telemetry(coalesced=coalesced)
        return response

    def _account(self, response: Response) -> Response:
        self._counts[response.error] += 1
        if response.telemetry is None:
            response.telemetry = _telemetry()
        return response

    # -- collection and dispatch -------------------------------------------------------
    def _queue_for(self, task: str) -> asyncio.Queue:
        queue = self._queues.get(task)
        if queue is None:
            queue = asyncio.Queue(maxsize=self.config.queue_size)
            self._queues[task] = queue
            self._collectors[task] = asyncio.get_running_loop().create_task(
                self._collect(task), name=f"repro-serving-collect-{task}"
            )
        return queue

    async def _collect(self, task: str) -> None:
        """Accumulate one task's queue into batches under the flush policy."""
        queue = self._queues[task]
        window = self._window
        loop = asyncio.get_running_loop()
        while True:
            batch = [await queue.get()]
            opened_at = loop.time()
            while not window.is_full(len(batch)):
                # Drain whatever is already queued without timer machinery —
                # under bursty traffic this fills most batches for free.
                try:
                    batch.append(queue.get_nowait())
                    continue
                except asyncio.QueueEmpty:
                    pass
                remaining = window.remaining_wait(opened_at, loop.time())
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(queue.get(), remaining))
                except asyncio.TimeoutError:  # noqa: UP041 - not builtin TimeoutError on 3.10
                    break
            # Acquiring the worker before spawning the batch task caps the
            # number of in-flight batches at num_workers and lets the bounded
            # queue absorb (or reject) the overflow in the meantime.
            worker = await self._idle_workers.get()
            dispatch = loop.create_task(self._run_batch(task, batch, worker))
            self._dispatch_tasks.add(dispatch)
            dispatch.add_done_callback(self._dispatch_tasks.discard)

    async def _run_batch(self, task: str, jobs: list[_Job], worker: _Worker) -> None:
        """Run one collected batch on ``worker``; resolve every job's future."""
        loop = asyncio.get_running_loop()
        try:
            now = loop.time()
            live: list[_Job] = []
            for job in jobs:
                if job.deadline_at is not None and now > job.deadline_at:
                    waited = round((now - job.enqueued_at) * 1000.0, 3)
                    self._resolve(job, ("error", ERROR_DEADLINE, f"request waited {waited}ms, past its deadline"))
                else:
                    live.append(job)
            if not live:
                return
            for job in live:
                job.queue_seconds = now - job.enqueued_at
                job.batch_size = len(live)
                job.worker_id = worker.worker_id
                self._queue_wait_sum += job.queue_seconds
                self._queue_wait_max = max(self._queue_wait_max, job.queue_seconds)
                self._queue_wait_count += 1
            self._batch_count += 1
            self._batch_size_sum += len(live)
            self._full_batch_count += len(live) >= self.config.max_batch
            self._batches_per_worker[worker.worker_id] = self._batches_per_worker.get(worker.worker_id, 0) + 1
            # Approximate: whitespace word counts of the encoded sources, not
            # tokenized lengths (backends tokenize later and may truncate).
            self._padding_sum += padding_efficiency([len(job.prepared.source.split()) for job in live])
            prepared = [job.prepared for job in live]
            try:
                outputs = await loop.run_in_executor(self._executor, worker.predict, task, prepared)
            except Exception as error:  # noqa: BLE001 - a backend bug must not kill the loop
                for job in live:
                    self._resolve(job, ("error", ERROR_BACKEND, str(error)))
                return
            if len(outputs) != len(live):
                for job in live:
                    self._resolve(
                        job,
                        ("error", ERROR_BACKEND, f"backend returned {len(outputs)} outputs for {len(live)} requests"),
                    )
                return
            # Postprocessing (parse/validate/spec) and cache writes happen
            # here, back on the event-loop thread, where they are serialized.
            for job, output in zip(live, outputs):
                try:
                    payload = self.pipeline.complete(job.prepared, output)
                except Exception as error:  # noqa: BLE001 - resolve, never hang the future
                    self._resolve(job, ("error", ERROR_BACKEND, f"postprocessing failed: {error}"))
                else:
                    self._resolve(job, ("ok", payload))
        finally:
            self._idle_workers.put_nowait(worker)

    def _resolve(self, job: _Job, outcome: tuple) -> None:
        self._inflight.pop(job.prepared.key, None)
        if not job.future.done():
            job.future.set_result(outcome)

    # -- observability -----------------------------------------------------------------
    def stats(self) -> dict:
        """Serving telemetry aggregated across every request and batch."""
        batches = self._batch_count
        mean_size = self._batch_size_sum / batches if batches else 0.0
        mean_padding = self._padding_sum / batches if batches else 1.0
        mean_wait = self._queue_wait_sum / self._queue_wait_count if self._queue_wait_count else 0.0
        return {
            "requests": {
                "submitted": self._counts["submitted"],
                "completed": self._counts["completed"],
                "cache_hits": self._counts["cache_hits"],
                "coalesced": self._counts["coalesced"],
                "rejected": {
                    "queue_full": self._counts[ERROR_QUEUE_FULL],
                    "deadline_exceeded": self._counts[ERROR_DEADLINE],
                    "server_stopped": self._counts[ERROR_SHUTDOWN],
                },
                "failed": {
                    "invalid_request": self._counts[ERROR_INVALID_REQUEST],
                    "backend_error": self._counts[ERROR_BACKEND],
                },
            },
            "batches": {
                "count": batches,
                "mean_size": round(mean_size, 3),
                "full_batches": self._full_batch_count,
                "per_worker": dict(sorted(self._batches_per_worker.items())),
                "mean_padding_efficiency": round(mean_padding, 4),
            },
            "queue_wait_ms": {
                "mean": round(mean_wait * 1000.0, 3),
                "max": round(self._queue_wait_max * 1000.0, 3),
            },
            "pipeline": self.pipeline.stats(),
        }


def serve_requests(
    pipeline: Pipeline,
    requests: list[Request],
    config: ServerConfig | None = None,
    deadline: float | None = None,
) -> tuple[list[Response], dict]:
    """Run ``requests`` through a fresh :class:`Server` on a private event loop.

    A synchronous convenience for scripts and benchmarks: starts a server,
    submits everything concurrently, drains it, and returns the
    position-aligned responses plus the server's final :meth:`Server.stats`.
    Must not be called from inside a running event loop.
    """

    async def _run() -> tuple[list[Response], dict]:
        server = Server(pipeline, config)
        async with server:
            responses = await server.submit_all(requests, deadline=deadline)
        return responses, server.stats()

    return asyncio.run(_run())
