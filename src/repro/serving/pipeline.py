"""The serving facade: one entry point for all three interactive tasks.

A :class:`Pipeline` owns everything a request needs on its way through the
system — schema filtration and sequence encoding, the per-task backend
(a trained :class:`~repro.core.model.DataVisT5` or any registry baseline),
micro-batching, VQL parsing/validation of predictions, Vega-Lite spec
construction — plus the LRU caches that make repeated traffic cheap:

* ``encode``   — (task, inputs) -> encoded source sequence (+ filtered schema);
* ``ast``      — DV-query text -> parsed :class:`DVQuery`;
* ``spec``     — standardized query text -> Vega-Lite spec dict;
* ``response`` — (task, normalized source) -> generated output text;
* ``render``   — chart fingerprint -> ASCII rendering (see
  :func:`repro.charts.render.render_ascii_chart`).

Single requests go through :meth:`text_to_vis` / :meth:`vis_to_text` /
:meth:`fevisqa`; concurrent bursts go through :meth:`serve`, which groups
cache misses per task and pushes them through a :class:`MicroBatcher` so
neural backends amortize forward passes.  Batched and sequential serving
produce identical outputs (padding is fully masked); the tests assert this
bitwise.

Construction::

    # share one multi-task DataVisT5 across all three tasks
    pipeline = Pipeline.from_model(trained_model)

    # or mix-and-match registry baselines from a plain config dict
    pipeline = Pipeline.from_config({
        "text_to_vis": {"type": "retrieval", "revise": True},
        "vis_to_text": {"type": "heuristics"},
        "fevisqa": {"type": "heuristics"},
        "pipeline": {"max_batch_size": 16, "response_cache_size": 4096},
    })
"""

from __future__ import annotations

import copy
import hashlib
import time

from dataclasses import dataclass, replace

from repro import obs
from repro.obs.names import (
    METRIC_PIPELINE_MERGE_MS,
    METRIC_PIPELINE_RETRIEVE_MS,
    SPAN_PIPELINE_GENERATE,
    SPAN_PIPELINE_MERGE,
    SPAN_PIPELINE_RETRIEVE,
)
from repro.obs.trace import SpanContext
from repro.baselines.base import TextGenerationBaseline, TextToVisBaseline
from repro.charts.render import chart_fingerprint, render_ascii_chart
from repro.charts.vegalite import to_vega_lite
from repro.core.config import validate_precision
from repro.core.model import DataVisT5
from repro.database.schema import DatabaseSchema
from repro.datasets.corpus import CorpusIndex
from repro.encoding.schema_filtration import filter_schema
from repro.encoding.sequences import (
    fevisqa_input,
    strip_modality_tags,
    text_to_vis_input,
    vis_to_text_input,
)
from repro.errors import CorpusEmptyError, IndexMismatchError, ModelConfigError, ReproError
from repro.serving.batching import MicroBatcher
from repro.serving.cache import LRUCache, normalize_key
from repro.serving.continuous import continuous_loop_stats, continuous_predict_batch
from repro.serving.protocol import (
    ERROR_BACKEND,
    ERROR_CORPUS_EMPTY,
    ERROR_INDEX_MISMATCH,
    ERROR_INVALID_REQUEST,
    MODEL_TASKS,
    Request,
    Response,
    error_response,
)
from repro.serving.registry import build_generation, build_text_to_vis
from repro.vql.ast import DVQuery
from repro.vql.parser import parse_dv_query
from repro.vql.standardize import standardize_dv_query
from repro.vql.validation import is_query_compatible

# Stage-latency histograms, fetched once so hot paths never touch the
# registry lock (docs/observability.md).
_RETRIEVE_MS = obs.METRICS.histogram(METRIC_PIPELINE_RETRIEVE_MS)
_MERGE_MS = obs.METRICS.histogram(METRIC_PIPELINE_MERGE_MS)


@dataclass
class PipelineConfig:
    """Serving knobs: batch bound, cache capacities, optional stages.

    ``max_batch_size`` bounds every micro-batch; the ``*_cache_size`` knobs
    size the individual LRU caches (0 disables one); ``filter_schemas``
    toggles n-gram schema filtration before encoding text-to-vis inputs;
    ``validate_predictions`` toggles type-checking predicted queries against
    the request schema; ``attach_specs`` toggles Vega-Lite spec construction
    on text-to-vis responses; ``use_cache`` selects KV-cached incremental
    decoding on DataVisT5 backends (``False`` falls back to the naive
    reference decoder — same outputs, for debugging and equivalence checks);
    ``precision`` selects their inference precision (``None`` defers to the
    model's own ``config.precision``; ``"float32"`` / ``"int8"`` trade exact
    float64 reproduction for throughput — see ``docs/numerics.md`` — and
    ``"int8"`` requires the backend model to be quantized already).
    ``continuous`` routes greedy DataVisT5 decoding through the token-level
    continuous scheduler (:mod:`repro.serving.continuous`) instead of
    lock-step batch decoding — same outputs bitwise, but sequences join and
    leave the live batch per step, so short requests stop paying for long
    batch-mates; it requires ``use_cache`` and does not affect rule-based
    backends, which keep the micro-batcher.
    Neither knob overrides baseline backends: neural baselines own the
    equivalent constructor knobs configured where the baseline is built
    (e.g. ``{"type": "neural", "precision": "float32"}`` in a registry
    spec), and the pipeline never mutates a backend it was handed.
    ``corpus_top_k`` is how many corpus documents the ``corpus_qa`` task
    retrieves (and answers over) per question.
    """

    max_batch_size: int = 8
    encode_cache_size: int = 512
    ast_cache_size: int = 256
    spec_cache_size: int = 256
    response_cache_size: int = 1024
    render_cache_size: int = 64
    filter_schemas: bool = True
    validate_predictions: bool = True
    attach_specs: bool = True
    use_cache: bool = True
    continuous: bool = True
    precision: str | None = None
    corpus_top_k: int = 3

    def __post_init__(self):
        if self.precision is not None:
            validate_precision(self.precision)
        if not isinstance(self.corpus_top_k, int) or isinstance(self.corpus_top_k, bool) or self.corpus_top_k < 1:
            raise ModelConfigError(f"corpus_top_k must be a positive int, got {self.corpus_top_k!r}")


@dataclass
class _Prepared:
    """A request after encoding: the backend input plus its cache identity.

    ``on_text`` is an optional streaming tap — ``on_text(delta)`` receives
    incremental tag-stripped output text while the backend decodes (DataVisT5
    continuous path only; other backends answer atomically and the stream's
    final reconciliation covers them).  ``stages`` is the mutable per-stage
    artifact dict multi-stage tasks (``corpus_qa``) fill as they run; it ends
    up under ``Response.telemetry["stages"]``.  ``trace`` is the request's
    sampled span context (or ``None``): engines parent their stage spans to
    it so one trace follows the request into the decode loop.
    """

    request: Request
    source: str
    key: str
    schema: DatabaseSchema | None = None
    chart_query: DVQuery | None = None
    on_text: object | None = None
    stages: dict | None = None
    trace: SpanContext | None = None

    def namespaced(self, suffix: str) -> "_Prepared":
        """A copy whose cache identity carries ``suffix`` (e.g. a deployment id).

        The async server derives one namespaced copy per routing decision —
        precision overrides, deployment identity, weight revisions — so
        different versions of a backend never replay or poison each other's
        response-cache entries, while the unsuffixed base key stays stable
        for routing hashes.  An empty suffix returns ``self`` unchanged.
        """
        if not suffix:
            return self
        return replace(self, key=f"{self.key}{suffix}")


class _Engine:
    """Uniform ``predict_batch(prepared) -> list[str]`` over heterogeneous backends.

    ``use_cache`` and ``precision`` apply to :class:`DataVisT5` backends only
    (baselines own their equivalent constructor knobs); ``precision=None``
    defers to the model's configured default.  ``precision="int8"`` over an
    unquantized DataVisT5 is a deployment misconfiguration and is rejected
    here, at construction, rather than surfacing as per-request failures
    once traffic arrives.  ``continuous`` (with ``use_cache``) sends
    DataVisT5 greedy decoding through the shared per-model
    :class:`~repro.serving.continuous.ContinuousDecodeLoop` — every engine
    cloned over the same backend model joins the same live token-level
    batch, whichever worker thread it belongs to.
    """

    def __init__(
        self,
        backend,
        task: str,
        use_cache: bool = True,
        precision: str | None = None,
        continuous: bool = True,
    ):
        if precision == "int8" and isinstance(backend, DataVisT5) and not backend.quantized:
            raise ModelConfigError(
                f"precision='int8' for task {task!r} requires a quantized backend model; "
                "call quantize_int8() (or load an int8 checkpoint) before serving"
            )
        self.backend = backend
        self.task = task
        self.use_cache = use_cache
        self.precision = precision
        self.continuous = continuous

    def predict_batch(self, prepared: list[_Prepared]) -> list[str]:
        """Run the backend over already-prepared requests, in order.

        Items carrying an ``on_text`` tap stream tag-stripped text deltas
        while they decode (continuous DataVisT5 path only — the lock-step and
        baseline paths answer atomically and rely on the stream's final
        reconciliation instead).
        """
        # One pipeline.generate span per traced item, opened before the
        # backend runs so decode-step spans can parent to it; untraced items
        # cost one None check.
        generate_spans = [
            obs.TRACES.begin(
                SPAN_PIPELINE_GENERATE,
                item.trace,
                attrs={"task": self.task, "batch_size": len(prepared)},
            )
            for item in prepared
        ]
        try:
            outputs = self._predict_batch(prepared, generate_spans)
        except BaseException:
            for span in generate_spans:
                obs.TRACES.finish(span, status="error")
            raise
        for span in generate_spans:
            obs.TRACES.finish(span)
        return outputs

    def _predict_batch(self, prepared: list[_Prepared], generate_spans: list) -> list[str]:
        backend = self.backend
        if isinstance(backend, DataVisT5):
            if self.continuous and self.use_cache:
                on_text = None
                if any(item.on_text is not None for item in prepared):
                    def on_text(index: int, delta: str, _items=prepared) -> None:
                        tap = _items[index].on_text
                        if tap is not None:
                            tap(delta)
                outputs = continuous_predict_batch(
                    backend,
                    [item.source for item in prepared],
                    precision=self.precision,
                    on_text=on_text,
                    trace_parents=[span.context if span is not None else None for span in generate_spans],
                )
            else:
                outputs = backend.predict_batch(
                    [item.source for item in prepared], use_cache=self.use_cache, precision=self.precision
                )
            return [strip_modality_tags(output) for output in outputs]
        if isinstance(backend, TextToVisBaseline):
            questions = [item.request.question for item in prepared]
            schemas = []
            for item in prepared:
                if not isinstance(item.schema, DatabaseSchema):
                    raise ModelConfigError(
                        f"{type(backend).__name__} needs a DatabaseSchema on text_to_vis requests"
                    )
                schemas.append(item.schema)
            return [strip_modality_tags(output) for output in backend.predict_many(questions, schemas)]
        if isinstance(backend, TextGenerationBaseline):
            outputs = backend.predict_many([item.source for item in prepared])
            return [strip_modality_tags(output) for output in outputs]
        raise ModelConfigError(f"unsupported backend for {self.task}: {type(backend).__name__}")


class _CorpusQAEngine:
    """The two-stage ``corpus_qa`` engine: retrieve → answer per context → merge.

    Wraps the pipeline's ``fevisqa`` :class:`_Engine` and a
    :class:`~repro.datasets.corpus.CorpusIndex`.  Retrieval already happened
    at prepare time (it is deterministic and belongs in the cache identity);
    this engine re-resolves the retrieved ``doc_id`` s against its index,
    asks the FeVisQA backend the same question once per retrieved context in
    one sub-batch, then judge-style merges the per-context answers by
    normalized majority vote (ties broken by retrieval rank, so the
    best-retrieved context wins a split decision).  Every stage writes its
    artifact into the item's ``stages`` dict, which the pipeline surfaces as
    ``Response.telemetry["stages"]``.

    A streaming tap on the item is forwarded to the *top-ranked* context's
    sub-request only — the stream drafts the best context's answer token by
    token, and the final chunk's reset/reconciliation replaces the draft
    whenever the merge picks a different answer.
    """

    def __init__(self, fevisqa_engine: _Engine, index: CorpusIndex, top_k: int):
        self.fevisqa = fevisqa_engine
        self.index = index
        self.top_k = top_k
        self.task = "corpus_qa"

    @property
    def backend(self):
        """The wrapped FeVisQA backend (what actually generates answers)."""
        return self.fevisqa.backend

    def predict_batch(self, prepared: list[_Prepared]) -> list[str]:
        """Answer each item over its retrieved contexts and merge, in order."""
        sub_items: list[_Prepared] = []
        spans: list[tuple[_Prepared, list, int, int]] = []
        for item in prepared:
            docs = [self.index.get(entry["doc_id"]) for entry in item.stages["retrieval"]["documents"]]
            start = len(sub_items)
            for rank, document in enumerate(docs):
                source = fevisqa_input(
                    item.request.question,
                    query=document.chart,
                    schema=document.schema,
                    table=document.table,
                    strict=False,
                )
                sub_items.append(
                    _Prepared(
                        request=item.request,
                        source=source,
                        key=f"{item.key}\x1fctx{rank}",
                        on_text=item.on_text if rank == 0 else None,
                        trace=item.trace,
                    )
                )
            spans.append((item, docs, start, len(docs)))
        answers = self.fevisqa.predict_batch(sub_items)
        outputs: list[str] = []
        for item, docs, start, count in spans:
            per_context = answers[start : start + count]
            merge_started = time.perf_counter()
            merged, votes = _merge_answers(per_context)
            merge_seconds = time.perf_counter() - merge_started
            _MERGE_MS.record(merge_seconds * 1000.0)
            obs.TRACES.record(
                SPAN_PIPELINE_MERGE, item.trace, merge_seconds, attrs={"contexts": count}
            )
            item.stages["contexts"] = [
                {"doc_id": document.doc_id, "answer": answer}
                for document, answer in zip(docs, per_context)
            ]
            item.stages["merge"] = {"answer": merged, "votes": votes, "strategy": "majority"}
            outputs.append(merged)
        return outputs


def _merge_answers(answers: list[str]) -> tuple[str, dict[str, int]]:
    """Majority-vote merge of per-context answers, ties broken by rank.

    Answers are grouped by whitespace-normalized, case-folded text; the
    winning group's *first-retrieved* literal answer is returned, so the
    merged output is always one of the backend's actual generations.
    """
    counts: dict[str, int] = {}
    first_rank: dict[str, int] = {}
    for rank, answer in enumerate(answers):
        key = " ".join(answer.split()).lower()
        counts[key] = counts.get(key, 0) + 1
        first_rank.setdefault(key, rank)
    winner = min(counts, key=lambda key: (-counts[key], first_rank[key]))
    return answers[first_rank[winner]], counts


class Pipeline:
    """Route text-to-vis / vis-to-text / FeVisQA requests through one facade.

    ``text_to_vis`` / ``vis_to_text`` / ``fevisqa`` accept a backend each — a
    registry baseline or a :class:`DataVisT5`; ``model`` supplies a shared
    multi-task DataVisT5 for any task without an explicit backend.  Tasks with
    no backend at all raise on first use, so a partially-configured pipeline
    is fine.
    """

    def __init__(
        self,
        text_to_vis=None,
        vis_to_text=None,
        fevisqa=None,
        model: DataVisT5 | None = None,
        config: PipelineConfig | None = None,
        corpus_index: CorpusIndex | None = None,
    ):
        self.config = config or PipelineConfig()
        self.model = model
        backends = {"text_to_vis": text_to_vis, "vis_to_text": vis_to_text, "fevisqa": fevisqa}
        self._engines: dict[str, object] = {}
        for task in MODEL_TASKS:
            backend = backends[task] if backends[task] is not None else model
            if backend is not None:
                self._engines[task] = _Engine(
                    backend,
                    task,
                    use_cache=self.config.use_cache,
                    precision=self.config.precision,
                    continuous=self.config.continuous,
                )
        self.corpus_index = corpus_index
        if corpus_index is not None:
            if not isinstance(corpus_index, CorpusIndex):
                raise ModelConfigError(
                    f"corpus_index must be a CorpusIndex, got {type(corpus_index).__name__}"
                )
            if "fevisqa" not in self._engines:
                raise ModelConfigError(
                    "corpus_qa needs a fevisqa backend to answer over retrieved contexts; "
                    "configure one (or a shared model) alongside the corpus index"
                )
            self._engines["corpus_qa"] = _CorpusQAEngine(
                self._engines["fevisqa"], corpus_index, self.config.corpus_top_k
            )
        self.caches = {
            "encode": LRUCache(self.config.encode_cache_size, name="encode"),
            "ast": LRUCache(self.config.ast_cache_size, name="ast"),
            "spec": LRUCache(self.config.spec_cache_size, name="spec"),
            "response": LRUCache(self.config.response_cache_size, name="response"),
            "render": LRUCache(self.config.render_cache_size, name="render"),
        }
        self._batchers: dict[str, MicroBatcher] = {}

    # -- construction -----------------------------------------------------------------
    @classmethod
    def from_model(
        cls,
        model: DataVisT5,
        config: PipelineConfig | None = None,
        corpus_index: CorpusIndex | None = None,
    ) -> "Pipeline":
        """Serve every task from one multi-task fine-tuned DataVisT5.

        ``corpus_index`` additionally enables the retrieval-grounded
        ``corpus_qa`` task over that index (see ``docs/corpus_qa.md``).
        """
        return cls(model=model, config=config, corpus_index=corpus_index)

    @classmethod
    def from_config(cls, spec: dict) -> "Pipeline":
        """Build a pipeline from a plain config dict.

        Task keys (``text_to_vis`` / ``vis_to_text`` / ``fevisqa``) hold
        registry baseline specs (see :mod:`repro.serving.registry`); ``model``
        may hold an already-built :class:`DataVisT5`; ``corpus_index`` may
        hold a :class:`~repro.datasets.corpus.CorpusIndex` (or a path to a
        saved one) to enable ``corpus_qa``; ``pipeline`` holds
        :class:`PipelineConfig` fields.
        """
        spec = dict(spec)
        try:
            config = PipelineConfig(**spec.pop("pipeline", {}))
        except TypeError as error:
            raise ModelConfigError(f"invalid pipeline config: {error}") from None
        model = spec.pop("model", None)
        corpus_index = spec.pop("corpus_index", None)
        if isinstance(corpus_index, str):
            corpus_index = CorpusIndex.load(corpus_index)
        backends: dict[str, object] = {}
        for task, builder in (
            ("text_to_vis", build_text_to_vis),
            ("vis_to_text", build_generation),
            ("fevisqa", build_generation),
        ):
            task_spec = spec.pop(task, None)
            if task_spec is not None:
                backends[task] = task_spec if _is_backend(task_spec) else builder(task_spec)
        if spec:
            raise ModelConfigError(f"unknown pipeline config keys: {', '.join(sorted(spec))}")
        return cls(model=model, config=config, corpus_index=corpus_index, **backends)

    def backend(self, task: str):
        """The underlying model/baseline serving ``task`` (for fitting or inspection)."""
        return self._engine(task).backend

    # -- the three task entry points ---------------------------------------------------
    def text_to_vis(self, question: str, schema: DatabaseSchema | str) -> Response:
        """NL question + schema -> DV query text (+ parsed AST and Vega-Lite spec)."""
        return self.submit(Request(task="text_to_vis", question=question, schema=schema))

    def vis_to_text(self, chart: DVQuery | str, schema: DatabaseSchema | str | None = None) -> Response:
        """DV query (the chart's program) -> natural-language caption."""
        return self.submit(Request(task="vis_to_text", chart=chart, schema=schema))

    def fevisqa(
        self,
        question: str,
        chart: DVQuery | str | None = None,
        schema: DatabaseSchema | str | None = None,
        table: str | None = None,
    ) -> Response:
        """Free-form question about a chart -> answer text."""
        return self.submit(Request(task="fevisqa", question=question, chart=chart, schema=schema, table=table))

    def corpus_qa(self, question: str) -> Response:
        """Question over the deployed corpus index -> retrieval-grounded answer.

        Retrieves the ``corpus_top_k`` most similar documents, answers the
        question once per retrieved context through the FeVisQA backend, and
        returns the majority-merged answer; per-stage artifacts land under
        ``Response.telemetry["stages"]``.
        """
        return self.submit(Request(task="corpus_qa", question=question))

    # -- serving ----------------------------------------------------------------------
    def submit(self, request: Request) -> Response:
        """Serve one request (a one-element :meth:`serve` batch)."""
        return self.serve([request])[0]

    def serve(self, requests: list[Request], strict: bool = True) -> list[Response]:
        """Serve a burst of requests, micro-batching cache misses per task.

        Responses come back position-aligned with ``requests``, in the exact
        input order, regardless of how the burst splits into cache hits,
        per-task batches and failures.  Repeats of a request already answered
        (in an earlier call, or earlier in this burst) are served from the
        response cache and marked ``cached``.

        ``strict`` controls failure behaviour.  With ``strict=True`` (the
        default) an unpreparable request or a backend exception propagates,
        aborting the burst.  With ``strict=False`` — the mode the async
        server runs in — each failing request yields a structured error
        :class:`Response` in its slot (``error`` set, ``output`` empty) while
        every other request is still answered.
        """
        responses: list[Response | None] = [None] * len(requests)
        misses: dict[str, list[tuple[int, _Prepared]]] = {}
        for index, request in enumerate(requests):
            try:
                # An unconfigured task is a misconfiguration of the request
                # against this pipeline, not a backend failure: surface it as
                # invalid_request (matching the async server's fail-fast
                # check) rather than letting the batch stage raise later.
                self._engine(request.task)
                prepared = self.prepare(request)
            except Exception as error:  # noqa: BLE001 - strict=False must contain any backend
                if strict:
                    raise
                responses[index] = error_response(request, error_code_for(error), str(error))
                continue
            cached = self.cached_response(prepared)
            if cached is not None:
                responses[index] = cached
            else:
                misses.setdefault(request.task, []).append((index, prepared))

        for task, entries in misses.items():
            # Within one burst, identical keys hit the backend once; every
            # duplicate after the first is a cache-style fan-out.
            by_key: dict[str, list[tuple[int, _Prepared]]] = {}
            unique: list[_Prepared] = []
            for index, prepared in entries:
                if prepared.key not in by_key:
                    by_key[prepared.key] = []
                    unique.append(prepared)
                by_key[prepared.key].append((index, prepared))
            try:
                outputs = self._batcher(task).run(unique)
            except Exception as error:  # noqa: BLE001 - strict=False must contain any backend
                if strict:
                    raise
                for index, prepared in entries:
                    responses[index] = error_response(
                        prepared.request, ERROR_BACKEND, str(error)
                    )
                continue
            for first, output in zip(unique, outputs):
                payload = self.complete(first, output)
                for position, (index, prepared) in enumerate(by_key[first.key]):
                    responses[index] = self.response_from(prepared, payload, cached=position > 0)
        return responses  # type: ignore[return-value]

    def serve_streaming(self, request: Request, on_text, strict: bool = True) -> Response:
        """Serve one request while streaming output text deltas to ``on_text``.

        ``on_text(delta)`` receives incremental tag-stripped text from the
        decoding thread; the returned :class:`Response` is bitwise-identical
        to :meth:`submit` for the same request (streaming never changes what
        is generated, only when the caller sees it).  Response-cache hits and
        non-continuous backends answer atomically without calling ``on_text``
        — stream assemblers reconcile against the final response, so the
        joined stream still reproduces ``Response.output`` exactly.

        With ``strict=True`` errors propagate as exceptions; ``strict=False``
        contains them as structured error responses with the same stage-aware
        code mapping as :meth:`serve` (request-stage failures through
        :func:`error_code_for`, backend failures as ``backend_error``), which
        is what the sharded tier's stream frames run under.
        """
        try:
            engine = self._engine(request.task)
            prepared = self.prepare(request)
        except Exception as error:  # noqa: BLE001 - strict=False must contain any failure
            if strict:
                raise
            return error_response(request, error_code_for(error), str(error))
        cached = self.cached_response(prepared)
        if cached is not None:
            return cached
        prepared = replace(prepared, on_text=on_text)
        try:
            output = engine.predict_batch([prepared])[0]
        except Exception as error:  # noqa: BLE001 - strict=False must contain any backend
            if strict:
                raise
            return error_response(request, ERROR_BACKEND, str(error))
        payload = self.complete(prepared, output)
        return self.response_from(prepared, payload)

    # -- the request life cycle, one stage per method ----------------------------------
    # These are the serving primitives the async front-end (`repro.serving.
    # server`) drives directly, so the batched-over-threads path and the
    # synchronous path share every line of encode/cache/postprocess logic —
    # which is what makes their outputs bitwise-identical.

    def prepare(self, request: Request) -> _Prepared:
        """Encode ``request`` into its backend input and cache identity."""
        return self._prepare(request)

    def cached_response(self, prepared: _Prepared) -> Response | None:
        """The response-cache hit for ``prepared``, or ``None`` on a miss."""
        payload = self.caches["response"].get(prepared.key)
        if payload is None:
            return None
        return self._response_from(prepared, payload, cached=True)

    def complete(self, prepared: _Prepared, output: str, cache: bool = True) -> dict:
        """Postprocess one backend ``output`` into a payload and cache it.

        ``cache=False`` builds the payload without writing the response
        cache — the async server uses it for requests whose deployment's
        weights were swapped while they sat in the queue, so an output from
        the new weights is never stored under the old revision's namespace.
        """
        payload = self._payload(prepared, output)
        if cache:
            self.caches["response"].put(prepared.key, payload)
        return payload

    def response_from(self, prepared: _Prepared, payload: dict, cached: bool = False) -> Response:
        """Build the caller-facing :class:`Response` from a completed payload."""
        return self._response_from(prepared, payload, cached)

    def spawn_engines(self, precision: str | None = None) -> dict[str, _Engine]:
        """Fresh per-task :class:`_Engine` instances over this pipeline's backends.

        The async server gives each worker shard its own engine set so worker
        state never aliases; the underlying backends (model weights, fitted
        baselines) are shared read-only, which is safe because inference does
        not mutate them.  ``precision`` overrides the engines' DataVisT5
        inference precision (the :class:`~repro.serving.server.ServerConfig`
        knob); ``None`` keeps each engine's configured setting.
        """
        if precision is not None:
            validate_precision(precision)
        engines: dict[str, object] = {
            task: _Engine(
                engine.backend,
                task,
                use_cache=engine.use_cache,
                precision=precision if precision is not None else engine.precision,
                continuous=engine.continuous,
            )
            for task, engine in self._engines.items()
            if isinstance(engine, _Engine)
        }
        corpus = self._engines.get("corpus_qa")
        if isinstance(corpus, _CorpusQAEngine):
            # corpus_qa wraps the worker's own fevisqa engine, so the
            # precision override applies to its sub-batches too.
            engines["corpus_qa"] = _CorpusQAEngine(engines["fevisqa"], corpus.index, corpus.top_k)
        return engines

    def render_chart(self, chart, width: int = 40) -> str:
        """ASCII-render ``chart`` through the pipeline's render cache."""
        return self.caches["render"].get_or_compute(
            chart_fingerprint(chart, width), lambda: render_ascii_chart(chart, width=width)
        )

    def stats(self) -> dict:
        """Cache, batching and continuous-scheduler counters for every stage."""
        continuous: dict[str, dict] = {}
        for task, engine in self._engines.items():
            if isinstance(engine, _Engine) and engine.continuous and isinstance(engine.backend, DataVisT5):
                loops = continuous_loop_stats(engine.backend.model)
                if loops:
                    continuous[task] = loops
        return {
            "caches": {name: cache.stats() for name, cache in self.caches.items()},
            "batching": {task: batcher.stats() for task, batcher in self._batchers.items()},
            "continuous": continuous,
        }

    # -- internals --------------------------------------------------------------------
    def _engine(self, task: str) -> _Engine:
        engine = self._engines.get(task)
        if engine is None:
            raise ModelConfigError(
                f"no backend configured for task {task!r}; pass one to the Pipeline "
                f"constructor or supply a shared model"
            )
        return engine

    def _batcher(self, task: str) -> MicroBatcher:
        if task not in self._batchers:
            engine = self._engine(task)
            self._batchers[task] = MicroBatcher(engine.predict_batch, self.config.max_batch_size)
        return self._batchers[task]

    def _prepare(self, request: Request) -> _Prepared:
        if request.task == "text_to_vis":
            prepared = self._prepare_text_to_vis(request)
        elif request.task == "vis_to_text":
            prepared = self._prepare_vis_to_text(request)
        elif request.task == "corpus_qa":
            prepared = self._prepare_corpus_qa(request)
        else:
            prepared = self._prepare_fevisqa(request)
        # Trace context rides along so engines can parent their stage spans;
        # it is never part of the cache identity.
        prepared.trace = SpanContext.from_wire(request.trace)
        return prepared

    def _prepare_text_to_vis(self, request: Request) -> _Prepared:
        schema = request.schema
        # Fail fast, before anything is batched: rule-based/retrieval backends
        # consume the schema object itself, so encoded schema text cannot work.
        backend = self._engine(request.task).backend
        if isinstance(backend, TextToVisBaseline) and not isinstance(schema, DatabaseSchema):
            raise ModelConfigError(
                f"{type(backend).__name__} needs a DatabaseSchema on text_to_vis requests; "
                f"encoded schema text is only usable with a DataVisT5 backend"
            )
        cache_key = normalize_key("t2v", request.question or "", _schema_identity(schema))

        def encode():
            encoding_schema = schema
            if self.config.filter_schemas and isinstance(schema, DatabaseSchema):
                encoding_schema = filter_schema(request.question, schema)
            return text_to_vis_input(request.question, encoding_schema), encoding_schema

        source, filtered = self.caches["encode"].get_or_compute(cache_key, encode)
        # Baselines see the filtered schema too, so neural and non-neural
        # backends answer from the same projected context.
        prepared_schema = filtered if isinstance(filtered, DatabaseSchema) else None
        return _Prepared(request=request, source=source, key=cache_key, schema=prepared_schema)

    def _prepare_vis_to_text(self, request: Request) -> _Prepared:
        query = self._chart_query(request.chart, request.schema)
        query_text = query.to_text() if query is not None else _chart_text(request.chart)
        cache_key = normalize_key("v2t", query_text, _schema_identity(request.schema))
        source = self.caches["encode"].get_or_compute(
            cache_key,
            lambda: vis_to_text_input(
                query if query is not None else query_text, request.schema, strict=False
            ),
        )
        schema = request.schema if isinstance(request.schema, DatabaseSchema) else None
        return _Prepared(request=request, source=source, key=cache_key, schema=schema, chart_query=query)

    def _prepare_fevisqa(self, request: Request) -> _Prepared:
        query = self._chart_query(request.chart, request.schema) if request.chart is not None else None
        query_text = query.to_text() if query is not None else _chart_text(request.chart)
        cache_key = normalize_key(
            "qa", request.question or "", query_text, _schema_identity(request.schema), request.table or ""
        )
        source = self.caches["encode"].get_or_compute(
            cache_key,
            lambda: fevisqa_input(
                request.question,
                query=query if query is not None else (query_text or None),
                schema=request.schema,
                table=request.table,
                strict=False,
            ),
        )
        schema = request.schema if isinstance(request.schema, DatabaseSchema) else None
        return _Prepared(request=request, source=source, key=cache_key, schema=schema, chart_query=query)

    def _prepare_corpus_qa(self, request: Request) -> _Prepared:
        """Run deterministic retrieval and pin the index identity into the cache key.

        Retrieval happens here, at prepare time, because it is a pure
        function of (question, index, top_k) — exactly the triple the cache
        key carries, so response-cache hits replay the same retrieval.  The
        index fingerprint in the key also means a hot-swapped index can never
        serve answers cached under the old corpus.
        """
        engine = self._engine(request.task)
        index: CorpusIndex = engine.index
        fingerprint = index.fingerprint()
        if request.index is not None and request.index != fingerprint:
            raise IndexMismatchError(
                f"request pins corpus index {request.index}, but the deployed index is {fingerprint}"
            )
        if len(index) == 0:
            raise CorpusEmptyError("the deployed corpus index holds no documents to retrieve from")
        search_started = time.perf_counter()
        results = index.search(request.question, top_k=engine.top_k)
        search_seconds = time.perf_counter() - search_started
        _RETRIEVE_MS.record(search_seconds * 1000.0)
        obs.TRACES.record(
            SPAN_PIPELINE_RETRIEVE,
            SpanContext.from_wire(request.trace),
            search_seconds,
            attrs={"top_k": engine.top_k, "results": len(results)},
        )
        if not results:
            raise CorpusEmptyError("retrieval returned no documents for the question")
        cache_key = normalize_key("corpus_qa", request.question or "", fingerprint, str(engine.top_k))
        stages = {
            "retrieval": {
                "index_fingerprint": fingerprint,
                "top_k": engine.top_k,
                "documents": [
                    {"doc_id": document.doc_id, "score": score} for document, score in results
                ],
            }
        }
        return _Prepared(request=request, source=request.question, key=cache_key, stages=stages)

    def _chart_query(self, chart: DVQuery | str | None, schema) -> DVQuery | None:
        """Parse (with the AST cache) and standardize the chart's DV query.

        Returns ``None`` when the text does not parse or the query does not
        standardize against ``schema`` — model output is untrusted, so both
        failure modes must yield an invalid response rather than crash the
        burst.  AST inputs are standardized too, so text and AST forms of the
        same chart share one cache identity.
        """
        if chart is None:
            return None
        try:
            if isinstance(chart, DVQuery):
                parsed = chart
            else:
                parsed = self.caches["ast"].get_or_compute(
                    normalize_key(chart), lambda: parse_dv_query(chart)
                )
            if isinstance(schema, DatabaseSchema):
                parsed = standardize_dv_query(parsed, schema=schema)
        except ReproError:
            return None
        return parsed

    def _payload(self, prepared: _Prepared, output: str) -> dict:
        """Everything derivable from one backend output, cached as a unit.

        Response-cache hits replay the parsed query, validation verdict and
        Vega-Lite spec without recomputing them.
        """
        payload: dict = {"output": output, "query": None, "valid": None, "vega_lite": None}
        if prepared.request.task == "text_to_vis":
            # Standardize and validate against the caller's full schema, not
            # the n-gram-filtered projection the backend predicted from.
            schema = prepared.request.schema
            full_schema = schema if isinstance(schema, DatabaseSchema) else None
            query = self._chart_query(output, full_schema) if output else None
            payload["query"] = query
            if query is not None:
                if self.config.validate_predictions and full_schema is not None:
                    payload["valid"] = is_query_compatible(query, full_schema)
                if self.config.attach_specs:
                    try:
                        payload["vega_lite"] = self.caches["spec"].get_or_compute(
                            normalize_key(query.to_text()), lambda: to_vega_lite(query)
                        )
                    except ReproError:
                        payload["vega_lite"] = None
            else:
                # empty and unparseable predictions are both invalid
                payload["valid"] = False
        elif prepared.chart_query is not None:
            # generation tasks echo back the parsed + standardized chart query
            payload["query"] = prepared.chart_query
        if prepared.stages:
            # per-stage artifacts (corpus_qa retrieval/contexts/merge) are part
            # of the cached payload, so cache hits replay their telemetry too
            payload["stages"] = copy.deepcopy(prepared.stages)
        return payload

    def _response_from(self, prepared: _Prepared, payload: dict, cached: bool) -> Response:
        vega_lite = payload["vega_lite"]
        stages = payload.get("stages")
        return Response(
            task=prepared.request.task,
            output=payload["output"],
            source=prepared.source,
            cached=cached,
            query=payload["query"],
            # deep-copied so callers embellishing the spec (e.g. inlining
            # data values) cannot corrupt the spec cache or other responses
            vega_lite=copy.deepcopy(vega_lite) if vega_lite is not None else None,
            valid=payload["valid"],
            request_id=prepared.request.request_id,
            telemetry={"stages": copy.deepcopy(stages)} if stages else None,
        )


def error_code_for(error: Exception) -> str:
    """The structured error code a request-stage exception maps to.

    Shared by the sync pipeline (``serve(strict=False)``), the async server
    and the sharded tier, so the same failure carries the same code no matter
    which front-end surfaced it.  Backend-stage failures are mapped to
    ``backend_error`` by their callers; everything else here is a property of
    the request or the deployment it targeted.
    """
    if isinstance(error, CorpusEmptyError):
        return ERROR_CORPUS_EMPTY
    if isinstance(error, IndexMismatchError):
        return ERROR_INDEX_MISMATCH
    return ERROR_INVALID_REQUEST


def _chart_text(chart: DVQuery | str | None) -> str:
    """The text form of a chart input for cache keys and lenient encoding."""
    if chart is None:
        return ""
    return chart.to_text() if isinstance(chart, DVQuery) else str(chart)


def _is_backend(value) -> bool:
    return isinstance(value, (DataVisT5, TextToVisBaseline, TextGenerationBaseline))


def _schema_identity(schema) -> str:
    """A cache identity covering the schema's full structure.

    The digest spans table names, column names and types, and foreign keys,
    so two schemas that share a name but differ anywhere in structure never
    collide in the encode/response caches.  It is memoized on the schema
    object — schemas are treated as immutable once they enter the serving
    layer — so repeat requests cost one attribute read, not a re-hash.
    """
    if schema is None:
        return ""
    if isinstance(schema, DatabaseSchema):
        cached = getattr(schema, "_serving_identity", None)
        if cached is not None:
            return cached
        structure = ";".join(
            f"{table.name}:{','.join(f'{column.name}/{column.ctype.value}' for column in table.columns)}"
            for table in schema.tables
        )
        links = ";".join(
            f"{fk.source_table}.{fk.source_column}>{fk.target_table}.{fk.target_column}"
            for fk in schema.foreign_keys
        )
        digest = hashlib.md5(f"{structure}|{links}".encode("utf-8")).hexdigest()[:16]
        identity = f"{schema.name}#{digest}"
        schema._serving_identity = identity
        return identity
    return str(schema)
