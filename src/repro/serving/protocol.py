"""The serving layer's request/response protocol.

Every task the pipeline serves — text-to-vis, vis-to-text, FeVisQA — is
expressed as one :class:`Request` in and one :class:`Response` out, so
callers (and the micro-batcher) handle a single shape regardless of task or
backing model.  ``Request`` carries the task name plus whichever payload
fields that task reads; ``Response`` always carries the generated text and,
when the task produces one, the parsed/standardized DV query and its
Vega-Lite spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.database.schema import DatabaseSchema
from repro.errors import ModelConfigError
from repro.vql.ast import DVQuery
from repro.vql.parser import parse_dv_query

#: The tasks the pipeline can serve.  ``table_to_text`` is trainable in the
#: core model but has no interactive serving surface in the paper's Figure 1,
#: so it is not part of the protocol.
SERVABLE_TASKS = ("text_to_vis", "vis_to_text", "fevisqa")

#: The single source of truth for the machine-readable error codes carried by
#: :attr:`Response.error`, mapping each code to when it is emitted.  The async
#: server and ``Pipeline.serve(strict=False)`` reject or fail requests with a
#: structured error response instead of raising, so one bad request can never
#: take down a burst or the serving loop.  Everything else — the ``ERROR_*``
#: constants below, :data:`ERROR_CODES`, the server's per-code counters and
#: the docs table in ``docs/serving.md`` — derives from (and is tested
#: against) this mapping; add new codes here first.
ERROR_CODE_MEANINGS = {
    "invalid_request": "the request could not be validated or encoded (bad task, missing fields, unpreparable inputs)",
    "backend_error": "the backend forward pass or postprocessing raised; other requests in the batch are unaffected",
    "queue_full": "admission control: the task's bounded queue was full at submission time",
    "deadline_exceeded": "the request's latency budget expired while it was still queued (or was <= 0 at submission and not answerable from the response cache)",
    "server_stopped": "the request arrived after Server.stop() began",
    "shard_failed": "a worker shard process died (crash or missed heartbeats) and the request's requeue budget was exhausted before another shard could answer it",
}

ERROR_INVALID_REQUEST = "invalid_request"
ERROR_BACKEND = "backend_error"
ERROR_QUEUE_FULL = "queue_full"
ERROR_DEADLINE = "deadline_exceeded"
ERROR_SHUTDOWN = "server_stopped"
ERROR_SHARD_FAILED = "shard_failed"

ERROR_CODES = tuple(ERROR_CODE_MEANINGS)


@dataclass
class Request:
    """One unit of work for the pipeline.

    Field use per task:

    * ``text_to_vis`` — ``question`` (NL utterance) + ``schema``;
    * ``vis_to_text`` — ``chart`` (a :class:`DVQuery` or DV-query text),
      optional ``schema`` for context;
    * ``fevisqa`` — ``question`` + ``chart``, optional ``schema`` and a
      linearized result ``table``.

    ``request_id`` is an opaque caller tag echoed back on the response, so
    callers can correlate batched submissions.

    ``deployment`` pins the request to one deployed model version
    (``"name@version"``) on servers running the :mod:`repro.deploy` routing
    layer, bypassing canary splits — the knob for "give me exactly the
    candidate" debugging traffic.  An unknown or draining deployment is
    rejected with ``invalid_request``; the synchronous :class:`Pipeline`
    has a single implicit version and ignores the field.
    """

    task: str
    question: str | None = None
    chart: DVQuery | str | None = None
    schema: DatabaseSchema | str | None = None
    table: str | None = None
    request_id: str | None = None
    deployment: str | None = None

    def __post_init__(self):
        if self.task not in SERVABLE_TASKS:
            raise ModelConfigError(
                f"unknown task {self.task!r}; servable tasks: {', '.join(SERVABLE_TASKS)}"
            )
        if self.task in ("text_to_vis", "fevisqa") and not self.question:
            raise ModelConfigError(f"{self.task} requests need a question")
        if self.task == "text_to_vis" and self.schema is None:
            raise ModelConfigError(
                "text_to_vis requests need a schema (a DatabaseSchema or encoded schema text)"
            )
        if self.task == "vis_to_text" and self.chart is None:
            raise ModelConfigError("vis_to_text requests need a chart (DVQuery or query text)")


@dataclass
class Response:
    """What the pipeline returns for one :class:`Request`.

    ``output`` is the generated text (DV-query text, caption or answer) with
    modality tags stripped.  ``source`` is the exact encoded sequence that was
    (or would be) fed to a neural backend — useful for debugging and as the
    cache identity of the request.  ``cached`` marks responses served from the
    response cache without touching the backend.

    For text-to-vis, ``query`` is the parsed + standardized AST when the
    output parses (``None`` otherwise), ``vega_lite`` its rendered spec, and
    ``valid`` whether the query type-checks against the request schema
    (``False`` for empty or unparseable predictions).  For vis-to-text and
    FeVisQA, ``query`` echoes the request's parsed + standardized chart query
    when its text form parsed.

    ``error`` is ``None`` on success, or one of the :data:`ERROR_CODES` when
    the request was rejected (admission control) or failed (bad input, backend
    exception); ``detail`` then carries the human-readable reason.  Error
    responses have an empty ``output`` and never populate the artifacts.

    ``telemetry`` is per-request serving metadata (queue time, batch size,
    worker id...) attached by the async server.  It is excluded from equality
    comparisons so that a response produced under load compares equal to the
    same response produced synchronously.
    """

    task: str
    output: str
    source: str = ""
    cached: bool = False
    query: DVQuery | None = None
    vega_lite: dict | None = field(default=None, repr=False)
    valid: bool | None = None
    request_id: str | None = None
    error: str | None = None
    detail: str | None = None
    telemetry: dict | None = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        """Whether the request was actually answered (no structured error)."""
        return self.error is None

    def as_dict(self) -> dict:
        """A JSON-friendly view (the AST collapses to its text form).

        The inverse is :meth:`from_dict`: ``Response.from_dict(r.as_dict())``
        reconstructs an equal response, including through a JSON round trip —
        the wire format the deploy layer uses for shadow-comparison records.
        """
        return {
            "task": self.task,
            "output": self.output,
            "source": self.source,
            "cached": self.cached,
            "query": self.query.to_text() if self.query is not None else None,
            "vega_lite": self.vega_lite,
            "valid": self.valid,
            "request_id": self.request_id,
            "error": self.error,
            "detail": self.detail,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Response":
        """Rebuild a :class:`Response` from an :meth:`as_dict` payload.

        The inverse of :meth:`as_dict`, covering every field it emits —
        error/detail/telemetry included — so responses and shadow-comparison
        records can cross process boundaries as plain JSON.  ``query`` text is
        re-parsed into its :class:`~repro.vql.ast.DVQuery`; since ``as_dict``
        serialized a parseable standardized query, the round trip is exact
        (property-tested in ``tests/test_serving_protocol_roundtrip.py``).
        Unknown keys raise :class:`~repro.errors.ModelConfigError` rather than
        being dropped, so schema drift between producer and consumer is loud.
        """
        known = {field_info.name for field_info in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ModelConfigError(f"unknown Response fields: {', '.join(unknown)}")
        if "task" not in payload or "output" not in payload:
            raise ModelConfigError("a Response payload needs at least 'task' and 'output'")
        query = payload.get("query")
        if isinstance(query, str):
            query = parse_dv_query(query) if query else None
        return cls(
            task=payload["task"],
            output=payload["output"],
            source=payload.get("source", ""),
            cached=bool(payload.get("cached", False)),
            query=query,
            vega_lite=payload.get("vega_lite"),
            valid=payload.get("valid"),
            request_id=payload.get("request_id"),
            error=payload.get("error"),
            detail=payload.get("detail"),
            telemetry=payload.get("telemetry"),
        )


def error_response(request, error: str, detail: str) -> Response:
    """A structured failure :class:`Response` for ``request``.

    Used by admission control and ``strict=False`` serving so that rejected
    or failed requests surface as data, position-aligned with their burst,
    rather than as exceptions that abort every other request in flight.
    """
    if error not in ERROR_CODES:
        raise ModelConfigError(f"unknown error code {error!r}; known codes: {', '.join(ERROR_CODES)}")
    return Response(
        task=request.task,
        output="",
        error=error,
        detail=detail,
        request_id=request.request_id,
    )
