"""The serving layer's request/response protocol.

Every task the pipeline serves — text-to-vis, vis-to-text, FeVisQA, and the
retrieval-grounded corpus-QA task — is expressed as one :class:`Request` in
and one :class:`Response` out, so callers (and the micro-batcher) handle a
single shape regardless of task or backing model.  ``Request`` carries the
task name plus whichever payload fields that task reads; ``Response`` always
carries the generated text and, when the task produces one, the
parsed/standardized DV query and its Vega-Lite spec.

Streaming consumers receive the same response incrementally as a sequence of
:class:`ResponseChunk` values: seq-numbered partial text followed by one
final chunk embedding the full :class:`Response`.  The invariant — the
concatenated chunk texts (since the last ``seq == 0`` reset) are bitwise
equal to the non-streaming ``Response.output`` — is what
:func:`assemble_stream` checks and ``docs/corpus_qa.md`` documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.database.schema import DatabaseSchema
from repro.errors import ModelConfigError
from repro.vql.ast import DVQuery
from repro.vql.parser import parse_dv_query

#: The tasks a single :class:`~repro.core.model.DataVisT5` checkpoint serves
#: directly.  ``table_to_text`` is trainable in the core model but has no
#: interactive serving surface in the paper's Figure 1, so it is not part of
#: the protocol.
MODEL_TASKS = ("text_to_vis", "vis_to_text", "fevisqa")

#: The tasks the pipeline can serve.  ``corpus_qa`` is composite: it needs a
#: FeVisQA-capable backend *plus* a deployed :class:`~repro.datasets.corpus.
#: CorpusIndex` retrieval artifact, so checkpoint deployments declare it
#: explicitly (``MODEL_TASKS`` stays the default manifest surface).
SERVABLE_TASKS = MODEL_TASKS + ("corpus_qa",)

#: The single source of truth for the machine-readable error codes carried by
#: :attr:`Response.error`, mapping each code to when it is emitted.  The async
#: server and ``Pipeline.serve(strict=False)`` reject or fail requests with a
#: structured error response instead of raising, so one bad request can never
#: take down a burst or the serving loop.  Everything else — the ``ERROR_*``
#: constants below, :data:`ERROR_CODES`, the server's per-code counters and
#: the docs table in ``docs/serving.md`` — derives from (and is tested
#: against) this mapping; add new codes here first.
ERROR_CODE_MEANINGS = {
    "invalid_request": "the request could not be validated or encoded (bad task, missing fields, unpreparable inputs)",
    "backend_error": "the backend forward pass or postprocessing raised; other requests in the batch are unaffected",
    "queue_full": "admission control: the task's bounded queue was full at submission time",
    "deadline_exceeded": "the request's latency budget expired while it was still queued (or was <= 0 at submission and not answerable from the response cache)",
    "server_stopped": "the request arrived after Server.stop() began",
    "shard_failed": "a worker shard process died (crash or missed heartbeats) and the request's requeue budget was exhausted before another shard could answer it",
    "corpus_empty": "a corpus_qa request found no retrievable documents: the deployment's corpus index holds no documents (or retrieval produced no candidates)",
    "index_mismatch": "a corpus_qa request pinned a corpus-index fingerprint (Request.index) that does not match the deployment's loaded index",
}

ERROR_INVALID_REQUEST = "invalid_request"
ERROR_BACKEND = "backend_error"
ERROR_QUEUE_FULL = "queue_full"
ERROR_DEADLINE = "deadline_exceeded"
ERROR_SHUTDOWN = "server_stopped"
ERROR_SHARD_FAILED = "shard_failed"
ERROR_CORPUS_EMPTY = "corpus_empty"
ERROR_INDEX_MISMATCH = "index_mismatch"

ERROR_CODES = tuple(ERROR_CODE_MEANINGS)


@dataclass
class Request:
    """One unit of work for the pipeline.

    Field use per task:

    * ``text_to_vis`` — ``question`` (NL utterance) + ``schema``;
    * ``vis_to_text`` — ``chart`` (a :class:`DVQuery` or DV-query text),
      optional ``schema`` for context;
    * ``fevisqa`` — ``question`` + ``chart``, optional ``schema`` and a
      linearized result ``table``;
    * ``corpus_qa`` — ``question`` only; the serving deployment supplies the
      chart/schema/table context by retrieving it from its deployed
      :class:`~repro.datasets.corpus.CorpusIndex`.  ``index`` may pin the
      expected index fingerprint (``"sha256:<hex>"``): a deployment whose
      loaded index hashes differently answers ``index_mismatch`` instead of
      silently grounding the answer in a corpus the caller never saw.

    ``request_id`` is an opaque caller tag echoed back on the response, so
    callers can correlate batched submissions.

    ``deployment`` pins the request to one deployed model version
    (``"name@version"``) on servers running the :mod:`repro.deploy` routing
    layer, bypassing canary splits — the knob for "give me exactly the
    candidate" debugging traffic.  An unknown or draining deployment is
    rejected with ``invalid_request``; the synchronous :class:`Pipeline`
    has a single implicit version and ignores the field.

    ``trace`` is optional distributed-tracing context (a
    :meth:`repro.obs.SpanContext.to_wire` dict) propagated by the serving
    tiers so one trace can follow a request across the gateway → shard →
    pipeline → decode-loop boundary (``docs/observability.md``).  Like
    ``Response.telemetry`` it is observability metadata: excluded from
    equality, never part of cache or routing identity.
    """

    task: str
    question: str | None = None
    chart: DVQuery | str | None = None
    schema: DatabaseSchema | str | None = None
    table: str | None = None
    request_id: str | None = None
    deployment: str | None = None
    index: str | None = None
    trace: dict | None = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        if self.task not in SERVABLE_TASKS:
            raise ModelConfigError(
                f"unknown task {self.task!r}; servable tasks: {', '.join(SERVABLE_TASKS)}"
            )
        if self.task in ("text_to_vis", "fevisqa", "corpus_qa") and not self.question:
            raise ModelConfigError(f"{self.task} requests need a question")
        if self.task == "text_to_vis" and self.schema is None:
            raise ModelConfigError(
                "text_to_vis requests need a schema (a DatabaseSchema or encoded schema text)"
            )
        if self.task == "vis_to_text" and self.chart is None:
            raise ModelConfigError("vis_to_text requests need a chart (DVQuery or query text)")
        if self.index is not None:
            if self.task != "corpus_qa":
                raise ModelConfigError("Request.index (a corpus-index pin) is only meaningful for corpus_qa")
            if not isinstance(self.index, str) or not self.index.startswith("sha256:"):
                raise ModelConfigError(
                    f"Request.index must be a corpus-index fingerprint 'sha256:<hex>', got {self.index!r}"
                )
        if self.trace is not None and not isinstance(self.trace, dict):
            raise ModelConfigError(
                f"Request.trace must be a span-context dict or None, got {type(self.trace).__name__}"
            )


@dataclass
class Response:
    """What the pipeline returns for one :class:`Request`.

    ``output`` is the generated text (DV-query text, caption or answer) with
    modality tags stripped.  ``source`` is the exact encoded sequence that was
    (or would be) fed to a neural backend — useful for debugging and as the
    cache identity of the request.  ``cached`` marks responses served from the
    response cache without touching the backend.

    For text-to-vis, ``query`` is the parsed + standardized AST when the
    output parses (``None`` otherwise), ``vega_lite`` its rendered spec, and
    ``valid`` whether the query type-checks against the request schema
    (``False`` for empty or unparseable predictions).  For vis-to-text and
    FeVisQA, ``query`` echoes the request's parsed + standardized chart query
    when its text form parsed.

    ``error`` is ``None`` on success, or one of the :data:`ERROR_CODES` when
    the request was rejected (admission control) or failed (bad input, backend
    exception); ``detail`` then carries the human-readable reason.  Error
    responses have an empty ``output`` and never populate the artifacts.

    ``telemetry`` is per-request serving metadata (queue time, batch size,
    worker id...) attached by the async server.  It is excluded from equality
    comparisons so that a response produced under load compares equal to the
    same response produced synchronously.
    """

    task: str
    output: str
    source: str = ""
    cached: bool = False
    query: DVQuery | None = None
    vega_lite: dict | None = field(default=None, repr=False)
    valid: bool | None = None
    request_id: str | None = None
    error: str | None = None
    detail: str | None = None
    telemetry: dict | None = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        """Whether the request was actually answered (no structured error)."""
        return self.error is None

    def as_dict(self) -> dict:
        """A JSON-friendly view (the AST collapses to its text form).

        The inverse is :meth:`from_dict`: ``Response.from_dict(r.as_dict())``
        reconstructs an equal response, including through a JSON round trip —
        the wire format the deploy layer uses for shadow-comparison records.
        """
        return {
            "task": self.task,
            "output": self.output,
            "source": self.source,
            "cached": self.cached,
            "query": self.query.to_text() if self.query is not None else None,
            "vega_lite": self.vega_lite,
            "valid": self.valid,
            "request_id": self.request_id,
            "error": self.error,
            "detail": self.detail,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Response":
        """Rebuild a :class:`Response` from an :meth:`as_dict` payload.

        The inverse of :meth:`as_dict`, covering every field it emits —
        error/detail/telemetry included — so responses and shadow-comparison
        records can cross process boundaries as plain JSON.  ``query`` text is
        re-parsed into its :class:`~repro.vql.ast.DVQuery`; since ``as_dict``
        serialized a parseable standardized query, the round trip is exact
        (property-tested in ``tests/test_serving_protocol_roundtrip.py``).
        Unknown keys raise :class:`~repro.errors.ModelConfigError` rather than
        being dropped, so schema drift between producer and consumer is loud.
        """
        known = {field_info.name for field_info in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ModelConfigError(f"unknown Response fields: {', '.join(unknown)}")
        if "task" not in payload or "output" not in payload:
            raise ModelConfigError("a Response payload needs at least 'task' and 'output'")
        query = payload.get("query")
        if isinstance(query, str):
            query = parse_dv_query(query) if query else None
        return cls(
            task=payload["task"],
            output=payload["output"],
            source=payload.get("source", ""),
            cached=bool(payload.get("cached", False)),
            query=query,
            vega_lite=payload.get("vega_lite"),
            valid=payload.get("valid"),
            request_id=payload.get("request_id"),
            error=payload.get("error"),
            detail=payload.get("detail"),
            telemetry=payload.get("telemetry"),
        )


@dataclass
class ResponseChunk:
    """One increment of a streamed :class:`Response`.

    A stream for one request is a sequence of chunks with consecutive
    ``seq`` numbers starting at 0.  Non-final chunks carry a non-empty
    ``text`` delta; the single final chunk (``final=True``) carries the
    complete :class:`Response` in ``response`` and an empty ``text``.  The
    stream contract (checked by :func:`assemble_stream`, property-tested in
    ``tests/test_serving_streaming.py``):

    * **bitwise reassembly** — the concatenation of the ``text`` of every
      non-final chunk since the most recent ``seq == 0`` chunk equals the
      final ``response.output`` exactly;
    * **reset on seq 0** — a non-final chunk arriving with ``seq == 0``
      restarts assembly (dropping previously buffered text).  This is how a
      stream whose shard died mid-decode restarts cleanly after a requeue,
      and how a speculative draft answer (corpus QA streams its top-ranked
      context's answer while the consistency merge is pending) is replaced
      when the merged answer diverges from it;
    * **structured termination** — a stream never ends without a final
      chunk; failures arrive as a final chunk whose ``response.error`` is
      set (a *terminal error chunk*), not as a hang or a truncated stream.

    ``task`` and ``request_id`` echo the request on every chunk so
    interleaved streams can be demultiplexed.  ``trace`` optionally echoes
    the request's distributed-tracing context (``docs/observability.md``);
    like ``Response.telemetry`` it is excluded from equality, and
    :meth:`as_dict` omits it when unset so untraced chunk dicts are
    byte-identical to the pre-tracing wire format.
    """

    task: str
    seq: int
    text: str = ""
    final: bool = False
    response: Response | None = None
    request_id: str | None = None
    trace: dict | None = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        if not isinstance(self.seq, int) or isinstance(self.seq, bool) or self.seq < 0:
            raise ModelConfigError(f"chunk seq must be a non-negative integer, got {self.seq!r}")
        if self.final and self.response is None:
            raise ModelConfigError("a final chunk must carry the complete Response")
        if not self.final and self.response is not None:
            raise ModelConfigError("only the final chunk may carry a Response")
        if self.trace is not None and not isinstance(self.trace, dict):
            raise ModelConfigError(
                f"chunk trace must be a span-context dict or None, got {type(self.trace).__name__}"
            )

    def as_dict(self) -> dict:
        """A JSON-friendly view; :meth:`from_dict` is the exact inverse."""
        payload = {
            "task": self.task,
            "seq": self.seq,
            "text": self.text,
            "final": self.final,
            "response": self.response.as_dict() if self.response is not None else None,
            "request_id": self.request_id,
        }
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ResponseChunk":
        """Rebuild (and re-validate) a chunk from :meth:`as_dict` output.

        Unknown keys raise :class:`~repro.errors.ModelConfigError` rather
        than being dropped, matching :meth:`Response.from_dict` strictness.
        """
        if not isinstance(payload, dict):
            raise ModelConfigError(f"chunk payload must be a dict, got {type(payload).__name__}")
        known = {field_info.name for field_info in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ModelConfigError(f"unknown ResponseChunk fields: {', '.join(unknown)}")
        missing = sorted({"task", "seq"} - set(payload))
        if missing:
            raise ModelConfigError(f"chunk payload is missing fields: {', '.join(missing)}")
        response = payload.get("response")
        if isinstance(response, dict):
            response = Response.from_dict(response)
        return cls(
            task=payload["task"],
            seq=payload["seq"],
            text=payload.get("text", ""),
            final=bool(payload.get("final", False)),
            response=response,
            request_id=payload.get("request_id"),
            trace=payload.get("trace"),
        )


def assemble_stream(chunks) -> Response:
    """Reassemble one request's chunk sequence into its :class:`Response`.

    Applies the :class:`ResponseChunk` contract: text chunks concatenate,
    a non-final ``seq == 0`` chunk resets the buffer, and the stream must end
    with exactly one final chunk.  Raises :class:`~repro.errors.
    ModelConfigError` if the stream is empty, truncated (no final chunk),
    continues past its final chunk, or the reassembled text is not bitwise
    equal to the final ``response.output`` (successful streams only — a
    terminal error chunk's empty output is returned as-is).  Returns the
    final chunk's embedded :class:`Response`.
    """
    assembled: list[str] = []
    final: Response | None = None
    seen = False
    for chunk in chunks:
        seen = True
        if final is not None:
            raise ModelConfigError("stream continued past its final chunk")
        if chunk.final:
            final = chunk.response
            continue
        if chunk.seq == 0:
            assembled = []
        assembled.append(chunk.text)
    if not seen:
        raise ModelConfigError("cannot assemble an empty stream")
    if final is None:
        raise ModelConfigError("stream ended without a final chunk (truncated)")
    text = "".join(assembled)
    if final.error is None and text != final.output:
        raise ModelConfigError(
            f"stream reassembly mismatch: chunks concatenate to {text!r} but the "
            f"final response output is {final.output!r}"
        )
    return final


def error_response(request, error: str, detail: str) -> Response:
    """A structured failure :class:`Response` for ``request``.

    Used by admission control and ``strict=False`` serving so that rejected
    or failed requests surface as data, position-aligned with their burst,
    rather than as exceptions that abort every other request in flight.
    """
    if error not in ERROR_CODES:
        raise ModelConfigError(f"unknown error code {error!r}; known codes: {', '.join(ERROR_CODES)}")
    return Response(
        task=request.task,
        output="",
        error=error,
        detail=detail,
        request_id=request.request_id,
    )
