"""Micro-batching for the serving layer.

Neural inference amortizes: one forward pass over eight padded requests costs
far less than eight passes over one request each.  The :class:`MicroBatcher`
exploits this without changing observable behaviour — requests are
accumulated into a pending queue and flushed through a caller-supplied batch
function, and every submitter gets its own result back through a
:class:`Ticket`.  :class:`BatchWindow` is the shared flush policy: a batch is
dispatched when it reaches ``max_batch`` requests *or* ``max_wait_ms`` has
elapsed since its first request arrived, whichever comes first.  The
synchronous batcher only ever sees complete bursts so it flushes on size
alone; the async server (:mod:`repro.serving.server`) sees requests one at a
time and needs the time trigger to bound latency under trickle traffic.

The batcher is synchronous and deterministic: results are produced in
submission order, batches never exceed ``max_batch_size``, and because all
models mask padding exactly, the outputs are bitwise-identical to running
each request alone (covered by ``tests/test_serving.py``).

Typical use::

    batcher = MicroBatcher(model.predict_batch, max_batch_size=8)
    tickets = [batcher.submit(source) for source in sources]
    batcher.flush()
    outputs = [ticket.value for ticket in tickets]
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.batching import group_into_batches
from repro.errors import ModelConfigError, ServingStateError


@dataclass(frozen=True)
class BatchWindow:
    """Time/size flush policy for an accumulating batch.

    A window opens when the first item of a batch arrives and closes —
    triggering a flush — as soon as either ``max_batch`` items are pending or
    ``max_wait_ms`` milliseconds have passed since the window opened.  The
    policy is pure arithmetic over caller-supplied clocks, so it is trivially
    unit-testable and shared between the synchronous and asyncio collectors.
    """

    max_batch: int = 8
    max_wait_ms: float = 2.0

    def __post_init__(self):
        if self.max_batch <= 0:
            raise ModelConfigError("max_batch must be positive")
        if self.max_wait_ms < 0:
            raise ModelConfigError("max_wait_ms must be non-negative")

    def closes_at(self, opened_at: float) -> float:
        """The absolute time (same clock as ``opened_at``) the window closes."""
        return opened_at + self.max_wait_ms / 1000.0

    def is_full(self, pending: int) -> bool:
        """Whether ``pending`` items alone force a flush."""
        return pending >= self.max_batch

    def should_flush(self, pending: int, opened_at: float, now: float) -> bool:
        """Whether a batch opened at ``opened_at`` must flush at ``now``."""
        return self.is_full(pending) or now >= self.closes_at(opened_at)

    def remaining_wait(self, opened_at: float, now: float) -> float:
        """Seconds the collector may still wait for more items (>= 0)."""
        return max(0.0, self.closes_at(opened_at) - now)


class Ticket:
    """A placeholder for one submitted item's result.

    ``ready`` flips to ``True`` once the batch containing the item has been
    flushed; reading ``value`` before that raises ``ServingStateError``.
    """

    __slots__ = ("item", "_value", "ready")

    def __init__(self, item: Any):
        self.item = item
        self._value: Any = None
        self.ready = False

    @property
    def value(self) -> Any:
        """The computed result; raises until the owning batch has flushed."""
        if not self.ready:
            raise ServingStateError("ticket is not ready; call MicroBatcher.flush() first")
        return self._value

    def _resolve(self, value: Any) -> None:
        self._value = value
        self.ready = True


class MicroBatcher:
    """Accumulates items and runs them through ``batch_fn`` in bounded batches.

    ``batch_fn`` receives a list of items and must return a list of results of
    the same length, position-aligned.  Submitting the ``max_batch_size``-th
    pending item triggers an automatic flush; :meth:`flush` drains whatever
    remains (e.g. the ragged tail of a request burst).

    Counters (``num_items``, ``num_batches``, ``num_full_batches``) expose how
    well traffic is amortizing; ``batch_sizes`` keeps the size of every flushed
    batch for the benchmark reports.
    """

    def __init__(self, batch_fn: Callable[[list], Sequence], max_batch_size: int = 8):
        if max_batch_size <= 0:
            raise ModelConfigError("max_batch_size must be positive")
        self.batch_fn = batch_fn
        self.max_batch_size = max_batch_size
        self.num_items = 0
        self.num_batches = 0
        self.num_full_batches = 0
        self.batch_sizes: list[int] = []
        self._pending: list[Ticket] = []

    def submit(self, item: Any) -> Ticket:
        """Queue ``item`` and return its :class:`Ticket`; auto-flush on a full batch."""
        ticket = Ticket(item)
        self._pending.append(ticket)
        if len(self._pending) >= self.max_batch_size:
            self.flush()
        return ticket

    def submit_many(self, items: Sequence) -> list[Ticket]:
        """Queue every item (auto-flushing as batches fill) and return the tickets."""
        return [self.submit(item) for item in items]

    def flush(self) -> None:
        """Run every pending item through ``batch_fn`` and resolve its ticket."""
        pending, self._pending = self._pending, []
        for batch in group_into_batches(pending, self.max_batch_size) if pending else []:
            items = [ticket.item for ticket in batch]
            results = list(self.batch_fn(items))
            if len(results) != len(items):
                raise ServingStateError(
                    f"batch_fn returned {len(results)} results for {len(items)} items"
                )
            self.num_items += len(items)
            self.num_batches += 1
            self.num_full_batches += len(items) == self.max_batch_size
            self.batch_sizes.append(len(items))
            for ticket, result in zip(batch, results):
                ticket._resolve(result)

    def run(self, items: Sequence) -> list:
        """Convenience: submit ``items``, flush, and return results in order."""
        tickets = self.submit_many(items)
        self.flush()
        return [ticket.value for ticket in tickets]

    @property
    def pending(self) -> int:
        """Number of accepted-but-unflushed submissions."""
        return len(self._pending)

    def stats(self) -> dict:
        """Batching counters for monitoring and tests."""
        mean_size = sum(self.batch_sizes) / len(self.batch_sizes) if self.batch_sizes else 0.0
        return {
            "num_items": self.num_items,
            "num_batches": self.num_batches,
            "num_full_batches": self.num_full_batches,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": round(mean_size, 3),
            "pending": self.pending,
        }
