"""Baseline registry: construct any baseline from a plain config dict.

The serving pipeline, the evaluation harness and the examples all need to
turn "a name and some knobs" into a fitted-able baseline object.  Before this
registry each call site imported concrete classes and hand-built their
``DataVisT5Config`` / ``TrainingConfig`` arguments; now a spec like::

    {"type": "neural", "preset": "tiny", "num_epochs": 2, "warm_start": "queries"}

is enough, and the same spec works everywhere.  The canonical name -> class
tables live in :mod:`repro.baselines` (``TEXT_TO_VIS_BASELINES`` /
``GENERATION_BASELINES``); this module adds the config-dict conveniences and
runtime registration hooks for extensions.

Spec format
-----------
``type`` selects the baseline; every other key is passed to its constructor.
Two conveniences apply to the neural families:

* ``preset`` (``"tiny"`` / ``"base"`` / ``"large"``, plus any
  ``max_input_length``-style overrides via ``preset_overrides``) expands to a
  ``config=DataVisT5Config.from_preset(...)`` argument;
* ``num_epochs`` / ``batch_size`` / ``learning_rate`` / ``seed`` collect into
  a ``training=TrainingConfig(...)`` argument;
* ``precision`` (``"float64"`` / ``"float32"`` / ``"int8"``) selects the
  fitted model's inference mode and is validated here, so a typo or a
  misplaced knob fails at construction rather than at serve time.

Already-built ``config=`` / ``training=`` objects are passed through
unchanged, which is what :class:`repro.evaluation.experiments.ExperimentSuite`
uses to keep its scale presets.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.baselines import (
    GENERATION_BASELINES,
    TEXT_TO_VIS_BASELINES,
    TextGenerationBaseline,
    TextToVisBaseline,
)
from repro.core.config import DataVisT5Config, TrainingConfig, validate_precision
from repro.errors import ModelConfigError

# Runtime-registered factories extend (and may shadow) the canonical tables.
_EXTRA_TEXT_TO_VIS: dict[str, Callable[..., TextToVisBaseline]] = {}
_EXTRA_GENERATION: dict[str, Callable[..., TextGenerationBaseline]] = {}

_TRAINING_KEYS = ("num_epochs", "batch_size", "learning_rate", "seed", "warmup_ratio", "weight_decay")
# Baselines built around a DataVisT5 accept config=/training= keyword arguments.
_NEURAL_NAMES = {"neural", "ncnet"}
_TRAINED_NAMES = _NEURAL_NAMES | {"seq2vis", "seq2seq"}


def register_text_to_vis(name: str, factory: Callable[..., TextToVisBaseline]) -> None:
    """Register (or shadow) a text-to-vis baseline factory under ``name``."""
    _EXTRA_TEXT_TO_VIS[name] = factory


def register_generation(name: str, factory: Callable[..., TextGenerationBaseline]) -> None:
    """Register (or shadow) a text-generation baseline factory under ``name``."""
    _EXTRA_GENERATION[name] = factory


def available_baselines() -> dict[str, tuple[str, ...]]:
    """The constructible names per family, registration extras included."""
    return {
        "text_to_vis": tuple(sorted(set(TEXT_TO_VIS_BASELINES) | set(_EXTRA_TEXT_TO_VIS))),
        "generation": tuple(sorted(set(GENERATION_BASELINES) | set(_EXTRA_GENERATION))),
    }


def build_text_to_vis(spec: dict | str, **overrides) -> TextToVisBaseline:
    """Construct a text-to-vis baseline from ``spec`` (a dict or a bare name)."""
    return _build(spec, overrides, TEXT_TO_VIS_BASELINES, _EXTRA_TEXT_TO_VIS, "text-to-vis")


def build_generation(spec: dict | str, **overrides) -> TextGenerationBaseline:
    """Construct a text-generation baseline from ``spec`` (a dict or a bare name)."""
    return _build(spec, overrides, GENERATION_BASELINES, _EXTRA_GENERATION, "generation")


def _build(spec, overrides, table, extras, family):
    if isinstance(spec, str):
        spec = {"type": spec}
    if not isinstance(spec, dict):
        raise ModelConfigError(f"baseline spec must be a dict or name, got {type(spec).__name__}")
    kwargs = {**spec, **overrides}
    name = kwargs.pop("type", None)
    if name is None:
        raise ModelConfigError(f"baseline spec is missing the 'type' key: {spec!r}")
    factory = extras.get(name) or table.get(name)
    if factory is None:
        known = ", ".join(sorted(set(table) | set(extras)))
        raise ModelConfigError(f"unknown {family} baseline {name!r}; known: {known}")
    return factory(**_expand_neural_kwargs(name, kwargs))


def _expand_neural_kwargs(name: str, kwargs: dict) -> dict:
    """Expand ``preset`` / flat training knobs into config/training objects.

    Runs for every baseline so that a misplaced knob always raises
    :class:`ModelConfigError` — the registry's single error type — instead of
    a bare ``TypeError`` from some constructor.
    """
    kwargs = dict(kwargs)
    preset = kwargs.pop("preset", None)
    preset_overrides = kwargs.pop("preset_overrides", None) or {}
    if preset is not None or preset_overrides:
        if name not in _NEURAL_NAMES:
            raise ModelConfigError(
                f"'preset' is not supported by the {name!r} baseline; "
                f"only {', '.join(sorted(_NEURAL_NAMES))} take a DataVisT5Config"
            )
        if "config" in kwargs:
            raise ModelConfigError(
                f"baseline spec for {name!r} sets both 'preset' and 'config'; pass one"
            )
        kwargs["config"] = DataVisT5Config.from_preset(preset or "tiny", **preset_overrides)
    if "precision" in kwargs:
        if name not in _NEURAL_NAMES:
            raise ModelConfigError(
                f"'precision' is not supported by the {name!r} baseline; "
                f"only {', '.join(sorted(_NEURAL_NAMES))} run a DataVisT5 inference engine"
            )
        if kwargs["precision"] is not None:
            validate_precision(kwargs["precision"])
    training_fields = {key: kwargs.pop(key) for key in _TRAINING_KEYS if key in kwargs}
    if training_fields:
        if name not in _TRAINED_NAMES:
            raise ModelConfigError(
                f"training knobs ({', '.join(sorted(training_fields))}) are not supported by "
                f"the {name!r} baseline; only {', '.join(sorted(_TRAINED_NAMES))} train"
            )
        if "training" in kwargs:
            raise ModelConfigError(
                f"baseline spec for {name!r} sets both 'training' and flat training knobs "
                f"({', '.join(sorted(training_fields))}); pass one"
            )
        kwargs["training"] = TrainingConfig(**training_fields)
    return kwargs
