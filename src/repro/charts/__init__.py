"""Chart layer: building chart data from executed DV queries, translating
DV queries into declarative visualization languages (Vega-Lite, Vega-Zero)
and rendering ASCII charts for the paper's figures."""

from repro.charts.chart import ChartData, build_chart
from repro.charts.vegalite import to_vega_lite, to_vega_zero
from repro.charts.properties import ChartProperties, chart_properties
from repro.charts.render import chart_fingerprint, render_ascii_chart, render_table

__all__ = [
    "chart_fingerprint",
    "ChartData",
    "build_chart",
    "to_vega_lite",
    "to_vega_zero",
    "ChartProperties",
    "chart_properties",
    "render_ascii_chart",
    "render_table",
]
