"""ASCII rendering of charts and tables.

The paper's figures (Figure 6-9) show the charts produced by each model's
predicted DV query and the tables used in the case studies.  The benchmark
harness regenerates them as plain-text renderings so they can be inspected in
a terminal and embedded in EXPERIMENTS.md.

Rendering is pure, so it memoizes well: :func:`chart_fingerprint` gives a
stable identity for (chart contents, render width), which the serving
pipeline uses as the key of its render cache to re-serve hot charts without
recomputing the layout.
"""

from __future__ import annotations

import json

from repro.charts.chart import ChartData
from repro.database.executor import ResultTable
from repro.vql.ast import ChartType

_DEFAULT_WIDTH = 40


def chart_fingerprint(chart: ChartData, width: int = _DEFAULT_WIDTH) -> str:
    """A stable identity for (chart contents, render width) memoization."""
    return json.dumps(chart.to_dict(), sort_keys=True, default=str) + f"@{width}"


def render_ascii_chart(chart: ChartData, width: int = _DEFAULT_WIDTH) -> str:
    """Render ``chart`` as ASCII art appropriate for its chart type."""
    if chart.is_empty:
        return f"[{chart.chart_type.value} chart: no data]"
    if chart.chart_type in (ChartType.BAR, ChartType.STACKED_BAR):
        return _render_bar(chart, width)
    if chart.chart_type == ChartType.PIE:
        return _render_pie(chart, width)
    if chart.chart_type in (ChartType.LINE, ChartType.GROUPING_LINE):
        return _render_bar(chart, width, marker="*")
    return _render_scatter(chart, width)


def _render_bar(chart: ChartData, width: int, marker: str = "#") -> str:
    numbers = [_to_float(value) for value in chart.y_values]
    finite = [value for value in numbers if value is not None]
    peak = max(finite) if finite else 1.0
    peak = peak if peak > 0 else 1.0
    label_width = max(len(str(x)) for x in chart.x_values)
    lines = [f"{chart.y_label} by {chart.x_label} ({chart.chart_type.value})"]
    for x_value, y_value in zip(chart.x_values, numbers):
        magnitude = 0 if y_value is None else int(round(width * y_value / peak))
        rendered = "" if y_value is None else _format_value(y_value)
        lines.append(f"{str(x_value):>{label_width}} | {marker * magnitude} {rendered}")
    return "\n".join(lines)


def _render_pie(chart: ChartData, width: int) -> str:
    numbers = [_to_float(value) or 0.0 for value in chart.y_values]
    total = sum(numbers) or 1.0
    label_width = max(len(str(x)) for x in chart.x_values)
    lines = [f"{chart.y_label} share of {chart.x_label} (pie)"]
    for x_value, y_value in zip(chart.x_values, numbers):
        share = y_value / total
        blocks = int(round(width * share))
        lines.append(f"{str(x_value):>{label_width}} | {'o' * blocks} {share * 100:.1f}% ({_format_value(y_value)})")
    return "\n".join(lines)


def _render_scatter(chart: ChartData, width: int, height: int = 12) -> str:
    xs = [_to_float(value) for value in chart.x_values]
    ys = [_to_float(value) for value in chart.y_values]
    points = [(x, y) for x, y in zip(xs, ys) if x is not None and y is not None]
    if not points:
        # Categorical x axis: fall back to a bar-style rendering with dots.
        return _render_bar(chart, width, marker=".")
    min_x, max_x = min(p[0] for p in points), max(p[0] for p in points)
    min_y, max_y = min(p[1] for p in points), max(p[1] for p in points)
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    for x, y in points:
        column = int(round((x - min_x) / span_x * width))
        row = height - int(round((y - min_y) / span_y * height))
        grid[row][column] = "x"
    lines = [f"{chart.y_label} vs {chart.x_label} (scatter)"]
    lines.extend("".join(row) for row in grid)
    lines.append(f"x: [{_format_value(min_x)}, {_format_value(max_x)}]  y: [{_format_value(min_y)}, {_format_value(max_y)}]")
    return "\n".join(lines)


def render_table(result: ResultTable, max_rows: int | None = None, title: str | None = None) -> str:
    """Render a :class:`ResultTable` (or any columns/rows pair) as an ASCII table."""
    rows = result.rows if max_rows is None else result.rows[:max_rows]
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(column) for column in result.columns]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    header = " | ".join(column.ljust(width) for column, width in zip(result.columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = [" | ".join(value.ljust(width) for value, width in zip(row, widths)) for row in rendered_rows]
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, separator])
    lines.extend(body)
    if max_rows is not None and len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows) - max_rows} more rows)")
    return "\n".join(lines)


def _to_float(value: object) -> float | None:
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.2f}"


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
