"""Translation from DV queries to declarative visualization languages.

The paper treats the DV query as a pivot format that can be rendered through
any DVL.  Two translators are provided:

* :func:`to_vega_lite` produces a Vega-Lite style JSON specification (the DVL
  used in the paper's Figure 1 example);
* :func:`to_vega_zero` produces the flattened single-line Vega-Zero form
  introduced by ncNet, which some baselines consume directly.
"""

from __future__ import annotations

from repro.errors import VQLValidationError
from repro.vql.ast import AggregateExpr, ChartType, DVQuery

_VEGA_MARKS = {
    ChartType.BAR: "bar",
    ChartType.PIE: "arc",
    ChartType.LINE: "line",
    ChartType.SCATTER: "point",
    ChartType.STACKED_BAR: "bar",
    ChartType.GROUPING_LINE: "line",
    ChartType.GROUPING_SCATTER: "point",
}

_VEGA_ZERO_MARKS = {
    ChartType.BAR: "bar",
    ChartType.PIE: "arc",
    ChartType.LINE: "line",
    ChartType.SCATTER: "point",
    ChartType.STACKED_BAR: "bar",
    ChartType.GROUPING_LINE: "line",
    ChartType.GROUPING_SCATTER: "point",
}


def _axis_encoding(item: AggregateExpr) -> dict:
    encoding: dict = {"field": item.column.to_text()}
    if item.is_aggregate:
        encoding["aggregate"] = item.function
        if item.distinct:
            encoding["distinct"] = True
    return encoding


def to_vega_lite(query: DVQuery, data_url: str | None = None) -> dict:
    """A Vega-Lite style specification for ``query``.

    Raises :class:`~repro.errors.VQLValidationError` when the query has fewer
    than the two select items a chart's x/y encodings need.
    """
    if len(query.select) < 2:
        raise VQLValidationError(
            f"Vega-Lite translation needs at least x and y select items, got {len(query.select)}"
        )
    x_item, y_item = query.select[0], query.select[1]
    spec: dict = {
        "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
        "data": {"url": data_url} if data_url else {"name": query.from_table},
        "mark": _VEGA_MARKS[query.chart_type],
        "encoding": {
            "x": _axis_encoding(x_item),
            "y": _axis_encoding(y_item),
        },
    }
    if query.chart_type == ChartType.PIE:
        # Pie charts encode the category on color and the measure on theta.
        spec["encoding"] = {
            "theta": _axis_encoding(y_item),
            "color": _axis_encoding(x_item),
        }
    if len(query.select) >= 3 and query.chart_type in (
        ChartType.STACKED_BAR,
        ChartType.GROUPING_LINE,
        ChartType.GROUPING_SCATTER,
    ):
        spec["encoding"]["color"] = _axis_encoding(query.select[2])
    transforms = _transforms(query)
    if transforms:
        spec["transform"] = transforms
    if query.order_by is not None:
        spec.setdefault("encoding", {}).setdefault("x", {})
        spec["encoding"]["x"]["sort"] = (
            "ascending" if query.order_by.direction.value == "asc" else "descending"
        )
    return spec


def _transforms(query: DVQuery) -> list[dict]:
    transforms: list[dict] = []
    for condition in query.where:
        transforms.append({"filter": condition.to_text()})
    if query.group_by:
        transforms.append({"groupby": [col.to_text() for col in query.group_by]})
    if query.bin is not None:
        transforms.append({"timeUnit": query.bin.unit, "field": query.bin.column.to_text()})
    return transforms


def to_vega_zero(query: DVQuery) -> str:
    """The flattened Vega-Zero sequence for ``query`` (the ncNet input format)."""
    x_item, y_item = query.select[0], query.select[1]
    parts = [
        "mark",
        _VEGA_ZERO_MARKS[query.chart_type],
        "data",
        query.from_table,
        "encoding",
        "x",
        x_item.column.to_text(),
        "y",
        "aggregate",
        y_item.function or "none",
        y_item.column.to_text(),
    ]
    if len(query.select) >= 3:
        parts.extend(["color", query.select[2].column.to_text()])
    parts.append("transform")
    for condition in query.where:
        parts.extend(["filter", condition.to_text()])
    if query.group_by:
        parts.extend(["group", " , ".join(col.to_text() for col in query.group_by)])
    if query.bin is not None:
        parts.extend(["bin", query.bin.column.to_text(), "by", query.bin.unit])
    if query.order_by is not None:
        parts.extend(["sort", query.order_by.expression.to_text(), query.order_by.direction.value])
    return " ".join(parts)
