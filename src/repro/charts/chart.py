"""Chart data: the bridge between an executed DV query and a rendered chart."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.database.database import Database
from repro.database.executor import ResultTable, execute_query
from repro.vql.ast import ChartType, DVQuery


@dataclass
class ChartData:
    """The materialised content of a chart.

    ``x_values`` / ``y_values`` are the first / second selected expressions of
    the DV query; grouping charts additionally carry a ``series`` column (the
    third selected expression) that splits the data into one sequence per
    series value.
    """

    chart_type: ChartType
    x_label: str
    y_label: str
    x_values: list
    y_values: list
    series_label: str | None = None
    series_values: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.x_values)

    @property
    def is_empty(self) -> bool:
        """Whether the chart has no data points."""
        return len(self.x_values) == 0

    def numeric_y(self) -> list[float]:
        """Y values coerced to floats, skipping missing entries."""
        numbers = []
        for value in self.y_values:
            if value is None:
                continue
            try:
                numbers.append(float(value))
            except (TypeError, ValueError):
                continue
        return numbers

    def to_dict(self) -> dict:
        """A JSON-friendly view of the chart data."""
        payload = {
            "chart_type": self.chart_type.value,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x_values": list(self.x_values),
            "y_values": list(self.y_values),
        }
        if self.series_label is not None:
            payload["series_label"] = self.series_label
            payload["series_values"] = list(self.series_values)
        return payload


def build_chart(query: DVQuery, database: Database | None = None, result: ResultTable | None = None) -> ChartData:
    """Build :class:`ChartData` for ``query``.

    Either a ``database`` (the query is executed) or a pre-computed
    ``result`` must be supplied.
    """
    if result is None:
        if database is None:
            raise ExecutionError("build_chart needs either a database or a pre-computed result")
        result = execute_query(query, database)
    if len(result.columns) < 2:
        raise ExecutionError("a chart needs at least two selected expressions (x and y)")
    x_label, y_label = result.columns[0], result.columns[1]
    x_values = result.column_values(0)
    y_values = result.column_values(1)
    series_label = None
    series_values: list = []
    if len(result.columns) >= 3 and query.chart_type in (
        ChartType.STACKED_BAR,
        ChartType.GROUPING_LINE,
        ChartType.GROUPING_SCATTER,
    ):
        series_label = result.columns[2]
        series_values = result.column_values(2)
    return ChartData(
        chart_type=query.chart_type,
        x_label=x_label,
        y_label=y_label,
        x_values=x_values,
        y_values=y_values,
        series_label=series_label,
        series_values=series_values,
    )
