"""Structural / numerical properties of a chart.

FeVisQA Type-3 questions are rule-generated questions about the rendered
chart ("how many parts are there?", "what is the value of the largest
part?", "is any value of the y-axis repeated?").  This module computes the
ground-truth answers from :class:`ChartData`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.charts.chart import ChartData


@dataclass(frozen=True)
class ChartProperties:
    """Derived quantities about one chart."""

    num_parts: int
    min_value: float | None
    max_value: float | None
    total: float | None
    mean: float | None
    has_duplicate_values: bool
    x_of_max: object | None
    x_of_min: object | None

    def as_dict(self) -> dict:
        """A JSON-friendly view of the chart properties."""
        return {
            "num_parts": self.num_parts,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "total": self.total,
            "mean": self.mean,
            "has_duplicate_values": self.has_duplicate_values,
            "x_of_max": self.x_of_max,
            "x_of_min": self.x_of_min,
        }


def chart_properties(chart: ChartData) -> ChartProperties:
    """Compute :class:`ChartProperties` for ``chart``."""
    numbers = chart.numeric_y()
    if numbers:
        min_value = min(numbers)
        max_value = max(numbers)
        total = sum(numbers)
        mean = total / len(numbers)
        has_duplicates = len(set(numbers)) < len(numbers)
        x_of_max = _x_for_value(chart, max_value)
        x_of_min = _x_for_value(chart, min_value)
    else:
        min_value = max_value = total = mean = None
        has_duplicates = False
        x_of_max = x_of_min = None
    return ChartProperties(
        num_parts=len(chart.x_values),
        min_value=_maybe_int(min_value),
        max_value=_maybe_int(max_value),
        total=_maybe_int(total),
        mean=mean,
        has_duplicate_values=has_duplicates,
        x_of_max=x_of_max,
        x_of_min=x_of_min,
    )


def _x_for_value(chart: ChartData, target: float) -> object | None:
    for x_value, y_value in zip(chart.x_values, chart.y_values):
        try:
            if y_value is not None and float(y_value) == target:
                return x_value
        except (TypeError, ValueError):
            continue
    return None


def _maybe_int(value: float | None) -> float | int | None:
    if value is None:
        return None
    return int(value) if float(value).is_integer() else value
