"""An in-memory relational engine.

DataVisT5's downstream tasks need a database substrate in three places:

* the *schema* is linearized into the model input for text-to-vis and
  vis-to-text;
* FeVisQA Type-3 questions ("how many parts are there in the chart?",
  "what is the value of the largest part?") are answered by *executing*
  the DV query against the database;
* the chart rendered in the paper's figures is the execution result.

The engine supports exactly the relational algebra that DV queries need:
projection, equi-joins, conjunctive filters (including one-level IN / NOT IN
subqueries), group-by with the five aggregate functions, temporal binning and
ordering.
"""

from repro.database.schema import Column, ColumnType, TableSchema, DatabaseSchema, ForeignKey
from repro.database.table import DataTable
from repro.database.database import Database
from repro.database.executor import QueryExecutor, ResultTable, execute_query

__all__ = [
    "Column",
    "ColumnType",
    "TableSchema",
    "DatabaseSchema",
    "ForeignKey",
    "DataTable",
    "Database",
    "QueryExecutor",
    "ResultTable",
    "execute_query",
]
