"""Execution of DV queries against an in-memory :class:`Database`.

The executor implements the relational subset DV queries need: equi-joins,
conjunctive WHERE filters (with one-level IN / NOT IN subqueries), GROUP BY
with the five aggregate functions, temporal binning and ORDER BY.  The result
is a :class:`ResultTable`, which the chart layer turns into the rendered
visualization and FeVisQA uses to compute ground-truth answers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.database.database import Database
from repro.vql.ast import (
    AggregateExpr,
    BinClause,
    ChartType,
    ColumnRef,
    Condition,
    DVQuery,
    JoinClause,
    Subquery,
)

_SUBQUERY_CHART = ChartType.BAR


@dataclass
class ResultTable:
    """The tabular result of executing a DV query."""

    columns: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def column_values(self, index: int) -> list:
        """Values of the ``index``-th result column, in row order."""
        return [row[index] for row in self.rows]

    def to_records(self) -> list[dict[str, object]]:
        """The result rows as column-name -> value dicts."""
        return [dict(zip(self.columns, row)) for row in self.rows]


def execute_query(query: DVQuery, database: Database) -> ResultTable:
    """Convenience wrapper around :class:`QueryExecutor`."""
    return QueryExecutor(database).execute(query)


class QueryExecutor:
    """Executes DV queries against one database."""

    def __init__(self, database: Database):
        self.database = database

    # -- public API -------------------------------------------------------------
    def execute(self, query: DVQuery) -> ResultTable:
        """Run ``query`` against the database and return its result table."""
        rows = self._scan(query.from_table)
        for join in query.joins:
            rows = self._join(rows, join)
        for condition in query.where:
            rows = [row for row in rows if self._condition_holds(row, condition, query)]
        if query.bin is not None:
            rows = self._apply_bin(rows, query.bin, query)

        has_aggregate = any(item.is_aggregate for item in query.select)
        if query.group_by or has_aggregate:
            result_rows = self._grouped_projection(rows, query)
        else:
            result_rows = [tuple(self._evaluate_item(row, item, query) for item in query.select) for row in rows]

        if query.order_by is not None:
            result_rows = self._order(result_rows, query)

        columns = [item.to_text() for item in query.select]
        return ResultTable(columns=columns, rows=result_rows)

    # -- row construction --------------------------------------------------------
    def _scan(self, table_name: str) -> list[dict[str, object]]:
        table = self.database.table(table_name)
        return [
            {f"{table.name}.{column}": value for column, value in row.items()}
            for row in table.rows()
        ]

    def _join(self, rows: list[dict[str, object]], join: JoinClause) -> list[dict[str, object]]:
        right_rows = self._scan(join.table)
        left_key = self._qualified_key_in_rows(rows, join.left) or self._qualified_key_in_rows(right_rows, join.left)
        right_key = self._qualified_key_in_rows(right_rows, join.right) or self._qualified_key_in_rows(rows, join.right)
        if left_key is None or right_key is None:
            raise ExecutionError(f"cannot resolve join columns for {join.to_text()!r}")

        # Decide which side of the ON clause belongs to the already-joined rows.
        if rows and left_key in rows[0]:
            probe_key, build_key = left_key, right_key
        else:
            probe_key, build_key = right_key, left_key

        index: dict[object, list[dict[str, object]]] = {}
        for row in right_rows:
            index.setdefault(_join_key(row.get(build_key)), []).append(row)
        joined: list[dict[str, object]] = []
        for row in rows:
            for match in index.get(_join_key(row.get(probe_key)), []):
                merged = dict(row)
                merged.update(match)
                joined.append(merged)
        return joined

    def _qualified_key_in_rows(self, rows: list[dict[str, object]], ref: ColumnRef) -> str | None:
        if ref.table:
            return f"{ref.table}.{ref.column}"
        if rows:
            for key in rows[0]:
                if key.endswith(f".{ref.column}"):
                    return key
        # Fall back to the schema when the row set is empty.
        table = self.database.schema.find_column_table(ref.column)
        if table is not None:
            return f"{table}.{ref.column}"
        return None

    # -- expression evaluation -----------------------------------------------------
    def _resolve_key(self, row: dict[str, object], ref: ColumnRef, query: DVQuery) -> str:
        if ref.table:
            return f"{ref.table}.{ref.column}"
        for table_name in query.tables():
            key = f"{table_name}.{ref.column}"
            if key in row:
                return key
        for key in row:
            if key.endswith(f".{ref.column}"):
                return key
        raise ExecutionError(f"cannot resolve column {ref.to_text()!r} in query over {query.tables()}")

    def _value(self, row: dict[str, object], ref: ColumnRef, query: DVQuery) -> object:
        key = self._resolve_key(row, ref, query)
        if key not in row:
            raise ExecutionError(f"column {key!r} not present in the joined row")
        return row[key]

    def _evaluate_item(self, row: dict[str, object], item: AggregateExpr, query: DVQuery) -> object:
        if item.is_aggregate:
            raise ExecutionError("aggregate expressions require grouping")
        return self._value(row, item.column, query)

    # -- filtering ----------------------------------------------------------------
    def _condition_holds(self, row: dict[str, object], condition: Condition, query: DVQuery) -> bool:
        actual = self._value(row, condition.left, query)
        expected = condition.value
        operator = condition.operator
        if isinstance(expected, Subquery):
            if operator not in ("in", "not in"):
                raise ExecutionError(f"subqueries are only valid with IN/NOT IN, got {operator!r}")
            members, has_null = self._execute_subquery(expected)
            if actual is None:
                # SQL three-valued logic: NULL compared to any member is
                # unknown, so the row is filtered out — except against an
                # empty member set, where no comparison happens at all and
                # NOT IN is vacuously true (IN vacuously false).
                if members or has_null:
                    return False
                return operator == "not in"
            membership = _normalize_literal(actual) in members
            if operator == "in":
                return membership
            # NOT IN against a set containing NULL is never true: the NULL
            # member makes every non-match unknown rather than false.
            return not membership and not has_null
        if operator == "like":
            return _like_match(actual, str(expected))
        if operator in ("in", "not in"):
            raise ExecutionError("IN/NOT IN require a subquery value")
        return _compare(actual, operator, expected)

    def _execute_subquery(self, subquery: Subquery) -> tuple[set, bool]:
        """The subquery's normalized non-NULL members, plus whether it produced a NULL."""
        inner_query = DVQuery(
            chart_type=_SUBQUERY_CHART,
            select=(subquery.select,),
            from_table=subquery.from_table,
            joins=subquery.joins,
            where=subquery.where,
        )
        result = self.execute(inner_query)
        values = [row[0] for row in result.rows]
        members = {_normalize_literal(value) for value in values if value is not None}
        return members, any(value is None for value in values)

    # -- binning --------------------------------------------------------------------
    def _apply_bin(self, rows: list[dict[str, object]], bin_clause: BinClause, query: DVQuery) -> list[dict[str, object]]:
        binned = []
        for row in rows:
            key = self._resolve_key(row, bin_clause.column, query)
            new_row = dict(row)
            new_row[key] = _bin_value(row.get(key), bin_clause.unit)
            binned.append(new_row)
        return binned

    # -- grouping ---------------------------------------------------------------------
    def _grouped_projection(self, rows: list[dict[str, object]], query: DVQuery) -> list[tuple]:
        groups: dict[tuple, list[dict[str, object]]] = {}
        if query.group_by:
            for row in rows:
                key = tuple(_normalize_literal(self._value(row, col, query)) for col in query.group_by)
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = list(rows)
        if not rows and not query.group_by:
            groups = {(): []}

        result = []
        for _, members in sorted(groups.items(), key=lambda item: _sort_token(item[0])):
            result.append(tuple(self._evaluate_group_item(members, item, query) for item in query.select))
        return result

    def _evaluate_group_item(self, members: list[dict[str, object]], item: AggregateExpr, query: DVQuery) -> object:
        if not item.is_aggregate:
            if not members:
                return None
            return self._value(members[0], item.column, query)
        if item.column.is_wildcard:
            values: list[object] = [1] * len(members)
        else:
            values = [self._value(row, item.column, query) for row in members]
            values = [value for value in values if value is not None]
        if item.distinct:
            values = list(dict.fromkeys(values))
        function = item.function
        if function == "count":
            return len(values)
        numbers = [_as_number(value) for value in values]
        if not numbers:
            return None
        if function == "sum":
            return _maybe_int(sum(numbers))
        if function == "avg":
            return sum(numbers) / len(numbers)
        if function == "max":
            return _maybe_int(max(numbers))
        if function == "min":
            return _maybe_int(min(numbers))
        raise ExecutionError(f"unsupported aggregate {function!r}")

    # -- ordering --------------------------------------------------------------------
    def _order(self, result_rows: list[tuple], query: DVQuery) -> list[tuple]:
        order = query.order_by
        target = order.expression.to_text()
        columns = [item.to_text() for item in query.select]
        if target in columns:
            index = columns.index(target)
        else:
            # Ordering by a column that is not selected: fall back to the first axis.
            index = 0
        reverse = order.direction.value == "desc"
        return sorted(result_rows, key=lambda row: _sort_token(row[index]), reverse=reverse)


# -- helpers -------------------------------------------------------------------------


def _join_key(value: object) -> object:
    return _normalize_literal(value)


def _normalize_literal(value: object) -> object:
    if isinstance(value, str):
        return value.strip().lower()
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    return value


def _as_number(value: object) -> float:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError as exc:
            raise ExecutionError(f"cannot aggregate non-numeric value {value!r}") from exc
    raise ExecutionError(f"cannot aggregate non-numeric value {value!r}")


def _maybe_int(value: float) -> float | int:
    return int(value) if float(value).is_integer() else value


def _compare(actual: object, operator: str, expected: object) -> bool:
    if actual is None:
        return False
    left = _normalize_literal(actual)
    right = _normalize_literal(expected)
    # Numeric comparison when both sides look numeric.
    if isinstance(left, float) or isinstance(right, float):
        try:
            left_num = float(left) if not isinstance(left, float) else left
            right_num = float(right) if not isinstance(right, float) else right
        except (TypeError, ValueError):
            left_num = right_num = None
        if left_num is not None and right_num is not None:
            left, right = left_num, right_num
    if operator == "=":
        return left == right
    if operator == "!=":
        return left != right
    try:
        if operator == ">":
            return left > right
        if operator == "<":
            return left < right
        if operator == ">=":
            return left >= right
        if operator == "<=":
            return left <= right
    except TypeError as exc:
        raise ExecutionError(f"cannot compare {actual!r} {operator} {expected!r}") from exc
    raise ExecutionError(f"unsupported operator {operator!r}")


def _like_match(actual: object, pattern: str) -> bool:
    if actual is None:
        return False
    regex = re.escape(str(pattern).lower()).replace("%", ".*").replace("_", ".")
    # re.escape escapes % as \%, undo that before substituting wildcards.
    regex = regex.replace(r"\%", ".*").replace(r"\_", ".")
    return re.fullmatch(regex, str(actual).lower()) is not None


_MONTH_NAMES = (
    "january", "february", "march", "april", "may", "june",
    "july", "august", "september", "october", "november", "december",
)
_WEEKDAY_NAMES = ("monday", "tuesday", "wednesday", "thursday", "friday", "saturday", "sunday")


def _bin_value(value: object, unit: str) -> object:
    """Bucket a time-like value by ``unit`` (year / month / weekday / day)."""
    if value is None:
        return None
    text = str(value)
    parts = re.split(r"[-/ :T]", text)
    if unit == "year":
        return parts[0] if parts and parts[0] else text
    if unit == "month":
        if len(parts) >= 2 and parts[1].isdigit():
            month = int(parts[1])
            if 1 <= month <= 12:
                return _MONTH_NAMES[month - 1]
        return text
    if unit == "day":
        if len(parts) >= 3 and parts[2].isdigit():
            return parts[2]
        return text
    if unit == "weekday":
        if len(parts) >= 3 and all(part.isdigit() for part in parts[:3]):
            year, month, day = int(parts[0]), int(parts[1]), int(parts[2])
            return _WEEKDAY_NAMES[_day_of_week(year, month, day)]
        return text
    raise ExecutionError(f"unknown bin unit {unit!r}")


def _day_of_week(year: int, month: int, day: int) -> int:
    """Zeller-style day of week, Monday=0 ... Sunday=6."""
    import datetime

    return datetime.date(year, month, day).weekday()


def _sort_token(value: object):
    """A total ordering over heterogeneous result values (None < numbers < strings)."""
    if isinstance(value, tuple):
        return tuple(_sort_token(item) for item in value)
    if value is None:
        return (0, 0.0, "")
    if isinstance(value, bool):
        return (1, float(value), "")
    if isinstance(value, (int, float)):
        return (1, float(value), "")
    text = str(value)
    try:
        return (1, float(text), "")
    except ValueError:
        return (2, 0.0, text.lower())
