"""Row storage for a single table."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.database.schema import ColumnType, TableSchema


class DataTable:
    """A table schema together with its rows.

    Rows are stored as plain dictionaries keyed by lowercase column name.
    Values are either ``str``, ``int``/``float`` or ``None``; time columns
    store ISO-like strings (``"1998-07-21"``) or plain years.
    """

    def __init__(self, schema: TableSchema, rows: Iterable[Mapping[str, object]] | None = None):
        self.schema = schema
        self._rows: list[dict[str, object]] = []
        if rows:
            for row in rows:
                self.insert(row)

    # -- mutation ------------------------------------------------------------
    def insert(self, row: Mapping[str, object]) -> None:
        """Insert ``row``; missing columns become ``None``, unknown columns are an error."""
        normalized = {key.lower(): value for key, value in row.items()}
        known = set(self.schema.column_names())
        unknown = set(normalized) - known
        if unknown:
            raise SchemaError(f"row has unknown columns {sorted(unknown)} for table {self.schema.name!r}")
        self._rows.append({name: normalized.get(name) for name in self.schema.column_names()})

    # -- access ---------------------------------------------------------------
    @property
    def name(self) -> str:
        """The table's name, from its schema."""
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, object]]:
        return iter(self._rows)

    def rows(self) -> list[dict[str, object]]:
        """A shallow copy of the row list."""
        return list(self._rows)

    def column_values(self, column: str) -> list[object]:
        """All values of ``column``, in row order."""
        column = column.lower()
        if not self.schema.has_column(column):
            raise SchemaError(f"table {self.name!r} has no column {column!r}")
        return [row[column] for row in self._rows]

    def distinct_values(self, column: str) -> list[object]:
        """Distinct non-null values of ``column`` in first-seen order."""
        seen: dict[object, None] = {}
        for value in self.column_values(column):
            if value is not None and value not in seen:
                seen[value] = None
        return list(seen)

    def head(self, limit: int = 5) -> list[dict[str, object]]:
        """The first ``limit`` rows as dicts."""
        return [dict(row) for row in self._rows[:limit]]

    def is_numeric(self, column: str) -> bool:
        """Whether the non-null values of ``column`` are all numeric."""
        return self.schema.column(column).ctype == ColumnType.NUMBER
