"""A database: a schema plus one :class:`DataTable` per table."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import SchemaError
from repro.database.schema import DatabaseSchema, TableSchema
from repro.database.table import DataTable


class Database:
    """An in-memory database instance."""

    def __init__(self, schema: DatabaseSchema, data: Mapping[str, Iterable[Mapping[str, object]]] | None = None):
        self.schema = schema
        self._tables: dict[str, DataTable] = {
            table.name: DataTable(table) for table in schema.tables
        }
        if data:
            for table_name, rows in data.items():
                table = self.table(table_name)
                for row in rows:
                    table.insert(row)

    @property
    def name(self) -> str:
        """The database's name, from its schema."""
        return self.schema.name

    def table(self, name: str) -> DataTable:
        """The data table called ``name``."""
        name = name.lower()
        if name not in self._tables:
            raise SchemaError(f"database {self.name!r} has no table {name!r}")
        return self._tables[name]

    def table_names(self) -> list[str]:
        """Names of every table, in schema order."""
        return list(self._tables)

    def insert(self, table_name: str, row: Mapping[str, object]) -> None:
        """Append one row to ``table_name`` (validated against the schema)."""
        self.table(table_name).insert(row)

    def insert_many(self, table_name: str, rows: Iterable[Mapping[str, object]]) -> None:
        """Append many rows to ``table_name``."""
        table = self.table(table_name)
        for row in rows:
            table.insert(row)

    def total_rows(self) -> int:
        """Total number of rows across every table."""
        return sum(len(table) for table in self._tables.values())

    def subdatabase(self, table_names: list[str]) -> "Database":
        """A new database restricted to ``table_names`` (rows are shared copies)."""
        sub_schema = self.schema.subschema(table_names)
        sub = Database(sub_schema)
        for table in sub_schema.tables:
            sub.insert_many(table.name, self.table(table.name).rows())
        return sub
