"""Relational schema model: columns, tables, foreign keys and databases."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError


class ColumnType(str, enum.Enum):
    """The three column types DV queries care about (mirrors nvBench/Spider)."""

    TEXT = "text"
    NUMBER = "number"
    TIME = "time"


@dataclass(frozen=True)
class Column:
    """A column definition."""

    name: str
    ctype: ColumnType = ColumnType.TEXT

    def __post_init__(self):
        if not self.name:
            raise SchemaError("column name must be non-empty")
        object.__setattr__(self, "name", self.name.lower())


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key link ``source_table.source_column -> target_table.target_column``."""

    source_table: str
    source_column: str
    target_table: str
    target_column: str

    def __post_init__(self):
        for attribute in ("source_table", "source_column", "target_table", "target_column"):
            object.__setattr__(self, attribute, getattr(self, attribute).lower())


@dataclass
class TableSchema:
    """A table definition: ordered columns plus an optional primary key."""

    name: str
    columns: list[Column]
    primary_key: str | None = None

    def __post_init__(self):
        self.name = self.name.lower()
        seen: set[str] = set()
        for column in self.columns:
            if column.name in seen:
                raise SchemaError(f"duplicate column {column.name!r} in table {self.name!r}")
            seen.add(column.name)
        if self.primary_key is not None:
            self.primary_key = self.primary_key.lower()
            if self.primary_key not in seen:
                raise SchemaError(f"primary key {self.primary_key!r} is not a column of {self.name!r}")

    def column_names(self) -> list[str]:
        """Names of the table's columns, in order."""
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        """Whether the table has a column called ``name``."""
        return name.lower() in set(self.column_names())

    def column(self, name: str) -> Column:
        """The column called ``name``; raises :class:`SchemaError` if absent."""
        name = name.lower()
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")


@dataclass
class DatabaseSchema:
    """A named database schema: tables plus foreign keys."""

    name: str
    tables: list[TableSchema]
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self):
        self.name = self.name.lower()
        seen: set[str] = set()
        for table in self.tables:
            if table.name in seen:
                raise SchemaError(f"duplicate table {table.name!r} in database {self.name!r}")
            seen.add(table.name)
        for fk in self.foreign_keys:
            self._check_fk(fk)

    def _check_fk(self, fk: ForeignKey) -> None:
        source = self.table(fk.source_table)
        target = self.table(fk.target_table)
        if not source.has_column(fk.source_column):
            raise SchemaError(f"foreign key references unknown column {fk.source_table}.{fk.source_column}")
        if not target.has_column(fk.target_column):
            raise SchemaError(f"foreign key references unknown column {fk.target_table}.{fk.target_column}")

    # -- lookups ----------------------------------------------------------------
    def table_names(self) -> list[str]:
        """Names of every table, in order."""
        return [table.name for table in self.tables]

    def has_table(self, name: str) -> bool:
        """Whether the schema has a table called ``name``."""
        return name.lower() in set(self.table_names())

    def table(self, name: str) -> TableSchema:
        """The table schema called ``name``; raises :class:`SchemaError` if absent."""
        name = name.lower()
        for table in self.tables:
            if table.name == name:
                return table
        raise SchemaError(f"database {self.name!r} has no table {name!r}")

    def find_column_table(self, column_name: str, candidate_tables: list[str] | None = None) -> str | None:
        """Return the name of a table containing ``column_name``.

        ``candidate_tables`` restricts the search (used when resolving
        unqualified columns inside a query that only touches some tables).
        Returns ``None`` if no table matches.
        """
        column_name = column_name.lower()
        names = candidate_tables if candidate_tables is not None else self.table_names()
        for table_name in names:
            if self.has_table(table_name) and self.table(table_name).has_column(column_name):
                return self.table(table_name).name
        return None

    def subschema(self, table_names: list[str]) -> "DatabaseSchema":
        """A new schema restricted to ``table_names`` (and their internal foreign keys)."""
        keep = {name.lower() for name in table_names}
        tables = [table for table in self.tables if table.name in keep]
        if not tables:
            raise SchemaError(f"subschema selection {sorted(keep)} matches no tables of {self.name!r}")
        foreign_keys = [
            fk for fk in self.foreign_keys if fk.source_table in keep and fk.target_table in keep
        ]
        return DatabaseSchema(name=self.name, tables=tables, foreign_keys=foreign_keys)
