"""``repro.obs`` — end-to-end tracing and metrics for the serving stack.

One process-global :class:`~repro.obs.metrics.MetricsRegistry` (``METRICS``)
and one :class:`~repro.obs.trace.TraceStore` (``TRACES``) per process.
Metrics are always on — recording is a lock plus a bisect.  Tracing is off
by default and switched on with :func:`configure`; the decision is made at
the *root* span, inherited by every child through the propagated
``SpanContext.sampled`` flag, and therefore survives process boundaries: a
worker shard records spans for any sampled trace the gateway hands it,
whether or not the shard's own store is enabled.

Usage::

    from repro import obs

    obs.configure(tracing=True, sample_rate=1.0)
    ... serve traffic ...
    print(obs.export.render_trace(obs.TRACES.spans(), trace_id))
    print(obs.export.prometheus_text(obs.METRICS.snapshot()))

``docs/observability.md`` documents the span model, the metric naming
conventions (pinned in :mod:`repro.obs.names`) and the exposition formats.
"""

from __future__ import annotations

from repro.obs import export
from repro.obs.metrics import (
    BUCKET_SCHEME,
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.names import (
    METRIC_MEANINGS,
    METRIC_NAMES,
    SPAN_MEANINGS,
    SPAN_NAMES,
)
from repro.obs.trace import Span, SpanContext, TraceStore, current_context

#: The process-global metrics registry every instrumentation site records into.
METRICS = MetricsRegistry()

#: The process-global trace store (tracing disabled until :func:`configure`).
TRACES = TraceStore(capacity=4096, sample_rate=1.0, enabled=False)


def configure(
    tracing: bool | None = None,
    sample_rate: float | None = None,
    capacity: int | None = None,
) -> None:
    """Adjust the process-global tracing knobs.

    ``tracing`` enables/disables root-span creation, ``sample_rate`` sets
    the head-sampling probability in [0, 1], and ``capacity`` re-bounds the
    span ring buffer in place (keeping the newest spans).  Call before
    forking shards so children inherit the configuration; traces started by
    an enabled gateway are recorded by disabled shards regardless.
    """
    if tracing is not None:
        TRACES.enabled = bool(tracing)
    if sample_rate is not None:
        TRACES.sample_rate = float(sample_rate)
    if capacity is not None:
        TRACES.set_capacity(capacity)


def tracing_enabled() -> bool:
    """Whether root spans are currently being created in this process."""
    return TRACES.enabled


__all__ = [
    "BUCKET_SCHEME",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS",
    "METRIC_MEANINGS",
    "METRIC_NAMES",
    "MetricsRegistry",
    "SPAN_MEANINGS",
    "SPAN_NAMES",
    "Span",
    "SpanContext",
    "TRACES",
    "TraceStore",
    "configure",
    "current_context",
    "export",
    "tracing_enabled",
]
