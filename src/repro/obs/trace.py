"""Lightweight distributed tracing: spans, context propagation, a ring store.

The model is a deliberately small cut of Dapper/OpenTelemetry:

* a :class:`Span` is ``(name, trace_id, span_id, parent_id, start,
  duration, status, attrs)`` — ids are random hex, ``start`` is
  ``time.perf_counter()`` so intra-process ordering is monotonic;
* a :class:`SpanContext` is the propagatable triple ``(trace_id, span_id,
  sampled)``; it crosses process boundaries as a plain dict (the optional
  ``trace`` field on serving wire frames) and thread boundaries by being
  carried explicitly on jobs/prepared items — plus a context-var
  convenience (:meth:`TraceStore.span`) for lexically scoped sections;
* a :class:`TraceStore` keeps *finished* spans in a bounded ring buffer
  (old traces fall off the back; memory is O(capacity) regardless of
  traffic) and owns the two knobs: ``enabled`` (root spans are only
  started when tracing is on) and ``sample_rate`` (head sampling: the
  decision is made once at the root and inherited by every child through
  ``SpanContext.sampled``, so a trace is always complete or absent).

Recording is allocation-light: an unsampled context produces no span
objects at all, and a sampled one costs a dataclass plus two
``perf_counter`` calls per span.  ``repro.obs.export`` renders stores as
JSONL or ASCII trees.
"""

from __future__ import annotations

import os
import random
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

#: Spans end in one of these states; anything else is coerced to "error".
SPAN_STATUSES = ("ok", "error")

_CURRENT: ContextVar["SpanContext | None"] = ContextVar("repro_obs_current_span", default=None)


# Ids come from a urandom-seeded PRNG, not uuid4: uuid4 reads the kernel
# entropy pool on every call (~2.5us, a syscall) while one getrandbits is
# ~0.4us, and id generation sits on the per-decode-step hot path.  Trace ids
# only need uniformity, not unpredictability (OTel's own SDKs use a PRNG).
# CPython's C-level getrandbits is atomic under the GIL, so no lock.  A
# forked child (the sharded tier's worker processes) inherits the parent's
# PRNG state and would emit the parent's exact id sequence — colliding
# span ids turn the span tree into a cycle — so the child reseeds at fork.
_ID_RNG = random.Random(int.from_bytes(uuid.uuid4().bytes, "big"))

if hasattr(os, "register_at_fork"):  # pragma: no branch - always true on Linux
    os.register_at_fork(after_in_child=lambda: _ID_RNG.seed(uuid.uuid4().int))


def _new_id(bits: int) -> str:
    """Random hex id (32 hex chars for traces, 16 for spans, OTel-style)."""
    return f"{_ID_RNG.getrandbits(bits):0{bits // 4}x}"


@dataclass
class SpanContext:
    """The propagatable part of a span: ids plus the head-sampling decision."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_wire(self) -> dict:
        """The JSON dict shape carried on serving wire frames."""
        return {"trace_id": self.trace_id, "span_id": self.span_id, "sampled": self.sampled}

    @classmethod
    def from_wire(cls, payload: dict | None) -> "SpanContext | None":
        """Rebuild a context from its wire dict; ``None`` stays ``None``."""
        if payload is None:
            return None
        return cls(
            trace_id=str(payload.get("trace_id", "")),
            span_id=str(payload.get("span_id", "")),
            sampled=bool(payload.get("sampled", True)),
        )


@dataclass
class Span:
    """One timed, attributed operation within a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start: float = 0.0
    duration_s: float | None = None
    status: str = "ok"
    attrs: dict = field(default_factory=dict)

    @property
    def context(self) -> SpanContext:
        """This span's propagatable context (always sampled: it exists)."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id, sampled=True)

    def as_dict(self) -> dict:
        """A JSON-able dict (the JSONL export row and telemetry embedding)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration_s": self.duration_s,
            "status": self.status,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span from :meth:`as_dict` (telemetry ingestion path)."""
        return cls(
            name=str(payload.get("name", "")),
            trace_id=str(payload.get("trace_id", "")),
            span_id=str(payload.get("span_id", "")),
            parent_id=payload.get("parent_id"),
            start=float(payload.get("start", 0.0)),
            duration_s=payload.get("duration_s"),
            status=str(payload.get("status", "ok")),
            attrs=dict(payload.get("attrs", {})),
        )


class TraceStore:
    """A bounded in-memory store of finished spans plus the sampling knobs."""

    def __init__(self, capacity: int = 4096, sample_rate: float = 1.0, enabled: bool = False) -> None:
        self.enabled = enabled
        self.sample_rate = sample_rate
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._rng = random.Random()

    # -- creating spans -----------------------------------------------------------------

    def root(self, name: str, attrs: dict | None = None) -> Span | None:
        """Start a root span, or ``None`` when tracing is off / head-sampled out."""
        if not self.enabled:
            return None
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            return None
        return Span(
            name=name,
            trace_id=_new_id(128),
            span_id=_new_id(64),
            start=time.perf_counter(),
            attrs=dict(attrs or {}),
        )

    def begin(self, name: str, parent: SpanContext | None, attrs: dict | None = None) -> Span | None:
        """Start a child of ``parent``; unsampled or absent parents yield ``None``.

        Child creation deliberately ignores ``enabled``: a shard process
        must keep recording for a trace the gateway started even if the
        fork happened before tracing was switched on locally.
        """
        if parent is None or not parent.sampled or not parent.trace_id:
            return None
        return Span(
            name=name,
            trace_id=parent.trace_id,
            span_id=_new_id(64),
            parent_id=parent.span_id,
            start=time.perf_counter(),
            attrs=dict(attrs or {}),
        )

    def finish(self, span: Span | None, status: str = "ok") -> None:
        """Stamp the duration and commit the span to the ring buffer."""
        if span is None:
            return
        span.duration_s = time.perf_counter() - span.start
        span.status = status if status in SPAN_STATUSES else "error"
        with self._lock:
            self._spans.append(span)

    def record(
        self,
        name: str,
        parent: SpanContext | None,
        duration_s: float,
        start: float | None = None,
        status: str = "ok",
        attrs: dict | None = None,
    ) -> Span | None:
        """Record an already-measured child span in one call (hot-path shape).

        The decode loop and the batch executor measure their own durations;
        this skips the begin/finish pair and the second ``perf_counter``.
        """
        if parent is None or not parent.sampled or not parent.trace_id:
            return None
        span = Span(
            name=name,
            trace_id=parent.trace_id,
            span_id=_new_id(64),
            parent_id=parent.span_id,
            start=time.perf_counter() - duration_s if start is None else start,
            duration_s=duration_s,
            status=status if status in SPAN_STATUSES else "error",
            attrs=dict(attrs or {}),
        )
        with self._lock:
            self._spans.append(span)
        return span

    def ingest(self, payloads: list[dict]) -> None:
        """Adopt span dicts recorded by another process (telemetry embedding)."""
        spans = [Span.from_dict(payload) for payload in payloads]
        with self._lock:
            self._spans.extend(spans)

    # -- context-var convenience --------------------------------------------------------

    @contextmanager
    def span(self, name: str, parent: SpanContext | None = None, attrs: dict | None = None):
        """Context manager: begin/finish a span and install it as current.

        ``parent`` defaults to the ambient current span; with neither, a
        root span is attempted (subject to ``enabled`` and sampling).
        Yields the :class:`Span` or ``None`` when unsampled.
        """
        parent = parent if parent is not None else current_context()
        span = self.begin(name, parent, attrs) if parent is not None else self.root(name, attrs)
        token = _CURRENT.set(span.context) if span is not None else None
        try:
            yield span
            self.finish(span)
        except BaseException:
            self.finish(span, status="error")
            raise
        finally:
            if token is not None:
                _CURRENT.reset(token)

    # -- reading back -------------------------------------------------------------------

    def spans(self, trace_id: str | None = None) -> list[Span]:
        """Finished spans, optionally filtered to one trace, oldest first."""
        with self._lock:
            items = list(self._spans)
        if trace_id is None:
            return items
        return [span for span in items if span.trace_id == trace_id]

    def take(self, trace_id: str) -> list[Span]:
        """Remove and return every finished span of ``trace_id``.

        Shards use this after serving a batch to ship a trace's spans back
        to the gateway exactly once.
        """
        with self._lock:
            kept: deque[Span] = deque(maxlen=self._spans.maxlen)
            taken: list[Span] = []
            for span in self._spans:
                (taken if span.trace_id == trace_id else kept).append(span)
            self._spans = kept
        return taken

    def clear(self) -> None:
        """Drop every stored span."""
        with self._lock:
            self._spans.clear()

    def set_capacity(self, capacity: int) -> None:
        """Re-bound the ring buffer in place (keeps the newest spans)."""
        with self._lock:
            self._spans = deque(self._spans, maxlen=capacity)

    def __len__(self) -> int:
        """Number of finished spans currently held."""
        return len(self._spans)


def current_context() -> SpanContext | None:
    """The ambient span context installed by :meth:`TraceStore.span`, if any."""
    return _CURRENT.get()
