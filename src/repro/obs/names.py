"""The span-name and metric-name inventory: one list, everywhere.

``SPAN_MEANINGS`` and ``METRIC_MEANINGS`` are the single source of truth for
every span name the tracing layer emits and every metric name the serving
stack records, exactly like ``ERROR_CODE_MEANINGS`` is for serving error
codes.  Instrumentation sites reference the ``SPAN_*`` / ``METRIC_*``
constants below rather than respelling the strings, and
``tests/test_obs_schema.py`` pins every derived surface (the constants, the
names the serving sources actually use, the documentation tables in
``docs/observability.md``) to these two dicts so a rename is always a
deliberate, reviewed change.

Naming conventions (documented in ``docs/observability.md``):

* names are dotted ``<layer>.<event>`` strings; the layer prefix is one of
  ``gateway`` (sharded-tier gateway), ``server`` (thread-tier async server),
  ``shard`` (worker-shard process), ``pipeline`` (task stages),
  ``continuous`` (the decode loop) or ``arena`` (the paged KV arena);
* histogram metrics carry their unit as a ``_ms`` / ``_ratio`` suffix;
* monotonic counters end in ``_total``; everything else is a gauge or a
  histogram.
"""

from __future__ import annotations

# -- span names -------------------------------------------------------------------------

SPAN_GATEWAY_REQUEST = "gateway.request"
SPAN_GATEWAY_DISPATCH = "gateway.dispatch"
SPAN_SERVER_REQUEST = "server.request"
SPAN_SERVER_QUEUE = "server.queue"
SPAN_SERVER_EXECUTE = "server.execute"
SPAN_SHARD_SERVE = "shard.serve"
SPAN_PIPELINE_RETRIEVE = "pipeline.retrieve"
SPAN_PIPELINE_GENERATE = "pipeline.generate"
SPAN_PIPELINE_MERGE = "pipeline.merge"
SPAN_DECODE_STEP = "decode.step"

#: Every span name the stack emits, with its one-line meaning.  The order is
#: outermost-first: a full sharded corpus-QA trace nests top to bottom.
SPAN_MEANINGS: dict[str, str] = {
    SPAN_GATEWAY_REQUEST: "root span of one request through the sharded-tier gateway",
    SPAN_GATEWAY_DISPATCH: "one dispatch attempt of a request to a worker shard (re-dispatches open a new span)",
    SPAN_SERVER_REQUEST: "root span of one request through the thread-tier async server",
    SPAN_SERVER_QUEUE: "time a job spent in the server queue before a batch collected it",
    SPAN_SERVER_EXECUTE: "worker-thread batch execution covering one job",
    SPAN_SHARD_SERVE: "shard-process handling of one request, pipeline included",
    SPAN_PIPELINE_RETRIEVE: "corpus_qa retrieval stage (index search at prepare time)",
    SPAN_PIPELINE_GENERATE: "model batch generation covering one prepared item",
    SPAN_PIPELINE_MERGE: "corpus_qa per-context answer merge",
    SPAN_DECODE_STEP: "one continuous-batching decode step serving one traced request",
}

#: Derived tuple, analogous to ``ERROR_CODES``.
SPAN_NAMES: tuple[str, ...] = tuple(SPAN_MEANINGS)

# -- metric names -----------------------------------------------------------------------

METRIC_SERVER_QUEUE_WAIT_MS = "server.queue_wait_ms"
METRIC_SERVER_BATCH_SIZE = "server.batch_size"
METRIC_SERVER_EXECUTE_MS = "server.execute_ms"
METRIC_GATEWAY_DISPATCH_MS = "gateway.dispatch_ms"
METRIC_GATEWAY_REQUEUES_TOTAL = "gateway.requeues_total"
METRIC_GATEWAY_RESPAWNS_TOTAL = "gateway.respawns_total"
METRIC_GATEWAY_HEARTBEAT_GAP_MS = "gateway.heartbeat_gap_ms"
METRIC_PIPELINE_RETRIEVE_MS = "pipeline.retrieve_ms"
METRIC_PIPELINE_MERGE_MS = "pipeline.merge_ms"
METRIC_CONTINUOUS_STEP_MS = "continuous.step_ms"
METRIC_CONTINUOUS_ADMISSION_WAIT_MS = "continuous.admission_wait_ms"
METRIC_CONTINUOUS_TOKENS_TOTAL = "continuous.tokens_total"
METRIC_ARENA_PAGES_IN_USE = "arena.pages_in_use"
METRIC_ARENA_PAGE_REUSE_RATIO = "arena.page_reuse_ratio"

#: Every metric name the stack records, with its one-line meaning.
METRIC_MEANINGS: dict[str, str] = {
    METRIC_SERVER_QUEUE_WAIT_MS: "histogram: thread-tier queue wait per job, milliseconds",
    METRIC_SERVER_BATCH_SIZE: "histogram: jobs per collected thread-tier batch",
    METRIC_SERVER_EXECUTE_MS: "histogram: worker batch execution time per job, milliseconds",
    METRIC_GATEWAY_DISPATCH_MS: "histogram: gateway dispatch-to-delivery latency per request, milliseconds",
    METRIC_GATEWAY_REQUEUES_TOTAL: "counter: requests requeued after a shard failure",
    METRIC_GATEWAY_RESPAWNS_TOTAL: "counter: worker-shard processes respawned after death or wedge",
    METRIC_GATEWAY_HEARTBEAT_GAP_MS: "histogram: observed gap between consecutive shard heartbeats, milliseconds",
    METRIC_PIPELINE_RETRIEVE_MS: "histogram: corpus_qa index-search latency per request, milliseconds",
    METRIC_PIPELINE_MERGE_MS: "histogram: corpus_qa answer-merge latency per request, milliseconds",
    METRIC_CONTINUOUS_STEP_MS: "histogram: continuous-batching decode step time, milliseconds",
    METRIC_CONTINUOUS_ADMISSION_WAIT_MS: "histogram: ticket submit-to-admission wait, milliseconds",
    METRIC_CONTINUOUS_TOKENS_TOTAL: "counter: tokens emitted by the continuous decode loop",
    METRIC_ARENA_PAGES_IN_USE: "gauge: KV-arena pages currently allocated to open sequences",
    METRIC_ARENA_PAGE_REUSE_RATIO: "gauge: fraction of page allocations served from the arena free list",
}

#: Derived tuple, analogous to ``ERROR_CODES``.
METRIC_NAMES: tuple[str, ...] = tuple(METRIC_MEANINGS)
