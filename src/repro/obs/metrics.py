"""Process-local metrics: counters, gauges and mergeable streaming histograms.

One :class:`MetricsRegistry` per process owns every instrument.  The design
constraints, in order:

* **cheap hot-path recording** — ``Histogram.record`` is a lock, a bisect
  over ~200 fixed boundaries and three integer/float updates; instruments
  are fetched once at module import time, never per request;
* **exact cross-process merge** — every histogram shares the same fixed
  log-spaced bucket boundaries (:data:`DEFAULT_BUCKETS`), so merging two
  snapshots is per-bucket integer addition with no approximation drift; a
  gateway can fold per-shard snapshots (piggybacked on heartbeat frames)
  into one aggregate whose bucket counts are identical to recording every
  observation in one process;
* **quantiles without samples** — ``quantile(p)`` interpolates linearly
  inside the bucket the rank falls in and clamps to the observed min/max,
  so the error is bounded by one bucket width (~9% with the default
  ``2**(1/8)`` spacing) and ``quantile`` is monotone in ``p``.

Snapshots are plain JSON-able dicts (sparse bucket counts keyed by index),
small enough to ship on a 50 ms heartbeat.  ``repro.obs.export`` renders
them as Prometheus text or JSON.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

from repro.errors import ModelConfigError

#: Identifier pinned into every histogram snapshot; merging refuses to mix
#: snapshots from different bucket layouts.
BUCKET_SCHEME = "log2x8:1e-3:1e5"


def _default_buckets() -> tuple[float, ...]:
    """Upper bucket boundaries: 8 per octave from 1e-3 up past 1e5."""
    boundaries = []
    value = 1e-3
    ratio = 2.0 ** 0.125
    while value < 1e5:
        boundaries.append(value)
        value *= ratio
    boundaries.append(value)
    return tuple(boundaries)


#: The fixed bucket boundaries every histogram shares (upper bounds; values
#: above the last boundary land in a final overflow bucket).
DEFAULT_BUCKETS: tuple[float, ...] = _default_buckets()


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def reset(self) -> None:
        """Zero the counter in place (identity preserved for cached handles)."""
        with self._lock:
            self._value = 0


class Gauge:
    """A point-in-time value: set, never accumulated."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self._value = float(value)

    @property
    def value(self) -> float:
        """The last value set."""
        return self._value

    def reset(self) -> None:
        """Zero the gauge in place (identity preserved for cached handles)."""
        self._value = 0.0


class Histogram:
    """A streaming histogram over fixed log-spaced buckets.

    All histograms share :data:`DEFAULT_BUCKETS`, so ``merge`` is exact:
    per-bucket integer addition, min/max of the observed extremes, float
    addition of the sums.  ``record`` never allocates; the sparse bucket
    dict only grows when a new bucket is first hit.
    """

    def __init__(self, name: str, boundaries: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.boundaries = boundaries
        self._counts: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        """Record one observation (values below the first bucket clamp into it)."""
        value = float(value)
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] = self._counts.get(index, 0) + 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Number of observations recorded (merges included)."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, p: float) -> float:
        """The ``p``-quantile (0 ≤ p ≤ 1) via in-bucket linear interpolation.

        Exact at the extremes (``p<=0`` → observed min, ``p>=1`` → observed
        max), monotone in ``p``, and within one bucket width elsewhere.
        Returns 0.0 for an empty histogram.
        """
        with self._lock:
            if not self._count:
                return 0.0
            if p <= 0.0:
                return self._min
            if p >= 1.0:
                return self._max
            target = p * self._count
            cumulative = 0
            value = self._max
            for index in sorted(self._counts):
                bucket_count = self._counts[index]
                if cumulative + bucket_count >= target:
                    low = self.boundaries[index - 1] if index > 0 else 0.0
                    high = (
                        self.boundaries[index]
                        if index < len(self.boundaries)
                        else self._max
                    )
                    fraction = (target - cumulative) / bucket_count
                    value = low + (high - low) * fraction
                    break
                cumulative += bucket_count
            return min(max(value, self._min), self._max)

    def summary(self) -> dict:
        """p50/p90/p99/mean/max in one dict — the shape the benchmarks report."""
        return {
            "p50": round(self.quantile(0.50), 3),
            "p90": round(self.quantile(0.90), 3),
            "p99": round(self.quantile(0.99), 3),
            "mean": round(self.mean(), 3),
            "max": round(self._max, 3) if self._count else 0.0,
        }

    def snapshot(self) -> dict:
        """A JSON-able sparse snapshot (bucket counts keyed by stringified index)."""
        with self._lock:
            return {
                "scheme": BUCKET_SCHEME,
                "counts": {str(index): count for index, count in self._counts.items()},
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another histogram's :meth:`snapshot` into this one, exactly.

        Bucket layouts must match (same :data:`BUCKET_SCHEME`); merge order
        never changes the bucket counts, count, min or max.
        """
        if snapshot.get("scheme") != BUCKET_SCHEME:
            raise ModelConfigError(
                f"cannot merge histogram snapshot with scheme {snapshot.get('scheme')!r} "
                f"into {BUCKET_SCHEME!r}"
            )
        with self._lock:
            for key, count in snapshot.get("counts", {}).items():
                index = int(key)
                self._counts[index] = self._counts.get(index, 0) + int(count)
            self._count += int(snapshot.get("count", 0))
            self._sum += float(snapshot.get("sum", 0.0))
            if snapshot.get("min") is not None:
                self._min = min(self._min, float(snapshot["min"]))
            if snapshot.get("max") is not None:
                self._max = max(self._max, float(snapshot["max"]))

    def merge(self, other: "Histogram") -> None:
        """Fold another live :class:`Histogram` into this one, exactly."""
        self.merge_snapshot(other.snapshot())

    def reset(self) -> None:
        """Zero the histogram in place (identity preserved for cached handles)."""
        with self._lock:
            self._counts.clear()
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf


class MetricsRegistry:
    """The process-local instrument registry: get-or-create by name.

    Names are flat dotted strings from :mod:`repro.obs.names`; asking for an
    existing name with a different instrument kind raises.  ``snapshot()``
    is a JSON-able dict; ``merge()`` folds another process's snapshot into
    this registry (counters and histograms add exactly, gauges take the
    incoming value — per-shard gauges should therefore be merged last-writer
    or namespaced by the caller).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type) -> Counter | Gauge | Histogram:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ModelConfigError(
                    f"metric {name!r} is a {type(instrument).__name__}, not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the :class:`Counter` called ``name``."""
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """Get or create the :class:`Gauge` called ``name``."""
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """Get or create the :class:`Histogram` called ``name``."""
        return self._get(name, Histogram)  # type: ignore[return-value]

    def snapshot(self) -> dict:
        """A JSON-able snapshot of every instrument, grouped by kind."""
        with self._lock:
            instruments = dict(self._instruments)
        return {
            "counters": {
                name: inst.value for name, inst in instruments.items() if isinstance(inst, Counter)
            },
            "gauges": {
                name: inst.value for name, inst in instruments.items() if isinstance(inst, Gauge)
            },
            "histograms": {
                name: inst.snapshot()
                for name, inst in instruments.items()
                if isinstance(inst, Histogram)
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram buckets add exactly; gauges adopt the
        incoming value (the most recent snapshot wins).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, hist_snapshot in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_snapshot(hist_snapshot)

    def reset(self) -> None:
        """Zero every instrument in place (tests and benchmarks isolate runs).

        Instruments are cached in module globals at import time across the
        codebase, so reset must preserve identity: dropping the objects would
        orphan every cached handle, whose subsequent recordings would then
        never show up in a snapshot.
        """
        with self._lock:
            for instrument in self._instruments.values():
                instrument.reset()
