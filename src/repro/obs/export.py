"""Exposition: Prometheus text, JSON snapshots, JSONL traces, ASCII trees.

Everything here is read-side only — it renders the snapshots produced by
:mod:`repro.obs.metrics` and the spans held by :mod:`repro.obs.trace`,
allocating nothing on any hot path.  ``docs/observability.md`` shows the
output formats.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.trace import Span, TraceStore


def _prometheus_name(name: str) -> str:
    """Dotted metric names become underscore-separated Prometheus names."""
    return name.replace(".", "_").replace("-", "_")


def prometheus_text(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text exposition.

    Counters become ``counter`` samples, gauges ``gauge`` samples, and
    histograms the conventional cumulative ``_bucket{le=...}`` series plus
    ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        flat = _prometheus_name(name)
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {value}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        flat = _prometheus_name(name)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {value}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        flat = _prometheus_name(name)
        lines.append(f"# TYPE {flat} histogram")
        counts = {int(index): count for index, count in hist.get("counts", {}).items()}
        cumulative = 0
        for index, boundary in enumerate(DEFAULT_BUCKETS):
            cumulative += counts.get(index, 0)
            if counts and index <= max(counts):
                lines.append(f'{flat}_bucket{{le="{boundary:g}"}} {cumulative}')
        cumulative += counts.get(len(DEFAULT_BUCKETS), 0)
        lines.append(f'{flat}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{flat}_sum {hist.get('sum', 0.0)}")
        lines.append(f"{flat}_count {hist.get('count', 0)}")
    return "\n".join(lines) + "\n"


def snapshot_json(registry: MetricsRegistry) -> str:
    """The registry snapshot as pretty-printed JSON (the HTTP-less endpoint)."""
    return json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n"


def dump_traces(store: TraceStore, path: str | Path | None = None) -> list[dict]:
    """Export every finished span as dicts; with ``path``, also write JSONL."""
    rows = [span.as_dict() for span in store.spans()]
    if path is not None:
        text = "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)
        Path(path).write_text(text, encoding="utf-8")
    return rows


def span_tree(spans: list[Span], trace_id: str) -> dict | None:
    """Reconstruct one trace's parent/child tree.

    Returns ``{"span": Span, "children": [...]}`` for the root, or ``None``
    when the trace has no root among ``spans``.  Children sort by start
    time; orphans (parent span missing, e.g. sampled out of the ring) attach
    to the root so a rendered tree never silently drops a span.
    """
    members = [span for span in spans if span.trace_id == trace_id]
    if not members:
        return None
    by_id = {span.span_id: span for span in members}
    nodes: dict[str, dict] = {span.span_id: {"span": span, "children": []} for span in members}
    roots = [span for span in members if span.parent_id is None]
    if not roots:
        return None
    root = min(roots, key=lambda span: span.start)
    for span in members:
        if span is root:
            continue
        parent_id = span.parent_id if span.parent_id in by_id else root.span_id
        if parent_id == span.span_id:
            continue
        nodes[parent_id]["children"].append(nodes[span.span_id])
    for node in nodes.values():
        node["children"].sort(key=lambda child: child["span"].start)
    return nodes[root.span_id]


def render_trace(spans: list[Span], trace_id: str) -> str:
    """An ASCII tree of one trace — what ``make trace-demo`` prints."""
    tree = span_tree(spans, trace_id)
    if tree is None:
        return f"(no spans for trace {trace_id})"
    lines: list[str] = []

    def walk(node: dict, depth: int) -> None:
        span = node["span"]
        duration = span.duration_s if span.duration_s is not None else math.nan
        attrs = " ".join(f"{key}={value}" for key, value in sorted(span.attrs.items()))
        suffix = f"  [{attrs}]" if attrs else ""
        marker = "" if span.status == "ok" else f"  !{span.status}"
        lines.append(f"{'  ' * depth}{span.name}  {duration * 1000.0:.2f}ms{marker}{suffix}")
        for child in node["children"]:
            walk(child, depth + 1)

    walk(tree, 0)
    return "\n".join(lines)
