"""DataVisT5 reproduction.

A from-scratch, offline reproduction of *DataVisT5: A Pre-trained Language
Model for Jointly Understanding Text and Data Visualization* (ICDE 2025):
the DV query language and its relational substrate, the cross-modal encoding
pipeline, the hybrid pre-training and multi-task fine-tuning recipe, the
baselines, the metrics and a benchmark harness for every table and figure of
the paper's evaluation section.

See ``examples/quickstart.py`` for a runnable end-to-end walk-through,
``README.md`` for the module map and ``docs/architecture.md`` for the data
flow and the serving subsystem's batching/caching design.
"""

# The single source of the package version: setup.py parses this assignment
# textually (no import) and the deploy layer stamps it into deployment
# manifests, registry files and Server.stats() for provenance.
__version__ = "1.1.0"

from repro import errors, obs

__all__ = ["errors", "obs", "__version__"]
