"""Special tokens used by DataVisT5.

Three families of special tokens appear in the paper:

* structural tokens required by any encoder--decoder LM: padding, beginning /
  end of sequence and the unknown token;
* *modality tags* that prefix each corpus segment during pre-training and
  fine-tuning (``<NL>``, ``<VQL>``, ``<schema>``, ``<Table>``, ``<Question>``,
  ``<Answer>``), mirroring Figure 5 of the paper;
* *sentinel tokens* ``<extra_id_0>`` ... used by the T5 span-corruption
  objective to mark masked spans in the input and delimit the corresponding
  target spans.
"""

from __future__ import annotations

PAD_TOKEN = "<pad>"
EOS_TOKEN = "</s>"
UNK_TOKEN = "<unk>"
BOS_TOKEN = "<s>"

NL_TAG = "<NL>"
VQL_TAG = "<VQL>"
SCHEMA_TAG = "<schema>"
TABLE_TAG = "<Table>"
QUESTION_TAG = "<Question>"
ANSWER_TAG = "<Answer>"

MODALITY_TOKENS: tuple[str, ...] = (
    NL_TAG,
    VQL_TAG,
    SCHEMA_TAG,
    TABLE_TAG,
    QUESTION_TAG,
    ANSWER_TAG,
)

_DEFAULT_NUM_SENTINELS = 32


def sentinel_token(index: int) -> str:
    """Return the ``index``-th T5 sentinel token, e.g. ``<extra_id_0>``."""
    if index < 0:
        raise ValueError(f"sentinel index must be non-negative, got {index}")
    return f"<extra_id_{index}>"


def num_default_sentinels() -> int:
    """Number of sentinel tokens reserved in a default vocabulary."""
    return _DEFAULT_NUM_SENTINELS


def default_special_tokens(num_sentinels: int = _DEFAULT_NUM_SENTINELS) -> list[str]:
    """The full ordered list of special tokens for a fresh vocabulary.

    The order is part of the on-disk format of saved vocabularies, so it must
    stay stable: structural tokens first, then modality tags, then sentinels.
    """
    tokens = [PAD_TOKEN, EOS_TOKEN, UNK_TOKEN, BOS_TOKEN]
    tokens.extend(MODALITY_TOKENS)
    tokens.extend(sentinel_token(i) for i in range(num_sentinels))
    return tokens
