"""Tokenization: vocabulary management and the DataVisT5 tokenizer.

The paper feeds the model linearized text sequences that mix natural language
with DV knowledge (DV queries, schemas, tables) delimited by modality tags
such as ``<NL>`` and ``<VQL>`` and corrupted with T5 sentinel tokens.  This
package provides a word-level tokenizer with a character-level fallback for
out-of-vocabulary words, which is sufficient for the synthetic corpora while
keeping the vocabulary small enough to train the numpy transformer quickly.
"""

from repro.tokenization.special_tokens import (
    PAD_TOKEN,
    EOS_TOKEN,
    UNK_TOKEN,
    BOS_TOKEN,
    MODALITY_TOKENS,
    NL_TAG,
    VQL_TAG,
    SCHEMA_TAG,
    TABLE_TAG,
    QUESTION_TAG,
    ANSWER_TAG,
    sentinel_token,
    num_default_sentinels,
    default_special_tokens,
)
from repro.tokenization.vocab import Vocabulary
from repro.tokenization.tokenizer import DataVisTokenizer

__all__ = [
    "PAD_TOKEN",
    "EOS_TOKEN",
    "UNK_TOKEN",
    "BOS_TOKEN",
    "MODALITY_TOKENS",
    "NL_TAG",
    "VQL_TAG",
    "SCHEMA_TAG",
    "TABLE_TAG",
    "QUESTION_TAG",
    "ANSWER_TAG",
    "sentinel_token",
    "num_default_sentinels",
    "default_special_tokens",
    "Vocabulary",
    "DataVisTokenizer",
]
